//! Observed trial execution: the same trials as [`trials`](crate::trials),
//! but run under an [`Observed`] wrapper with an enabled [`Registry`], so
//! each run yields a [`Metrics`] snapshot and a JSONL event trace alongside
//! its race reports.
//!
//! Determinism: metrics contain only counters derived from the simulated
//! execution (no wall-clock, no addresses), and multi-instance runs merge
//! snapshots in instance-index order — so output is byte-identical at any
//! [`parallel::set_jobs`](crate::parallel::set_jobs) level.

use std::collections::BTreeSet;

use pacer_core::{AccordionPacerDetector, PacerDetector};
use pacer_fasttrack::{FastTrackDetector, GenericDetector};
use pacer_faults::TrialFaults;
use pacer_governor::{GovernorConfig, GovernorNote, GovernorSummary};
use pacer_lang::ir::CompiledProgram;
use pacer_literace::{LiteRaceConfig, LiteRaceDetector};
use pacer_obs::{Event, Metrics, ObservableDetector, Observed, Registry, RegistryConfig};
use pacer_runtime::{GovernorSignal, InstrumentMode, NullDetector, Vm, VmConfig, VmError};
use pacer_trace::RaceReport;

use crate::fleet::FleetReport;
use crate::parallel::try_run_indexed;
use crate::trials::{governed_cfg, DetectorKind, RaceKey};

/// One observed trial: race keys plus the observability artifacts.
#[derive(Clone, Debug)]
pub struct ObservedTrial {
    /// Every dynamic race report's distinct key, in detection order.
    pub dynamic_races: Vec<RaceKey>,
    /// Deduplicated distinct races.
    pub distinct_races: BTreeSet<RaceKey>,
    /// The unified metrics snapshot for this trial.
    pub metrics: Metrics,
    /// The structured event trace, one JSON object per line.
    pub events_jsonl: String,
    /// Governor decisions for this trial; `None` when no budget was armed
    /// or the governor never acted.
    pub governor: Option<GovernorSummary>,
}

/// Replays a trial's governor decision log into the registry as trace
/// events, in boundary order. Cancellation is deliberately *not* emitted
/// here: the campaign-level [`Event::TrialDegraded`] carries it, with the
/// trial index only the merge loop knows.
pub(crate) fn replay_governor(registry: &mut Registry, summary: &GovernorSummary) {
    for note in &summary.notes {
        match *note {
            GovernorNote::RateStepped {
                steps,
                from,
                to,
                up,
            } => registry.event(|| Event::RateStepped {
                steps,
                from_millionths: u64::from(from),
                to_millionths: u64::from(to),
                up,
            }),
            GovernorNote::BudgetBreach {
                steps,
                kind,
                usage,
                limit,
            } => registry.event(|| Event::BudgetBreach {
                steps,
                budget: kind.name().to_string(),
                usage,
                limit,
            }),
            GovernorNote::Cancelled { .. } => {}
        }
    }
}

fn observe<D: ObservableDetector>(
    program: &CompiledProgram,
    cfg: &VmConfig,
    detector: D,
    ring_capacity: usize,
) -> Result<ObservedTrial, VmError> {
    let registry = Registry::enabled(RegistryConfig { ring_capacity });
    let mut obs = Observed::new(detector, registry);
    let outcome = Vm::run_governed(
        program,
        &mut obs,
        cfg,
        |d, s| {
            d.record_space(s.steps, s.heap_bytes);
        },
        |d, sig| match sig {
            GovernorSignal::PollMemBytes => d.space_breakdown().total_words() * 8,
            GovernorSignal::RateChanged(r) => {
                d.on_rate_change(r);
                0
            }
        },
    )?;
    obs.registry_mut().add_runtime(outcome.runtime_counters());
    if let Some(summary) = &outcome.governor {
        replay_governor(obs.registry_mut(), summary);
    }
    let (detector, registry) = obs.finish();
    if let Some(t) = detector.clock_overflow() {
        return Err(VmError::ClockOverflow(t));
    }
    let dynamic_races: Vec<RaceKey> = detector
        .races()
        .iter()
        .map(RaceReport::distinct_key)
        .collect();
    Ok(ObservedTrial {
        distinct_races: dynamic_races.iter().copied().collect(),
        dynamic_races,
        events_jsonl: registry.events_jsonl(),
        metrics: registry.metrics(),
        governor: outcome.governor,
    })
}

/// Runs one observed trial of `program` under `kind` with scheduler seed
/// `seed`, using the same seeds and configurations as
/// [`run_trial`](crate::trials::run_trial) — race verdicts are identical.
///
/// `ring_capacity` bounds the event trace (oldest events are dropped; the
/// drop count is in the metrics snapshot).
///
/// # Errors
///
/// Propagates [`VmError`]s (step limit, deadlock, …) from the run.
pub fn run_observed_trial(
    program: &CompiledProgram,
    kind: DetectorKind,
    seed: u64,
    ring_capacity: usize,
) -> Result<ObservedTrial, VmError> {
    run_observed_trial_with(program, kind, seed, ring_capacity, TrialFaults::default())
}

/// [`run_observed_trial`] with fault injections armed for this attempt
/// (the resilient engine's entry point). `TrialFaults::default()` is
/// exactly `run_observed_trial`.
///
/// # Errors
///
/// Propagates [`VmError`]s, including injected ones.
pub fn run_observed_trial_with(
    program: &CompiledProgram,
    kind: DetectorKind,
    seed: u64,
    ring_capacity: usize,
    faults: TrialFaults,
) -> Result<ObservedTrial, VmError> {
    run_observed_trial_governed(program, kind, seed, ring_capacity, faults, None)
}

/// [`run_observed_trial_with`] with an optional resource governor armed.
/// `None` is exactly `run_observed_trial_with`; with a config, budget
/// checks run at GC boundaries, rate steps reach the detector, and the
/// trial's [`GovernorSummary`] (plus `rate_stepped` / `budget_breach`
/// trace events) lands in the result.
///
/// # Errors
///
/// Propagates [`VmError`]s, including injected ones. Cooperative
/// cancellation at the ladder floor is *not* an error: the run returns
/// `Ok` with `governor.cancelled` set.
pub fn run_observed_trial_governed(
    program: &CompiledProgram,
    kind: DetectorKind,
    seed: u64,
    ring_capacity: usize,
    faults: TrialFaults,
    governor: Option<&GovernorConfig>,
) -> Result<ObservedTrial, VmError> {
    match kind {
        DetectorKind::Uninstrumented => {
            // No observable detector: record run-level counters only. The
            // governor still sees step deadlines (memory polls report 0).
            let cfg = governed_cfg(
                VmConfig::new(seed)
                    .with_instrument(InstrumentMode::Off)
                    .with_faults(faults),
                governor,
            );
            let mut det = NullDetector;
            let outcome = Vm::run(program, &mut det, &cfg)?;
            let mut registry = Registry::enabled(RegistryConfig { ring_capacity });
            registry.add_runtime(outcome.runtime_counters());
            if let Some(summary) = &outcome.governor {
                replay_governor(&mut registry, summary);
            }
            Ok(ObservedTrial {
                dynamic_races: Vec::new(),
                distinct_races: BTreeSet::new(),
                events_jsonl: registry.events_jsonl(),
                metrics: registry.metrics(),
                governor: outcome.governor,
            })
        }
        DetectorKind::SyncOnly => {
            let cfg = governed_cfg(
                VmConfig::new(seed)
                    .with_instrument(InstrumentMode::SyncOnly)
                    .with_faults(faults),
                governor,
            );
            observe(program, &cfg, FastTrackDetector::new(), ring_capacity)
        }
        DetectorKind::Pacer { rate } => {
            let cfg = governed_cfg(
                VmConfig::new(seed)
                    .with_sampling_rate(rate)
                    .with_faults(faults),
                governor,
            );
            observe(program, &cfg, PacerDetector::new(), ring_capacity)
        }
        DetectorKind::PacerAccordion { rate } => {
            let cfg = governed_cfg(
                VmConfig::new(seed)
                    .with_sampling_rate(rate)
                    .with_faults(faults),
                governor,
            );
            observe(program, &cfg, AccordionPacerDetector::new(), ring_capacity)
        }
        DetectorKind::FastTrack => {
            let cfg = governed_cfg(VmConfig::new(seed).with_faults(faults), governor);
            observe(program, &cfg, FastTrackDetector::new(), ring_capacity)
        }
        DetectorKind::Generic => {
            let cfg = governed_cfg(VmConfig::new(seed).with_faults(faults), governor);
            observe(program, &cfg, GenericDetector::new(), ring_capacity)
        }
        DetectorKind::LiteRace { burst } => {
            let cfg = governed_cfg(VmConfig::new(seed).with_faults(faults), governor);
            let lr_cfg = LiteRaceConfig {
                burst_length: burst,
                ..LiteRaceConfig::default()
            };
            let det = LiteRaceDetector::new(lr_cfg, seed ^ 0x117e);
            observe(program, &cfg, det, ring_capacity)
        }
    }
}

/// [`simulate_fleet`](crate::fleet::simulate_fleet) with observability: the
/// same instances and seeds, plus one merged [`Metrics`] snapshot and the
/// concatenated event traces of all instances (in instance order).
///
/// # Errors
///
/// Propagates the first VM error.
pub fn simulate_fleet_observed(
    program: &CompiledProgram,
    instances: u32,
    rate: f64,
    base_seed: u64,
    ring_capacity: usize,
) -> Result<(FleetReport, Metrics, String), VmError> {
    let results = try_run_indexed(instances as usize, |i| {
        run_observed_trial(
            program,
            DetectorKind::Pacer { rate },
            crate::fleet::fleet_trial_seed(base_seed, i as u64),
            ring_capacity,
        )
    })?;
    let mut reporters = std::collections::BTreeMap::new();
    let mut cumulative = Vec::with_capacity(instances as usize);
    let mut metrics = Metrics::default();
    let mut events_jsonl = String::new();
    for r in &results {
        for key in &r.distinct_races {
            *reporters.entry(*key).or_default() += 1;
        }
        cumulative.push(reporters.len());
        metrics.merge(&r.metrics);
        events_jsonl.push_str(&r.events_jsonl);
    }
    Ok((
        FleetReport {
            instances,
            rate,
            reporters,
            cumulative,
        },
        metrics,
        events_jsonl,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::simulate_fleet;
    use crate::trials::run_trial;
    use pacer_workloads::{eclipse, hsqldb, Scale};

    #[test]
    fn observed_trial_matches_plain_trial_verdicts() {
        let program = eclipse(Scale::Test).compiled();
        for kind in [
            DetectorKind::Pacer { rate: 1.0 },
            DetectorKind::Pacer { rate: 0.25 },
            DetectorKind::FastTrack,
            DetectorKind::Generic,
            DetectorKind::LiteRace { burst: 10 },
        ] {
            let plain = run_trial(&program, kind, 7).unwrap();
            let observed = run_observed_trial(&program, kind, 7, 4096).unwrap();
            assert_eq!(
                plain.distinct_races,
                observed.distinct_races,
                "{}: observation must not change detection",
                kind.label()
            );
        }
    }

    #[test]
    fn observed_pacer_trial_collects_everything() {
        let program = eclipse(Scale::Test).compiled();
        let t = run_observed_trial(&program, DetectorKind::Pacer { rate: 1.0 }, 7, 4096).unwrap();
        let m = &t.metrics;
        assert_eq!(m.runtime.trials, 1);
        assert!(m.runtime.steps > 0);
        assert!(m.detector.sample_periods > 0, "r=100% always samples");
        assert!(!m.space.is_empty(), "full GCs produced space samples");
        assert!(m.space[0].breakdown.total_words() > 0);
        assert!(t.events_jsonl.contains("\"ev\":\"period_begin\""));
        assert!(t.events_jsonl.contains("\"ev\":\"gc\""));
        // The snapshot round-trips to JSON without panicking.
        assert!(m.to_json().starts_with('{'));
    }

    #[test]
    fn fleet_observed_matches_plain_fleet() {
        let program = hsqldb(Scale::Test).compiled();
        let plain = simulate_fleet(&program, 6, 0.25, 3).unwrap();
        let (report, metrics, jsonl) = simulate_fleet_observed(&program, 6, 0.25, 3, 1024).unwrap();
        assert_eq!(plain.reporters, report.reporters);
        assert_eq!(plain.cumulative, report.cumulative);
        assert_eq!(metrics.runtime.trials, 6);
        assert!(metrics.events_recorded > 0);
        // Every race event in the concatenated trace is one of the reports
        // counted in the merged snapshot (events may be ring-dropped, so ≤).
        let race_events = jsonl
            .lines()
            .filter(|l| l.contains("\"ev\":\"race\""))
            .count() as u64;
        assert!(race_events <= metrics.races_reported);
    }
}
