//! Append-only, checksummed checkpoint journal.
//!
//! A resilient fleet run records one journal line per *completed* trial
//! (successful or quarantined). Each line is framed as
//!
//! ```text
//! P1 <len> <fnv1a64-hex> <json>\n
//! ```
//!
//! where `len` is the byte length of the JSON payload and the checksum is
//! FNV-1a-64 of the payload, printed as 16 lowercase hex digits. Lines are
//! written with a single `write_all` followed by `sync_data`, so a crash
//! can only ever leave a *partial final line* — which the reader detects
//! (length or checksum mismatch on the last unterminated line) and drops.
//! Corruption anywhere **before** the final line is a structured
//! [`JournalError`], never a silent skip: a mid-file bad frame means the
//! file was damaged after the fact, and resuming from it would silently
//! drop work.
//!
//! The fleet engine's entry payload is [`JournalEntry`]; the framing layer
//! below it ([`JournalWriter`] / [`read_journal`]) is payload-agnostic and
//! reused by `reproduce --resume`.

use std::error::Error;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

use pacer_collections::JsonValue;
use pacer_governor::{BudgetKind, GovernorSummary};

/// FNV-1a 64-bit hash of `bytes` — the journal's line checksum.
///
/// Re-exported from `pacer-collections`, where it is shared with the
/// binary trace format (TRACE_FORMAT.md) so both framed formats agree on
/// the checksum definition.
pub use pacer_collections::fnv1a64;

/// Frames one JSON payload as a journal line (including the newline).
///
/// # Panics
///
/// Debug-asserts that the payload itself contains no newline; embedded
/// newlines must be JSON-escaped by the caller.
pub fn frame(json: &str) -> String {
    debug_assert!(
        !json.contains('\n'),
        "journal payloads must be single-line JSON"
    );
    format!(
        "P1 {} {:016x} {json}\n",
        json.len(),
        fnv1a64(json.as_bytes())
    )
}

fn parse_frame(line: &str) -> Result<&str, String> {
    let rest = line
        .strip_prefix("P1 ")
        .ok_or_else(|| "missing 'P1' magic".to_string())?;
    let (len_text, rest) = rest
        .split_once(' ')
        .ok_or_else(|| "missing length field".to_string())?;
    let (sum_text, json) = rest
        .split_once(' ')
        .ok_or_else(|| "missing checksum field".to_string())?;
    let len: usize = len_text
        .parse()
        .map_err(|_| format!("bad length field {len_text:?}"))?;
    if json.len() != len {
        return Err(format!(
            "length mismatch: header says {len} bytes, payload has {}",
            json.len()
        ));
    }
    if sum_text.len() != 16 {
        return Err(format!("bad checksum field {sum_text:?}"));
    }
    let sum = u64::from_str_radix(sum_text, 16)
        .map_err(|_| format!("bad checksum field {sum_text:?}"))?;
    let actual = fnv1a64(json.as_bytes());
    if sum != actual {
        return Err(format!(
            "checksum mismatch: header {sum:016x}, payload {actual:016x}"
        ));
    }
    Ok(json)
}

/// What went wrong reading a journal.
#[derive(Debug)]
pub enum JournalError {
    /// The file could not be read or written.
    Io(io::Error),
    /// A line before the final one failed framing, checksum, or JSON
    /// decoding. `line` is 1-based.
    Corrupt {
        /// 1-based line number of the bad frame.
        line: usize,
        /// What failed on that line.
        message: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Corrupt { line, message } => {
                write!(f, "journal corrupt at line {line}: {message}")
            }
        }
    }
}

impl Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// An open journal being appended to.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Creates (truncating) a fresh journal at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: &Path) -> io::Result<JournalWriter> {
        Ok(JournalWriter {
            file: File::create(path)?,
        })
    }

    /// Opens `path` for appending, creating it if missing. The caller is
    /// responsible for having validated (and, if needed, truncated away)
    /// any partial final line first — [`read_journal`] +
    /// [`rewrite_valid_prefix`] do both.
    ///
    /// # Errors
    ///
    /// Propagates file-open errors.
    pub fn append(path: &Path) -> io::Result<JournalWriter> {
        Ok(JournalWriter {
            file: OpenOptions::new().create(true).append(true).open(path)?,
        })
    }

    /// Appends one framed payload line and syncs it to disk, so a later
    /// crash cannot lose it.
    ///
    /// # Errors
    ///
    /// Propagates write/sync errors.
    pub fn write_line(&mut self, json: &str) -> io::Result<()> {
        self.file.write_all(frame(json).as_bytes())?;
        self.file.sync_data()
    }
}

/// A successfully read journal: the decoded JSON payloads in file order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JournalContents {
    /// One JSON payload per valid line, oldest first.
    pub lines: Vec<String>,
    /// Whether a partial (crash-truncated) final line was dropped.
    pub dropped_partial_tail: bool,
}

/// Reads and validates the journal at `path`.
///
/// A malformed **final** line with no terminating newline is tolerated as
/// a crash artifact and dropped ([`JournalContents::dropped_partial_tail`]).
/// A malformed line anywhere else is a [`JournalError::Corrupt`].
///
/// # Errors
///
/// I/O failures and mid-file corruption.
pub fn read_journal(path: &Path) -> Result<JournalContents, JournalError> {
    let bytes = std::fs::read(path)?;
    let mut contents = JournalContents::default();
    let chunks: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
    let count = chunks.len();
    for (i, chunk) in chunks.iter().enumerate() {
        // `split` yields one final empty chunk when the file ends with a
        // newline; a non-empty final chunk is an unterminated line.
        let unterminated_tail = i == count - 1;
        if chunk.is_empty() && unterminated_tail {
            break;
        }
        let parsed = std::str::from_utf8(chunk)
            .map_err(|_| "line is not valid UTF-8".to_string())
            .and_then(|line| parse_frame(line).map(str::to_string));
        match parsed {
            Ok(json) => contents.lines.push(json),
            Err(_) if unterminated_tail => {
                contents.dropped_partial_tail = true;
                break;
            }
            Err(message) => {
                return Err(JournalError::Corrupt {
                    line: i + 1,
                    message,
                })
            }
        }
    }
    Ok(contents)
}

/// Atomically rewrites `path` to contain exactly `lines` (re-framed), via
/// the workspace's temp-file-and-rename helper. Used before resuming a
/// journal whose partial tail was dropped: appending after leftover
/// partial bytes would corrupt the next line.
///
/// # Errors
///
/// Propagates write errors.
pub fn rewrite_valid_prefix(path: &Path, lines: &[String]) -> io::Result<()> {
    let mut out = String::new();
    for line in lines {
        out.push_str(&frame(line));
    }
    pacer_collections::atomic_write(path, out)
}

/// Reads the journal at `path` and, when a crash left a partial final
/// line, rewrites the file down to its valid prefix so it is appendable
/// again. This is the one-call resume helper: both the fleet engine and
/// the serve session journal recover through it.
///
/// # Errors
///
/// I/O failures and mid-file corruption, as [`read_journal`].
pub fn recover_lines(path: &Path) -> Result<JournalContents, JournalError> {
    let contents = read_journal(path)?;
    if contents.dropped_partial_tail {
        rewrite_valid_prefix(path, &contents.lines)?;
    }
    Ok(contents)
}

/// Appends `"key":"value"` (or `"key":null`) with JSON string escaping,
/// matching the workspace's artifact writers.
fn field_opt_str(out: &mut String, key: &str, value: Option<&str>) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    match value {
        None => out.push_str("null"),
        Some(s) => escape_into(out, s),
    }
}

/// Appends `s` as a JSON string literal (quotes included). Shared with
/// the service journal's per-session entries.
pub(crate) fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One failed attempt recorded in a [`JournalEntry`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EntryFailure {
    /// 0-based attempt number that failed.
    pub attempt: u32,
    /// The failure message (panic payload or VM error).
    pub reason: String,
    /// The injected-fault site name, when the failure was injected.
    pub site: Option<String>,
}

/// One completed fleet trial, as checkpointed in the journal.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JournalEntry {
    /// The trial's instance index.
    pub index: u64,
    /// The scheduler seed the trial ran with (integrity check on resume).
    pub seed: u64,
    /// Distinct race keys as raw site-id pairs, sorted.
    pub races: Vec<(u32, u32)>,
    /// Total attempts made (1 = clean first try).
    pub attempts: u32,
    /// Every failed attempt, in attempt order.
    pub failures: Vec<EntryFailure>,
    /// Whether the trial exhausted its retries and was quarantined.
    pub quarantined: bool,
    /// The trial's metrics snapshot JSON (observed runs only).
    pub metrics_json: Option<String>,
    /// The trial's event trace JSONL (observed runs only).
    pub events_jsonl: Option<String>,
    /// End-of-run governor summary (governed runs only). The decision
    /// `notes` are *not* journaled — the trial's event trace already
    /// carries them as `rate_stepped`/`budget_breach` lines — so a decoded
    /// summary always has empty `notes`. Absent in journals written before
    /// governing existed, which decode as `None`.
    pub governor: Option<GovernorSummary>,
}

impl JournalEntry {
    /// Encodes this entry as single-line JSON, ready for
    /// [`JournalWriter::write_line`].
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"index\":{},\"seed\":{},\"races\":[",
            self.index, self.seed
        ));
        for (i, (a, b)) in self.races.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{a},{b}]"));
        }
        out.push_str(&format!("],\"attempts\":{},\"failures\":[", self.attempts));
        for (i, f) in self.failures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"attempt\":{},\"reason\":", f.attempt));
            escape_into(&mut out, &f.reason);
            out.push_str(",\"site\":");
            match &f.site {
                None => out.push_str("null"),
                Some(s) => escape_into(&mut out, s),
            }
            out.push('}');
        }
        out.push_str(&format!("],\"quarantined\":{}", self.quarantined));
        field_opt_str(&mut out, "metrics", self.metrics_json.as_deref());
        field_opt_str(&mut out, "events", self.events_jsonl.as_deref());
        match &self.governor {
            None => out.push_str(",\"governor\":null"),
            Some(g) => {
                out.push_str(&format!(
                    ",\"governor\":{{\"steps_down\":{},\"steps_up\":{},\"breaches\":{},\"cancelled\":",
                    g.steps_down, g.steps_up, g.breaches
                ));
                match g.cancelled {
                    None => out.push_str("null"),
                    Some(kind) => {
                        out.push('"');
                        out.push_str(kind.name());
                        out.push('"');
                    }
                }
                out.push_str(&format!(
                    ",\"final_rate_millionths\":{}}}",
                    g.final_rate_millionths
                ));
            }
        }
        out.push('}');
        out
    }

    /// Decodes an entry from one journal payload line.
    ///
    /// # Errors
    ///
    /// A descriptive message for malformed JSON or missing/mistyped
    /// fields.
    pub fn decode(json: &str) -> Result<JournalEntry, String> {
        let v = JsonValue::parse(json).map_err(|e| e.to_string())?;
        let index = req_u64(&v, "index")?;
        let seed = req_u64(&v, "seed")?;
        let mut races = Vec::new();
        for pair in req_array(&v, "races")? {
            let items = pair
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or("race keys must be [a,b] pairs")?;
            let a = items[0].as_u64().ok_or("race site must be an integer")?;
            let b = items[1].as_u64().ok_or("race site must be an integer")?;
            let a = u32::try_from(a).map_err(|_| "race site out of range")?;
            let b = u32::try_from(b).map_err(|_| "race site out of range")?;
            races.push((a, b));
        }
        let attempts = u32::try_from(req_u64(&v, "attempts")?)
            .map_err(|_| "attempts out of range".to_string())?;
        let mut failures = Vec::new();
        for f in req_array(&v, "failures")? {
            let attempt = u32::try_from(
                f.get("attempt")
                    .and_then(JsonValue::as_u64)
                    .ok_or("failure missing 'attempt'")?,
            )
            .map_err(|_| "failure attempt out of range")?;
            let reason = f
                .get("reason")
                .and_then(JsonValue::as_str)
                .ok_or("failure missing 'reason'")?
                .to_string();
            let site = match f.get("site") {
                None | Some(JsonValue::Null) => None,
                Some(s) => Some(
                    s.as_str()
                        .ok_or("failure 'site' must be a string or null")?
                        .to_string(),
                ),
            };
            failures.push(EntryFailure {
                attempt,
                reason,
                site,
            });
        }
        let quarantined = v
            .get("quarantined")
            .and_then(JsonValue::as_bool)
            .ok_or("missing 'quarantined'")?;
        let governor = match v.get("governor") {
            None | Some(JsonValue::Null) => None,
            Some(g) => {
                let cancelled = match g.get("cancelled") {
                    None | Some(JsonValue::Null) => None,
                    Some(s) => Some(budget_kind_from_name(
                        s.as_str()
                            .ok_or("governor 'cancelled' must be a string or null")?,
                    )?),
                };
                let final_rate = u32::try_from(req_u64(g, "final_rate_millionths")?)
                    .map_err(|_| "governor rate out of range".to_string())?;
                Some(GovernorSummary {
                    steps_down: req_u64(g, "steps_down")?,
                    steps_up: req_u64(g, "steps_up")?,
                    breaches: req_u64(g, "breaches")?,
                    cancelled,
                    final_rate_millionths: final_rate,
                    notes: Vec::new(),
                })
            }
        };
        Ok(JournalEntry {
            index,
            seed,
            races,
            attempts,
            failures,
            quarantined,
            metrics_json: opt_str(&v, "metrics")?,
            events_jsonl: opt_str(&v, "events")?,
            governor,
        })
    }
}

fn budget_kind_from_name(name: &str) -> Result<BudgetKind, String> {
    match name {
        "mem" => Ok(BudgetKind::Mem),
        "deadline" => Ok(BudgetKind::Deadline),
        other => Err(format!("unknown budget kind {other:?}")),
    }
}

fn req_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or mistyped '{key}'"))
}

fn req_array<'a>(v: &'a JsonValue, key: &str) -> Result<&'a Vec<JsonValue>, String> {
    v.get(key)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("missing or mistyped '{key}'"))
}

fn opt_str(v: &JsonValue, key: &str) -> Result<Option<String>, String> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(s) => s
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("'{key}' must be a string or null")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pacer-journal-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.jsonl")
    }

    #[test]
    fn frames_round_trip() {
        let json = "{\"index\":3}";
        let framed = frame(json);
        assert!(framed.starts_with("P1 11 "));
        assert!(framed.ends_with("{\"index\":3}\n"));
        assert_eq!(parse_frame(framed.trim_end()).unwrap(), json);
    }

    #[test]
    fn write_then_read_preserves_lines() {
        let path = temp_path("roundtrip");
        let mut w = JournalWriter::create(&path).unwrap();
        w.write_line("{\"a\":1}").unwrap();
        w.write_line("{\"b\":2}").unwrap();
        drop(w);
        let mut w = JournalWriter::append(&path).unwrap();
        w.write_line("{\"c\":3}").unwrap();
        drop(w);
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.lines, vec!["{\"a\":1}", "{\"b\":2}", "{\"c\":3}"]);
        assert!(!contents.dropped_partial_tail);
    }

    #[test]
    fn partial_final_line_is_dropped_not_fatal() {
        let path = temp_path("partial");
        let mut w = JournalWriter::create(&path).unwrap();
        w.write_line("{\"a\":1}").unwrap();
        drop(w);
        // Simulate a crash mid-append: a fragment with no newline.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"P1 9 0000");
        std::fs::write(&path, &bytes).unwrap();
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.lines, vec!["{\"a\":1}"]);
        assert!(contents.dropped_partial_tail);
        // Rewriting the valid prefix makes it appendable again.
        rewrite_valid_prefix(&path, &contents.lines).unwrap();
        let mut w = JournalWriter::append(&path).unwrap();
        w.write_line("{\"b\":2}").unwrap();
        drop(w);
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.lines, vec!["{\"a\":1}", "{\"b\":2}"]);
        assert!(!contents.dropped_partial_tail);
    }

    #[test]
    fn recover_lines_truncates_partial_tail_in_one_call() {
        let path = temp_path("recover");
        let mut w = JournalWriter::create(&path).unwrap();
        w.write_line("{\"a\":1}").unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"P1 7 deadbeef");
        std::fs::write(&path, &bytes).unwrap();
        let contents = recover_lines(&path).unwrap();
        assert_eq!(contents.lines, vec!["{\"a\":1}"]);
        assert!(contents.dropped_partial_tail);
        // The file itself was rewritten: appending now works cleanly.
        let mut w = JournalWriter::append(&path).unwrap();
        w.write_line("{\"b\":2}").unwrap();
        drop(w);
        let contents = recover_lines(&path).unwrap();
        assert_eq!(contents.lines.len(), 2);
        assert!(!contents.dropped_partial_tail);
    }

    #[test]
    fn mid_file_corruption_is_a_structured_error() {
        let path = temp_path("midfile");
        let mut w = JournalWriter::create(&path).unwrap();
        w.write_line("{\"a\":1}").unwrap();
        w.write_line("{\"b\":2}").unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload bit inside the FIRST line.
        bytes[25] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        match read_journal(&path) {
            Err(JournalError::Corrupt { line: 1, message }) => {
                assert!(message.contains("mismatch"), "{message}");
            }
            other => panic!("expected line-1 corruption, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_point_reads_or_fails_cleanly() {
        let path = temp_path("truncate");
        let mut w = JournalWriter::create(&path).unwrap();
        w.write_line("{\"a\":1}").unwrap();
        w.write_line("{\"b\":2}").unwrap();
        drop(w);
        let bytes = std::fs::read(&path).unwrap();
        for cut in 0..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            // Truncation only ever produces a shorter valid prefix plus a
            // dropped tail — never a hard error.
            let contents = read_journal(&path).unwrap();
            assert!(contents.lines.len() <= 2);
        }
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(read_journal(&path).unwrap().lines.len(), 2);
    }

    #[test]
    fn entry_encode_decode_round_trips() {
        let entry = JournalEntry {
            index: 7,
            seed: 104_736,
            races: vec![(1, 9), (2, 4)],
            attempts: 3,
            failures: vec![
                EntryFailure {
                    attempt: 0,
                    reason: "injected: detector panic (trial-armed, action 0)".into(),
                    site: Some("detector_panic".into()),
                },
                EntryFailure {
                    attempt: 1,
                    reason: "weird \"quoted\"\nreason".into(),
                    site: None,
                },
            ],
            quarantined: false,
            metrics_json: Some("{\n  \"schema\": 1\n}\n".into()),
            events_jsonl: Some("{\"ev\":\"race\"}\n".into()),
            governor: Some(GovernorSummary {
                steps_down: 2,
                steps_up: 1,
                breaches: 1,
                cancelled: Some(BudgetKind::Mem),
                final_rate_millionths: 62_500,
                notes: Vec::new(),
            }),
        };
        let line = entry.encode();
        assert!(!line.contains('\n'), "entries must be single-line");
        assert_eq!(JournalEntry::decode(&line).unwrap(), entry);

        let minimal = JournalEntry {
            index: 0,
            seed: 1,
            ..JournalEntry::default()
        };
        assert_eq!(JournalEntry::decode(&minimal.encode()).unwrap(), minimal);
    }

    #[test]
    fn decode_rejects_malformed_entries() {
        for bad in [
            "",
            "{}",
            "{\"index\":0}",
            "{\"index\":0,\"seed\":1,\"races\":[[1]],\"attempts\":1,\"failures\":[],\"quarantined\":false}",
            "{\"index\":0,\"seed\":1,\"races\":[],\"attempts\":1,\"failures\":[{}],\"quarantined\":false}",
            "{\"index\":0,\"seed\":1,\"races\":[],\"attempts\":1,\"failures\":[],\"quarantined\":\"yes\"}",
            "{\"index\":0,\"seed\":1,\"races\":[],\"attempts\":1,\"failures\":[],\"quarantined\":false,\"governor\":{\"steps_down\":1}}",
            "{\"index\":0,\"seed\":1,\"races\":[],\"attempts\":1,\"failures\":[],\"quarantined\":false,\"governor\":{\"steps_down\":1,\"steps_up\":0,\"breaches\":0,\"cancelled\":\"disk\",\"final_rate_millionths\":1}}",
        ] {
            assert!(JournalEntry::decode(bad).is_err(), "{bad:?} must fail");
        }
    }
}
