//! A recycling slab pool for reference-counted storage blocks.
//!
//! Full-rate detector trials churn through clock storage: every lock
//! release deep-copies a thread clock, every clone-on-write allocates a
//! fresh buffer, and the old buffer is dropped a few events later. The
//! blocks are all the same shape, so paying the global allocator for each
//! one is pure overhead. [`SlabPool`] keeps dropped blocks (both the `Rc`
//! box and the `T` inside, capacity included) on a free list and hands
//! them back out, so steady-state allocation traffic is zero.
//!
//! The pool is deliberately generic — this crate sits below the clock
//! crate in the dependency order, so it cannot name `VectorClock`;
//! `pacer-clock` wraps it as `ClockArena`.
//!
//! Handles are cheap clones sharing one pool (single-threaded `Rc`
//! interior, like the detectors themselves). Blocks re-enter the pool via
//! [`recycle`](SlabPool::recycle); a caller that never recycles just
//! degrades to plain allocation.
//!
//! # Examples
//!
//! ```
//! use pacer_collections::SlabPool;
//!
//! let pool: SlabPool<Vec<u32>> = SlabPool::new();
//! let block = pool.alloc_with(|v| v.extend([1, 2, 3]));
//! assert_eq!(*block, vec![1, 2, 3]);
//! pool.recycle(block);
//! // The next allocation reuses the same storage, cleared.
//! let again = pool.alloc_with(|v| v.push(9));
//! assert_eq!(*again, vec![9]);
//! assert_eq!(pool.stats().reused, 1);
//! ```

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Resets a block to its empty state while keeping its backing capacity.
///
/// Implemented for anything [`Default`] + `Clone`; `Vec`-like types should
/// clear rather than reallocate, which the blanket impl achieves via
/// `clone_from`-style reuse only when the type cooperates. The pool calls
/// [`reset`](PoolItem::reset) on every block it hands back out.
pub trait PoolItem: Default {
    /// Restores the empty state, retaining allocations where possible.
    fn reset(&mut self);
}

impl<T> PoolItem for Vec<T> {
    fn reset(&mut self) {
        self.clear();
    }
}

/// Counters describing a pool's recycling behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Blocks created fresh from the global allocator.
    pub fresh: u64,
    /// Blocks served from the free list instead of the allocator.
    pub reused: u64,
    /// Blocks currently parked on the free list.
    pub free: usize,
}

struct PoolInner<T> {
    free: RefCell<Vec<Rc<T>>>,
    fresh: std::cell::Cell<u64>,
    reused: std::cell::Cell<u64>,
    cap: usize,
}

/// A recycling pool of `Rc<T>` storage blocks. See the module docs.
pub struct SlabPool<T> {
    inner: Rc<PoolInner<T>>,
}

impl<T> Clone for SlabPool<T> {
    fn clone(&self) -> Self {
        SlabPool {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T: PoolItem> Default for SlabPool<T> {
    fn default() -> Self {
        SlabPool::new()
    }
}

/// Free-list length past which [`recycle`](SlabPool::recycle) drops blocks
/// instead of parking them. Live detector metadata is proportional to
/// threads + locks + volatiles, so this is generous; it only guards against
/// pathological churn pinning memory.
const DEFAULT_POOL_CAP: usize = 4096;

impl<T: PoolItem> SlabPool<T> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        SlabPool {
            inner: Rc::new(PoolInner {
                free: RefCell::new(Vec::new()),
                fresh: std::cell::Cell::new(0),
                reused: std::cell::Cell::new(0),
                cap: DEFAULT_POOL_CAP,
            }),
        }
    }

    /// Allocates a block in its [`Default`] state — recycled if the free
    /// list has one, fresh otherwise.
    pub fn alloc(&self) -> Rc<T> {
        self.alloc_with(|_| {})
    }

    /// Allocates a block, reset to empty, then initialized by `init`.
    ///
    /// The returned `Rc` is uniquely owned (strong count 1), so callers may
    /// `Rc::get_mut` it until they share it.
    pub fn alloc_with(&self, init: impl FnOnce(&mut T)) -> Rc<T> {
        let recycled = self.inner.free.borrow_mut().pop();
        match recycled {
            Some(mut rc) => {
                self.inner.reused.set(self.inner.reused.get() + 1);
                let block = Rc::get_mut(&mut rc)
                    .expect("pooled blocks are uniquely owned by the free list");
                block.reset();
                init(block);
                rc
            }
            None => {
                self.inner.fresh.set(self.inner.fresh.get() + 1);
                let mut value = T::default();
                init(&mut value);
                Rc::new(value)
            }
        }
    }

    /// Returns a block to the free list for reuse.
    ///
    /// Only uniquely-owned blocks are recyclable; a block that is still
    /// shared (strong count > 1 after accounting for the handle passed in)
    /// is simply dropped — its other owners keep it alive. Likewise blocks
    /// beyond the pool's parking capacity are dropped to bound memory.
    pub fn recycle(&self, rc: Rc<T>) {
        if Rc::strong_count(&rc) == 1 {
            let mut free = self.inner.free.borrow_mut();
            if free.len() < self.inner.cap {
                free.push(rc);
            }
        }
    }

    /// Drops every parked block, releasing their memory to the allocator.
    /// Allocation counters are retained (they describe lifetime traffic).
    pub fn reset(&self) {
        self.inner.free.borrow_mut().clear();
    }

    /// Recycling counters: fresh vs. reused allocations and the current
    /// free-list length.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            fresh: self.inner.fresh.get(),
            reused: self.inner.reused.get(),
            free: self.inner.free.borrow().len(),
        }
    }

    /// Whether `other` is a handle to this same pool.
    pub fn ptr_eq(&self, other: &SlabPool<T>) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }
}

impl<T> fmt::Debug for SlabPool<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SlabPool(fresh={}, reused={}, free={})",
            self.inner.fresh.get(),
            self.inner.reused.get(),
            self.inner.free.borrow().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_without_recycle_is_always_fresh() {
        let pool: SlabPool<Vec<u8>> = SlabPool::new();
        let a = pool.alloc();
        let b = pool.alloc();
        assert!(!Rc::ptr_eq(&a, &b));
        assert_eq!(pool.stats().fresh, 2);
        assert_eq!(pool.stats().reused, 0);
    }

    #[test]
    fn recycled_block_is_reused_and_reset() {
        let pool: SlabPool<Vec<u8>> = SlabPool::new();
        let a = pool.alloc_with(|v| v.extend([1, 2, 3]));
        let ptr = Rc::as_ptr(&a);
        pool.recycle(a);
        assert_eq!(pool.stats().free, 1);
        let b = pool.alloc();
        assert_eq!(Rc::as_ptr(&b), ptr, "same storage back");
        assert!(b.is_empty(), "reset before handing out");
        assert_eq!(pool.stats().reused, 1);
    }

    #[test]
    fn shared_blocks_are_not_parked() {
        let pool: SlabPool<Vec<u8>> = SlabPool::new();
        let a = pool.alloc();
        let b = Rc::clone(&a);
        pool.recycle(a); // still shared via b: dropped, not parked
        assert_eq!(pool.stats().free, 0);
        drop(b);
    }

    #[test]
    fn handles_share_one_pool() {
        let pool: SlabPool<Vec<u8>> = SlabPool::new();
        let other = pool.clone();
        assert!(pool.ptr_eq(&other));
        other.recycle(pool.alloc());
        assert_eq!(pool.stats().free, 1);
    }

    #[test]
    fn reset_releases_parked_blocks() {
        let pool: SlabPool<Vec<u8>> = SlabPool::new();
        pool.recycle(pool.alloc());
        pool.reset();
        assert_eq!(pool.stats().free, 0);
        assert_eq!(pool.stats().fresh, 1, "counters survive reset");
    }

    #[test]
    fn init_runs_on_both_paths() {
        let pool: SlabPool<Vec<u8>> = SlabPool::new();
        let a = pool.alloc_with(|v| v.push(7));
        assert_eq!(*a, vec![7]);
        pool.recycle(a);
        let b = pool.alloc_with(|v| v.push(9));
        assert_eq!(*b, vec![9]);
    }

    #[test]
    fn debug_shows_counters() {
        let pool: SlabPool<Vec<u8>> = SlabPool::new();
        let _ = pool.alloc();
        assert!(format!("{pool:?}").contains("fresh=1"));
    }
}
