//! A minimal JSON value parser for artifact round-trips.
//!
//! The workspace emits all of its artifacts (metrics snapshots, event
//! JSONL, checkpoint journals) with hand-rolled writers; resuming an
//! interrupted run means reading those artifacts back. This module is the
//! matching reader: a small recursive-descent parser producing a
//! [`JsonValue`] tree with **structured errors** — it never panics on
//! truncated, garbage, or bit-flipped input, which the corrupt-input
//! tests exercise directly.
//!
//! Numbers keep their raw source text ([`JsonValue::Number`]) so `u64`
//! counters survive the round-trip exactly, without detouring through
//! `f64`. Object member order is preserved (`Vec` of pairs, not a map)
//! because the writers emit keys in a fixed order and byte-identical
//! re-emission is a workspace invariant.
//!
//! # Examples
//!
//! ```
//! use pacer_collections::json::JsonValue;
//!
//! let v = JsonValue::parse("{\"count\": 18446744073709551615, \"tags\": [\"a\"]}").unwrap();
//! assert_eq!(v.get("count").and_then(JsonValue::as_u64), Some(u64::MAX));
//! assert_eq!(v.get("tags").and_then(JsonValue::as_array).map(Vec::len), Some(1));
//! assert!(JsonValue::parse("{\"truncated\": ").is_err());
//! ```

use std::error::Error;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source text so integer precision is
    /// never lost; convert via [`JsonValue::as_u64`] / [`JsonValue::as_f64`].
    Number(String),
    /// A string (escapes already decoded).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; member order preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses `text` into a value, requiring that nothing but whitespace
    /// follows it.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] locating the first offending byte on any
    /// malformed input; never panics.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after JSON value"));
        }
        Ok(value)
    }

    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an unsigned integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    pub fn as_array(&self) -> Option<&Vec<JsonValue>> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's members, if it is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, JsonValue)>> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// A structured JSON parse error: what went wrong and where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending position in the input.
    pub offset: usize,
    /// 1-based line containing the offending position.
    pub line: usize,
    /// What the parser expected or found.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json error at line {}, byte {}: {}",
            self.line, self.offset, self.message
        )
    }
}

impl Error for JsonError {}

/// Deeply nested input is an attack/corruption signature, not an
/// artifact this workspace ever writes; bail before the stack does.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        let line = 1 + self.bytes[..self.pos.min(self.bytes.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
        JsonError {
            offset: self.pos,
            line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte 0x{other:02x}"))),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected digits in exponent"));
            }
        }
        // The slice is ASCII digits/sign/dot/exponent, all single bytes.
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("number is not valid UTF-8"))?;
        Ok(JsonValue::Number(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Artifact writers only emit BMP escapes;
                            // reject surrogates instead of mis-decoding.
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => {
                                    return Err(self.err(format!("invalid \\u escape {code:04x}")))
                                }
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("string is not valid UTF-8"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected four hex digits after \\u")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(JsonValue::parse("42").unwrap().as_u64(), Some(42),);
        assert_eq!(
            JsonValue::parse("\"hi\\n\\\"there\\\"\"").unwrap().as_str(),
            Some("hi\n\"there\""),
        );
    }

    #[test]
    fn u64_max_survives_exactly() {
        let v = JsonValue::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(v, JsonValue::Number("18446744073709551615".into()));
    }

    #[test]
    fn parses_nested_structures_preserving_member_order() {
        let v = JsonValue::parse(
            "{\"z\": [1, 2.5, -3e2], \"a\": {\"inner\": null}, \"s\": \"\\u0041\"}",
        )
        .unwrap();
        let members = v.as_object().unwrap();
        let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["z", "a", "s"], "source order, not sorted");
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("A"));
        let z = v.get("z").and_then(JsonValue::as_array).unwrap();
        assert_eq!(z[1].as_f64(), Some(2.5));
        assert_eq!(z[2].as_f64(), Some(-300.0));
    }

    #[test]
    fn truncated_inputs_are_structured_errors() {
        for bad in [
            "",
            "{",
            "{\"a\"",
            "{\"a\":",
            "{\"a\": 1,",
            "[1, 2",
            "\"unterminated",
            "12.",
            "1e",
            "tru",
        ] {
            let err = JsonValue::parse(bad).unwrap_err();
            assert!(!err.message.is_empty(), "{bad:?} should explain itself");
        }
    }

    #[test]
    fn garbage_inputs_are_structured_errors() {
        for bad in [
            "@", "{1: 2}", "[1 2]", "{'a': 1}", "nul", "0x10", "{} extra",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn error_carries_line_number() {
        let err = JsonValue::parse("{\n  \"a\": 1,\n  \"b\": @\n}").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        let text = format!("{}{}", "[".repeat(4096), "]".repeat(4096));
        let err = JsonValue::parse(&text).unwrap_err();
        assert!(err.message.contains("nesting"));
    }

    #[test]
    fn bit_flipped_metrics_snapshot_fails_cleanly() {
        let good = "{\"schema\": 1, \"count\": 12345}";
        // Flip one bit in every byte position in turn; every mutation
        // must either still parse or fail with an error — never panic.
        for i in 0..good.len() {
            let mut bytes = good.as_bytes().to_vec();
            bytes[i] ^= 0x04;
            if let Ok(text) = std::str::from_utf8(&bytes) {
                let _ = JsonValue::parse(text);
            }
        }
    }
}
