//! Crash-safe artifact writes: temp file + fsync + rename.
//!
//! Every artifact this workspace emits (BENCH json, metrics snapshots,
//! trace JSONL, corpus reproducers, checkpoint journals) must never be
//! observable in a torn state: a reader either sees the complete old
//! contents or the complete new contents. [`atomic_write`] gets that
//! guarantee the standard way — write to a uniquely named temporary file
//! *in the same directory* (so the rename cannot cross filesystems),
//! flush it to stable storage, then `rename(2)` over the destination,
//! which POSIX guarantees is atomic with respect to concurrent readers.
//!
//! # Examples
//!
//! ```
//! let dir = std::env::temp_dir().join(format!("pacer-atomic-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("artifact.json");
//! pacer_collections::atomic_write(&path, "{\"ok\":true}\n").unwrap();
//! assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\":true}\n");
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide counter so concurrent writers in the same directory never
/// collide on a temp-file name (tests run multi-threaded).
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Atomically replaces the file at `path` with `contents`.
///
/// The contents are written to a sibling temporary file, fsynced, and
/// renamed over `path`; a crash at any point leaves either the old file
/// intact or the new file complete — never a truncated hybrid. On error
/// the temporary file is removed on a best-effort basis.
///
/// # Errors
///
/// Propagates any IO error from create, write, sync, or rename.
pub fn atomic_write(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("atomic_write target has no file name: {}", path.display()),
        )
    })?;
    let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp_name = format!(
        ".{}.tmp.{}.{}",
        file_name.to_string_lossy(),
        std::process::id(),
        seq
    );
    let tmp_path = match dir {
        Some(d) => d.join(&tmp_name),
        None => tmp_name.clone().into(),
    };

    let result = (|| {
        let mut file = File::create(&tmp_path)?;
        file.write_all(contents.as_ref())?;
        // Push the bytes to stable storage before the rename makes them
        // visible under the final name.
        file.sync_all()?;
        fs::rename(&tmp_path, path)?;
        // Durability of the *rename itself*: the directory entry lives in
        // the parent directory's data, so until that is synced a crash can
        // roll the rename back and lose the artifact (the file's own
        // sync_all does not cover it). Matches the journal's sync_data
        // discipline. Best-effort: some platforms/filesystems reject
        // directory fsync, and the write has already succeeded.
        if let Some(d) = dir {
            if let Ok(dirf) = File::open(d) {
                let _ = dirf.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        // Best-effort cleanup; the original error is what matters.
        let _ = fs::remove_file(&tmp_path);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pacer-atomic-{tag}-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = scratch_dir("replace");
        let path = dir.join("a.txt");
        atomic_write(&path, "one").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "one");
        atomic_write(&path, "two").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "two");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leaves_no_temp_files_behind() {
        let dir = scratch_dir("clean");
        let path = dir.join("b.txt");
        for i in 0..4 {
            atomic_write(&path, format!("round {i}")).unwrap();
        }
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            names,
            vec!["b.txt".to_string()],
            "only the artifact remains"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_an_error_and_cleans_up() {
        let dir = scratch_dir("missing");
        let path = dir.join("no-such-subdir").join("c.txt");
        let err = atomic_write(&path, "x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bare_file_name_without_directory_errors_only_on_empty() {
        let err = atomic_write(std::path::Path::new(""), "x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn concurrent_writers_do_not_collide() {
        let dir = scratch_dir("concurrent");
        let path = dir.join("d.txt");
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let path = path.clone();
                scope.spawn(move || {
                    for _ in 0..16 {
                        atomic_write(&path, format!("writer {t}")).unwrap();
                    }
                });
            }
        });
        let final_text = fs::read_to_string(&path).unwrap();
        assert!(
            final_text.starts_with("writer "),
            "never torn: {final_text}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
