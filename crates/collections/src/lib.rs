//! Dense ID-indexed slab maps for detector metadata.
//!
//! Every entity a race detector keys metadata by — variables, locks,
//! volatiles, threads — already carries a dense small-integer identifier
//! in this workspace. Probing a `HashMap` on every access event pays for
//! hashing, probe chains, and `entry()` churn on the hottest path in the
//! whole system (§3 of the PACER paper counts a metadata lookup per
//! instrumented access). [`IdMap`] replaces those maps with a plain
//! `Vec`-backed slab: lookup is one bounds-checked index, insertion is a
//! slot write, and iteration is in ascending key order (deterministic, no
//! hasher state).
//!
//! Occupancy is tracked per slot, so `len()` (PACER's `tracked_vars`),
//! metadata discard (`remove`), and footprint accounting keep their
//! `HashMap` semantics exactly.
//!
//! [`SlabPool`] complements the slab maps on the allocation side: it
//! recycles the uniformly-shaped storage blocks (vector-clock buffers,
//! mainly) that full-rate trials churn through, so the hot path stops
//! paying the global allocator. `pacer-clock` wraps it as `ClockArena`.
//!
//! The crate also hosts the workspace's dependency-free durability
//! primitives: [`atomic_write`] (crash-safe artifact replacement),
//! [`json`] (a structured-error JSON reader for artifact round-trips), and
//! [`fnv1a64`] (the frame checksum shared by the checkpoint journal and
//! the binary trace format).
//!
//! # Examples
//!
//! ```
//! use pacer_collections::IdMap;
//!
//! let mut m: IdMap<u32, &str> = IdMap::new();
//! m.insert(3, "c");
//! m.insert(1, "a");
//! assert_eq!(m.get(3), Some(&"c"));
//! assert_eq!(m.len(), 2);
//! // Iteration is by ascending key, independent of insertion order.
//! let keys: Vec<u32> = m.keys().collect();
//! assert_eq!(keys, vec![1, 3]);
//! assert_eq!(m.remove(&1), Some("a"));
//! assert_eq!(m.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic_io;
pub mod hash;
pub mod json;
pub mod pool;

pub use atomic_io::atomic_write;
pub use hash::fnv1a64;
pub use json::{JsonError, JsonValue};
pub use pool::{PoolItem, PoolStats, SlabPool};

use std::fmt;
use std::marker::PhantomData;

/// A key type that is a thin wrapper over a dense small-integer index.
///
/// Implemented by the workspace's ID newtypes (`VarId`, `LockId`, …) and
/// the primitive index types. `from_index(k.index()) == k` must hold.
pub trait DenseKey: Copy + Eq {
    /// The slab slot this key addresses.
    fn index(&self) -> usize;
    /// Reconstructs the key addressing slot `index`.
    fn from_index(index: usize) -> Self;
}

impl DenseKey for u32 {
    #[inline]
    fn index(&self) -> usize {
        *self as usize
    }
    #[inline]
    fn from_index(index: usize) -> Self {
        u32::try_from(index).expect("index exceeds u32 key space")
    }
}

impl DenseKey for usize {
    #[inline]
    fn index(&self) -> usize {
        *self
    }
    #[inline]
    fn from_index(index: usize) -> Self {
        index
    }
}

/// A map from dense integer-like keys to values, backed by a `Vec` slab.
///
/// Drop-in replacement for `HashMap<K, V>` on ID-keyed metadata tables:
/// same observable semantics for `get`/`insert`/`remove`/`len`/iteration
/// (except iteration order, which is ascending key order — *more*
/// deterministic than a hash map), with O(1) unhashed access.
///
/// Memory is proportional to the largest key index ever inserted, not the
/// live count; for the dense IDs this workspace allocates that is the
/// right trade.
pub struct IdMap<K, V> {
    slots: Vec<Option<V>>,
    len: usize,
    _key: PhantomData<K>,
}

impl<K: DenseKey, V> IdMap<K, V> {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        IdMap {
            slots: Vec::new(),
            len: 0,
            _key: PhantomData,
        }
    }

    /// Creates an empty map with room for keys of index `< capacity`
    /// without reallocating.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        IdMap {
            slots: Vec::with_capacity(capacity),
            len: 0,
            _key: PhantomData,
        }
    }

    /// Number of occupied slots.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no slot is occupied.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` if `key`'s slot is occupied.
    #[inline]
    pub fn contains_key(&self, key: &K) -> bool {
        matches!(self.slots.get(key.index()), Some(Some(_)))
    }

    /// Returns the value at `key`, if present.
    #[inline]
    pub fn get(&self, key: K) -> Option<&V> {
        self.slots.get(key.index()).and_then(Option::as_ref)
    }

    /// Returns the value at `key` mutably, if present.
    #[inline]
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        self.slots.get_mut(key.index()).and_then(Option::as_mut)
    }

    /// Inserts `value` at `key`, returning the previous occupant.
    #[inline]
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let i = key.index();
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        let old = self.slots[i].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns the value at `key` (metadata discard).
    #[inline]
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let old = self.slots.get_mut(key.index()).and_then(Option::take);
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Returns the value at `key`, inserting `f()` first if vacant.
    ///
    /// The slab's replacement for `HashMap::entry(k).or_insert_with(f)`,
    /// without the `Entry` allocation churn.
    #[inline]
    pub fn get_or_insert_with(&mut self, key: K, f: impl FnOnce() -> V) -> &mut V {
        let i = key.index();
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        let slot = &mut self.slots[i];
        if slot.is_none() {
            *slot = Some(f());
            self.len += 1;
        }
        slot.as_mut().expect("slot just filled")
    }

    /// Removes all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.len = 0;
    }

    /// Iterates `(key, &value)` over occupied slots in ascending key
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (K::from_index(i), v)))
    }

    /// Iterates `(key, &mut value)` in ascending key order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (K, &mut V)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.as_mut().map(|v| (K::from_index(i), v)))
    }

    /// Iterates occupied keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| K::from_index(i)))
    }

    /// Iterates values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Iterates values mutably in ascending key order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.slots.iter_mut().filter_map(Option::as_mut)
    }

    /// Slab words allocated (occupied or not), for capacity accounting.
    #[must_use]
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }
}

impl<K: DenseKey, V> Default for IdMap<K, V> {
    fn default() -> Self {
        IdMap::new()
    }
}

impl<K: DenseKey, V: Clone> Clone for IdMap<K, V> {
    fn clone(&self) -> Self {
        IdMap {
            slots: self.slots.clone(),
            len: self.len,
            _key: PhantomData,
        }
    }
}

impl<K: DenseKey + fmt::Debug, V: fmt::Debug> fmt::Debug for IdMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: DenseKey, V: PartialEq> PartialEq for IdMap<K, V> {
    /// Equality over the key → value mapping; trailing vacant capacity is
    /// ignored.
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        self.iter()
            .zip(other.iter())
            .all(|((ka, va), (kb, vb))| ka == kb && va == vb)
    }
}

impl<K: DenseKey, V: Eq> Eq for IdMap<K, V> {}

impl<K: DenseKey, V> std::ops::Index<K> for IdMap<K, V> {
    type Output = V;
    #[inline]
    fn index(&self, key: K) -> &V {
        self.get(key).expect("no entry for key")
    }
}

impl<K: DenseKey, V> std::ops::Index<&K> for IdMap<K, V> {
    type Output = V;
    #[inline]
    fn index(&self, key: &K) -> &V {
        self.get(*key).expect("no entry for key")
    }
}

impl<K: DenseKey, V> FromIterator<(K, V)> for IdMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = IdMap::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: IdMap<u32, String> = IdMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(5, "five".into()), None);
        assert_eq!(m.insert(0, "zero".into()), None);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(5).map(String::as_str), Some("five"));
        assert_eq!(m.get(1), None);
        assert_eq!(m.insert(5, "FIVE".into()).as_deref(), Some("five"));
        assert_eq!(m.len(), 2, "overwrite does not grow");
        assert_eq!(m.remove(&5).as_deref(), Some("FIVE"));
        assert_eq!(m.remove(&5), None, "double remove is None");
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn slot_reuse_after_remove() {
        let mut m: IdMap<u32, u64> = IdMap::new();
        m.insert(3, 30);
        let cap = m.slot_capacity();
        m.remove(&3);
        m.insert(3, 31);
        assert_eq!(m.slot_capacity(), cap, "reuses the vacated slot");
        assert_eq!(m.get(3), Some(&31));
    }

    #[test]
    fn occupancy_count_tracks_exactly() {
        let mut m: IdMap<u32, u32> = IdMap::new();
        for k in 0..100 {
            m.insert(k, k * 2);
        }
        assert_eq!(m.len(), 100);
        for k in (0..100).step_by(2) {
            m.remove(&k);
        }
        assert_eq!(m.len(), 50);
        assert_eq!(m.values().count(), 50);
        assert_eq!(m.iter().count(), 50);
    }

    #[test]
    fn iteration_is_ascending_key_order_regardless_of_insertion() {
        let mut m: IdMap<u32, char> = IdMap::new();
        for (k, v) in [(9, 'i'), (2, 'c'), (7, 'g'), (0, 'a')] {
            m.insert(k, v);
        }
        let got: Vec<(u32, char)> = m.iter().map(|(k, v)| (k, *v)).collect();
        assert_eq!(got, vec![(0, 'a'), (2, 'c'), (7, 'g'), (9, 'i')]);
    }

    #[test]
    fn get_or_insert_with_matches_entry_semantics() {
        let mut m: IdMap<u32, Vec<u32>> = IdMap::new();
        m.get_or_insert_with(4, Vec::new).push(1);
        m.get_or_insert_with(4, || panic!("occupied: must not run"))
            .push(2);
        assert_eq!(m.get(4), Some(&vec![1, 2]));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn equality_ignores_trailing_capacity() {
        let mut a: IdMap<u32, u32> = IdMap::new();
        let mut b: IdMap<u32, u32> = IdMap::new();
        a.insert(1, 10);
        b.insert(99, 0);
        b.insert(1, 10);
        b.remove(&99);
        assert_eq!(a, b);
    }

    #[test]
    fn index_by_value_and_reference() {
        let mut m: IdMap<u32, &str> = IdMap::new();
        m.insert(2, "two");
        assert_eq!(m[2], "two");
        assert_eq!(m[&2], "two");
    }

    #[test]
    #[should_panic(expected = "no entry for key")]
    fn index_missing_panics() {
        let m: IdMap<u32, u32> = IdMap::new();
        let _ = m[3];
    }

    #[test]
    fn differential_against_hashmap_under_random_workload() {
        use pacer_prng::Rng;
        use std::collections::HashMap;

        for seed in 0..8 {
            let mut rng = Rng::seed_from_u64(seed);
            let mut slab: IdMap<u32, u64> = IdMap::new();
            let mut reference: HashMap<u32, u64> = HashMap::new();
            for step in 0..5_000u64 {
                let k = rng.gen_range(0u32..64);
                match rng.gen_range(0u32..4) {
                    0 | 1 => {
                        assert_eq!(slab.insert(k, step), reference.insert(k, step));
                    }
                    2 => {
                        assert_eq!(slab.remove(&k), reference.remove(&k));
                    }
                    _ => {
                        assert_eq!(slab.get(k), reference.get(&k));
                        assert_eq!(slab.contains_key(&k), reference.contains_key(&k));
                    }
                }
                assert_eq!(slab.len(), reference.len());
            }
            let mut expect: Vec<(u32, u64)> = reference.iter().map(|(&k, &v)| (k, v)).collect();
            expect.sort_unstable();
            let got: Vec<(u32, u64)> = slab.iter().map(|(k, v)| (k, *v)).collect();
            assert_eq!(got, expect, "seed {seed}: final contents diverge");
        }
    }
}
