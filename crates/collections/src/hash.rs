//! Dependency-free content checksums shared by the durability layers.
//!
//! Both checksummed on-disk formats in this workspace — the fleet
//! checkpoint journal (`pacer-harness`) and the binary trace encoding
//! (`pacer-trace`) — frame their payloads with an FNV-1a 64-bit digest.
//! The function lives here, below both crates in the dependency graph, so
//! the two formats are guaranteed to agree on the checksum definition.
//!
//! FNV-1a is not cryptographic; it guards against torn writes, truncation,
//! and bit rot, not adversaries. It was chosen for the same reasons as in
//! the journal: one multiply and one xor per byte, zero dependencies, and
//! a well-known reference specification.
//!
//! # Examples
//!
//! ```
//! use pacer_collections::fnv1a64;
//!
//! // Reference vectors from the FNV specification.
//! assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
//! assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
//! ```

/// FNV-1a 64-bit offset basis.
pub const FNV1A64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV1A64_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of `bytes`.
///
/// This is the frame checksum of both the checkpoint journal
/// (`P1 <len> <fnv1a64-hex> <json>`) and the binary trace format
/// (TRACE_FORMAT.md).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV1A64_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV1A64_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors() {
        // Published FNV-1a-64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn single_bit_flips_change_the_digest() {
        let base = b"pacer binary trace frame payload".to_vec();
        let digest = fnv1a64(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(fnv1a64(&flipped), digest, "flip byte {i} bit {bit}");
            }
        }
    }
}
