//! Self-contained seeded pseudo-random numbers for the PACER suite.
//!
//! Everything random in this workspace — trace generation, the simulated
//! VM scheduler, samplers, LITERACE burst jitter — must be a pure function
//! of an explicit `u64` seed so that experiments are reproducible and the
//! parallel trial engine can shard work without changing results. This
//! crate provides that substrate with zero external dependencies:
//!
//! * [`Rng`] — xoshiro256++ (Blackman & Vigna), a fast, well-tested
//!   general-purpose generator with 256 bits of state.
//! * [`split_mix64`] — the SplitMix64 step function, used to expand a
//!   64-bit seed into the full xoshiro state (the initialization the
//!   xoshiro authors recommend) and handy for deriving independent
//!   per-trial seed streams.
//!
//! The API mirrors the subset of `rand` the workspace previously used
//! (`seed_from_u64`, `gen_bool`, `gen_range`, slice shuffling), so call
//! sites read the same while the whole workspace builds offline.
//!
//! # Examples
//!
//! ```
//! use pacer_prng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let die = rng.gen_range(1u32..=6);
//! assert!((1..=6).contains(&die));
//!
//! // Equal seeds ⇒ equal streams.
//! let mut a = Rng::seed_from_u64(7);
//! let mut b = Rng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

use std::ops::{Range, RangeInclusive};

/// One step of the SplitMix64 generator: advances `*state` and returns the
/// next output.
///
/// Used to expand seeds (every 64-bit seed yields a full-entropy 256-bit
/// xoshiro state, even seed 0) and to derive independent seed streams:
/// hashing `(base, index)` through SplitMix64 decorrelates per-trial seeds
/// far better than `base + k * index`.
#[inline]
pub fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a decorrelated seed for stream `index` of a seed family rooted
/// at `base`.
///
/// Deterministic, and distinct `(base, index)` pairs map to well-separated
/// seeds (two rounds of SplitMix64 mixing), so parallel trials seeded this
/// way are independent of execution order.
#[inline]
#[must_use]
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut s = base ^ 0xA076_1D64_78BD_642F_u64.wrapping_mul(index.wrapping_add(1));
    let first = split_mix64(&mut s);
    s ^= first ^ index;
    split_mix64(&mut s)
}

/// A seeded xoshiro256++ pseudo-random number generator.
///
/// Not cryptographically secure; intended for simulation and testing.
/// Equal seeds produce equal streams on every platform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose 256-bit state is expanded from `seed`
    /// with SplitMix64 (the xoshiro authors' recommended initialization).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            split_mix64(&mut sm),
            split_mix64(&mut sm),
            split_mix64(&mut sm),
            split_mix64(&mut sm),
        ];
        Rng { s }
    }

    /// Returns the next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    ///
    /// `p ≤ 0` always returns `false`; `p ≥ 1` always returns `true`.
    /// (The external API this replaces panicked outside `[0, 1]`; every
    /// caller in this workspace computes clamped probabilities, and
    /// saturating is the useful behavior for rate arithmetic.)
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Returns a uniform value in `range`.
    ///
    /// Supported ranges: `Range`/`RangeInclusive` over `u32`, `u64`,
    /// `usize`, and half-open `Range<f64>`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform integer in `[0, n)` via Lemire's unbiased multiply-shift
    /// rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn bounded_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(n);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(n);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// A range type [`Rng::gen_range`] can sample uniformly.
pub trait UniformRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform sample from `self`.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! uniform_int_range {
    ($($ty:ty),*) => {$(
        impl UniformRange for Range<$ty> {
            type Output = $ty;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded_u64(span) as $ty
            }
        }
        impl UniformRange for RangeInclusive<$ty> {
            type Output = $ty;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                lo + rng.bounded_u64(span + 1) as $ty
            }
        }
    )*};
}

uniform_int_range!(u32, usize);

impl UniformRange for Range<u64> {
    type Output = u64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded_u64(self.end - self.start)
    }
}

impl UniformRange for RangeInclusive<u64> {
    type Output = u64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u64::MAX {
            return rng.next_u64();
        }
        lo + rng.bounded_u64(hi - lo + 1)
    }
}

impl UniformRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_mix64_matches_reference_vector() {
        // First outputs for seed 0, per the reference implementation
        // (same sequence as Java's SplittableRandom).
        let mut s = 0u64;
        assert_eq!(split_mix64(&mut s), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = Rng::seed_from_u64(123);
        let mut b = Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        // xoshiro must never be seeded with the all-zero state; SplitMix64
        // expansion guarantees that, even for seed 0.
        let mut rng = Rng::seed_from_u64(0);
        let vals: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(sorted.len() > 8, "outputs should not repeat immediately");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..1000 {
            let a = rng.gen_range(3u32..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(1u32..=6);
            assert!((1..=6).contains(&b));
            let c = rng.gen_range(0usize..5);
            assert!(c < 5);
            let d = rng.gen_range(0.5f64..1.5);
            assert!((0.5..1.5).contains(&d));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = Rng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0u32..6) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 6 values should appear");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = Rng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((0.27..0.33).contains(&rate), "rate {rate} far from 0.3");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(13);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b = a.clone();
        Rng::seed_from_u64(17).shuffle(&mut a);
        Rng::seed_from_u64(17).shuffle(&mut b);
        assert_eq!(a, b, "equal seeds shuffle identically");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(a, sorted, "50 elements almost surely move");
    }

    #[test]
    fn bounded_is_unbiased_enough() {
        // Chi-square-ish sanity check over a modulus that would bias a
        // naive `next % n`.
        let mut rng = Rng::seed_from_u64(19);
        let n = 10u64;
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.bounded_u64(n) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "count {c} far from 10k");
        }
    }

    #[test]
    fn derive_seed_decorrelates_indices() {
        let mut seen = std::collections::HashSet::new();
        for base in 0..4u64 {
            for i in 0..256u64 {
                assert!(seen.insert(derive_seed(base, i)), "collision");
            }
        }
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3), "deterministic");
    }
}
