//! Property tests for the unsampled detectors: precision, completeness,
//! and GENERIC/FASTTRACK agreement, against the happens-before oracle.

// Compiled only with the non-default `proptest` feature (restore the
// `proptest` dev-dependency first; the workspace is offline by default).
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use pacer_fasttrack::{FastTrackDetector, GenericDetector};
use pacer_trace::gen::GenConfig;
use pacer_trace::{Detector, HbOracle, RaceReport, Trace, VarId};

fn racy_trace(seed: u64, discipline: f64) -> Trace {
    GenConfig::small(seed)
        .with_lock_discipline(discipline)
        .generate()
}

fn racy_vars(races: &[RaceReport]) -> Vec<VarId> {
    let mut v: Vec<VarId> = races.iter().map(|r| r.x).collect();
    v.sort();
    v.dedup();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// FASTTRACK reports only true races (precision).
    #[test]
    fn fasttrack_is_precise(seed in 0u64..10_000, discipline in 0.0f64..=1.0) {
        let trace = racy_trace(seed, discipline);
        let oracle = HbOracle::analyze(&trace);
        let truth: std::collections::HashSet<_> =
            oracle.distinct_races().into_iter().collect();
        let mut ft = FastTrackDetector::new();
        ft.run(&trace);
        for race in ft.races() {
            prop_assert!(truth.contains(&race.distinct_key()), "{race}");
        }
    }

    /// GENERIC reports only true races (precision).
    #[test]
    fn generic_is_precise(seed in 0u64..10_000, discipline in 0.0f64..=1.0) {
        let trace = racy_trace(seed, discipline);
        let oracle = HbOracle::analyze(&trace);
        let truth: std::collections::HashSet<_> =
            oracle.distinct_races().into_iter().collect();
        let mut generic = GenericDetector::new();
        generic.run(&trace);
        for race in generic.races() {
            prop_assert!(truth.contains(&race.distinct_key()), "{race}");
        }
    }

    /// Both detectors flag exactly the oracle's racy variables: sound and
    /// complete at variable granularity (before divergence, the first race
    /// per variable is always caught).
    #[test]
    fn detectors_flag_exactly_the_racy_vars(seed in 0u64..10_000, discipline in 0.0f64..=1.0) {
        let trace = racy_trace(seed, discipline);
        let oracle = HbOracle::analyze(&trace);
        let expected = oracle.racy_vars();

        let mut ft = FastTrackDetector::new();
        ft.run(&trace);
        prop_assert_eq!(racy_vars(ft.races()), expected.clone());

        let mut generic = GenericDetector::new();
        generic.run(&trace);
        prop_assert_eq!(racy_vars(generic.races()), expected);
    }

    /// Race-free traces produce no reports (completeness direction).
    #[test]
    fn silence_on_race_free_traces(seed in 0u64..10_000) {
        let trace = GenConfig::small(seed).race_free().generate();
        let mut ft = FastTrackDetector::new();
        ft.run(&trace);
        prop_assert!(ft.races().is_empty());
        let mut generic = GenericDetector::new();
        generic.run(&trace);
        prop_assert!(generic.races().is_empty());
    }

    /// FASTTRACK and GENERIC first *detect* a race on each variable at the
    /// same program point (the second access of the first report): they
    /// diverge only after the first race. The first-access attribution may
    /// differ — FASTTRACK keeps one epoch representative, GENERIC reports
    /// every racing vector entry in thread order.
    #[test]
    fn first_report_per_var_agrees(seed in 0u64..10_000, discipline in 0.2f64..=0.9) {
        let trace = racy_trace(seed, discipline);
        let first = |races: &[RaceReport]| {
            let mut map = std::collections::HashMap::new();
            for r in races {
                map.entry(r.x).or_insert(r.second.site);
            }
            map
        };
        let mut ft = FastTrackDetector::new();
        ft.run(&trace);
        let mut generic = GenericDetector::new();
        generic.run(&trace);
        prop_assert_eq!(first(ft.races()), first(generic.races()));
    }
}
