//! Shared synchronization-clock state for the unsampled detectors.

use pacer_clock::{ThreadId, VectorClock};
use pacer_collections::IdMap;
use pacer_trace::{Action, LockId, VolatileId};

/// Vector clocks for every synchronization object: threads, locks, and
/// volatile variables (§2.1).
///
/// Both [`GenericDetector`](crate::GenericDetector) and
/// [`FastTrackDetector`](crate::FastTrackDetector) perform identical
/// analysis at synchronization operations (Algorithms 1–4 for locks and
/// threads, 14–15 for volatiles); this type implements it once.
///
/// Thread clocks are created lazily, initialized to `inc_t(⊥_c)` as in the
/// initial analysis state (§A.4, eq. 7).
///
/// # Examples
///
/// ```
/// use pacer_clock::ThreadId;
/// use pacer_fasttrack::SyncClocks;
/// use pacer_trace::{Action, LockId};
///
/// let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
/// let m = LockId::new(0);
/// let mut sync = SyncClocks::new();
/// sync.apply(&Action::Release { t: t0, m });
/// sync.apply(&Action::Acquire { t: t1, m });
/// // t1 now knows t0's time at the release.
/// assert_eq!(sync.clock(t1).get(t0), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SyncClocks {
    threads: Vec<Option<VectorClock>>,
    locks: IdMap<LockId, VectorClock>,
    volatiles: IdMap<VolatileId, VectorClock>,
    /// First thread whose clock component overflowed, if any. Clocks
    /// saturate rather than panic; the harness turns a post-run `Some`
    /// into a quarantinable trial error.
    overflow: Option<ThreadId>,
}

impl SyncClocks {
    /// Creates empty synchronization state.
    pub fn new() -> Self {
        SyncClocks::default()
    }

    /// The current vector clock of thread `t`, creating it at its initial
    /// value `inc_t(⊥_c)` if `t` has not been seen yet.
    pub fn clock(&mut self, t: ThreadId) -> &VectorClock {
        self.ensure(t)
    }

    /// Read-only view of thread `t`'s clock, or `None` if `t` has not
    /// been materialized yet. Unlike [`clock`](Self::clock) this never
    /// mutates, so invariant checks can walk the state as-is.
    pub fn thread_clock(&self, t: ThreadId) -> Option<&VectorClock> {
        self.threads.get(t.index()).and_then(Option::as_ref)
    }

    fn ensure(&mut self, t: ThreadId) -> &mut VectorClock {
        Self::ensure_slot(&mut self.threads, t)
    }

    /// Increments `clock[t]`, recording the first overflow stickily. The
    /// clock itself saturates (see [`VectorClock::try_increment`]), so the
    /// analysis stays sound — it just stops advancing `t`'s time.
    fn bump(overflow: &mut Option<ThreadId>, clock: &mut VectorClock, t: ThreadId) {
        if let Err(e) = clock.try_increment(t) {
            overflow.get_or_insert(e.thread);
        }
    }

    /// The thread whose clock first overflowed during this run, if any.
    pub fn clock_overflow(&self) -> Option<ThreadId> {
        self.overflow
    }

    /// Free-standing slot materialization so `apply` can borrow a thread
    /// clock and a lock/volatile clock simultaneously (disjoint fields)
    /// instead of cloning one side per synchronization operation.
    fn ensure_slot(threads: &mut Vec<Option<VectorClock>>, t: ThreadId) -> &mut VectorClock {
        let i = t.index();
        if i >= threads.len() {
            threads.resize(i + 1, None);
        }
        threads[i].get_or_insert_with(|| {
            let mut c = VectorClock::new();
            c.increment(t);
            c
        })
    }

    /// Applies a synchronization action (Algorithms 1–4, 14–15). Returns
    /// `true` if the action was a synchronization action; data accesses and
    /// sampling markers return `false` untouched.
    pub fn apply(&mut self, action: &Action) -> bool {
        match *action {
            Action::Acquire { t, m } => {
                // C_t ← C_t ⊔ C_m
                if let Some(cm) = self.locks.get(m) {
                    Self::ensure_slot(&mut self.threads, t).join(cm);
                } else {
                    self.ensure(t);
                }
            }
            Action::Release { t, m } => {
                // C_m ← C_t ; C_t[t]++
                let ct = Self::ensure_slot(&mut self.threads, t);
                match self.locks.get_mut(m) {
                    Some(cm) => cm.clone_from(ct),
                    None => {
                        self.locks.insert(m, ct.clone());
                    }
                }
                let slot = Self::ensure_slot(&mut self.threads, t);
                Self::bump(&mut self.overflow, slot, t);
            }
            Action::Fork { t, u } => {
                // C_u ← C_t ; C_u[u]++ ; C_t[t]++
                let ct = self.ensure(t).clone();
                let cu = Self::ensure_slot(&mut self.threads, u);
                *cu = ct;
                Self::bump(&mut self.overflow, cu, u);
                let slot = Self::ensure_slot(&mut self.threads, t);
                Self::bump(&mut self.overflow, slot, t);
            }
            Action::Join { t, u } => {
                // C_t ← C_u ⊔ C_t ; C_u[u]++
                let cu = self.ensure(u).clone();
                self.ensure(t).join(&cu);
                let slot = Self::ensure_slot(&mut self.threads, u);
                Self::bump(&mut self.overflow, slot, u);
            }
            Action::VolRead { t, v } => {
                // C_t ← C_t ⊔ C_v
                if let Some(cv) = self.volatiles.get(v) {
                    Self::ensure_slot(&mut self.threads, t).join(cv);
                } else {
                    self.ensure(t);
                }
            }
            Action::VolWrite { t, v } => {
                // C_v ← C_v ⊔ C_t ; C_t[t]++
                let ct = Self::ensure_slot(&mut self.threads, t);
                self.volatiles
                    .get_or_insert_with(v, Default::default)
                    .join(ct);
                let slot = Self::ensure_slot(&mut self.threads, t);
                Self::bump(&mut self.overflow, slot, t);
            }
            _ => return false,
        }
        true
    }

    /// Approximate live metadata footprint in machine words (for space
    /// accounting): one word per materialized clock slot.
    pub fn footprint_words(&self) -> usize {
        let t: usize = self.threads.iter().flatten().map(VectorClock::width).sum();
        let l: usize = self.locks.values().map(VectorClock::width).sum();
        let v: usize = self.volatiles.values().map(VectorClock::width).sum();
        t + l + v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn fresh_thread_starts_at_one() {
        let mut s = SyncClocks::new();
        assert_eq!(s.clock(t(3)).get(t(3)), 1);
        assert_eq!(s.clock(t(3)).get(t(0)), 0);
    }

    #[test]
    fn release_acquire_transfers_time() {
        let mut s = SyncClocks::new();
        let m = LockId::new(0);
        s.apply(&Action::Release { t: t(0), m });
        // The release incremented t0 past the published time.
        assert_eq!(s.clock(t(0)).get(t(0)), 2);
        s.apply(&Action::Acquire { t: t(1), m });
        assert_eq!(s.clock(t(1)).get(t(0)), 1);
        assert_eq!(s.clock(t(1)).get(t(1)), 1);
    }

    #[test]
    fn acquire_of_unreleased_lock_is_noop() {
        let mut s = SyncClocks::new();
        s.apply(&Action::Acquire {
            t: t(0),
            m: LockId::new(9),
        });
        assert_eq!(s.clock(t(0)).get(t(0)), 1);
    }

    #[test]
    fn fork_publishes_parent_time_to_child() {
        let mut s = SyncClocks::new();
        s.apply(&Action::Fork { t: t(0), u: t(1) });
        assert_eq!(s.clock(t(1)).get(t(0)), 1, "child sees parent");
        assert_eq!(s.clock(t(1)).get(t(1)), 1, "child incremented own slot");
        assert_eq!(s.clock(t(0)).get(t(0)), 2, "parent advanced past fork");
    }

    #[test]
    fn join_publishes_child_time_to_parent() {
        let mut s = SyncClocks::new();
        s.apply(&Action::Fork { t: t(0), u: t(1) });
        s.apply(&Action::Release {
            t: t(1),
            m: LockId::new(0),
        });
        s.apply(&Action::Join { t: t(0), u: t(1) });
        assert_eq!(s.clock(t(0)).get(t(1)), 2, "parent sees child's time");
    }

    #[test]
    fn volatile_write_then_read_creates_edge() {
        let mut s = SyncClocks::new();
        let v = VolatileId::new(0);
        s.apply(&Action::VolWrite { t: t(0), v });
        s.apply(&Action::VolRead { t: t(1), v });
        assert_eq!(s.clock(t(1)).get(t(0)), 1);
    }

    #[test]
    fn volatile_write_joins_rather_than_copies() {
        // Two concurrent volatile writers: the volatile's clock accumulates
        // both (Algorithm 15 joins).
        let mut s = SyncClocks::new();
        let v = VolatileId::new(0);
        s.apply(&Action::VolWrite { t: t(0), v });
        s.apply(&Action::VolWrite { t: t(1), v });
        s.apply(&Action::VolRead { t: t(2), v });
        assert_eq!(s.clock(t(2)).get(t(0)), 1);
        assert_eq!(s.clock(t(2)).get(t(1)), 1);
    }

    #[test]
    fn non_sync_actions_are_ignored() {
        let mut s = SyncClocks::new();
        assert!(!s.apply(&Action::SampleBegin));
        assert!(!s.apply(&Action::Read {
            t: t(0),
            x: pacer_trace::VarId::new(0),
            site: pacer_trace::SiteId::new(0),
        }));
    }

    #[test]
    fn overflow_is_recorded_stickily_and_clock_saturates() {
        let mut s = SyncClocks::new();
        let mut c = VectorClock::new();
        c.set(t(0), pacer_clock::ClockValue::MAX);
        s.threads = vec![Some(c)];
        assert_eq!(s.clock_overflow(), None);
        let m = LockId::new(0);
        s.apply(&Action::Release { t: t(0), m });
        assert_eq!(s.clock_overflow(), Some(t(0)));
        assert_eq!(s.clock(t(0)).get(t(0)), pacer_clock::ClockValue::MAX);
        // A later overflow on another thread does not displace the first.
        let mut c1 = VectorClock::new();
        c1.set(t(1), pacer_clock::ClockValue::MAX);
        s.threads.push(Some(c1));
        s.apply(&Action::Release { t: t(1), m });
        assert_eq!(s.clock_overflow(), Some(t(0)));
    }

    #[test]
    fn footprint_counts_materialized_slots() {
        let mut s = SyncClocks::new();
        assert_eq!(s.footprint_words(), 0);
        s.apply(&Action::Fork { t: t(0), u: t(1) });
        assert!(s.footprint_words() >= 3, "t0 (1 slot) + t1 (2 slots)");
    }
}
