//! Shared synchronization-clock state for the unsampled detectors.

use pacer_clock::{ClockArena, CowClock, ThreadId, VectorClock};
use pacer_collections::IdMap;
use pacer_trace::{Action, LockId, VolatileId};

/// A thread's clock plus its monotone-join cache: for each lock and
/// volatile, the stamp of the sync-object clock the thread last fully
/// joined. While the object's stamp is unchanged its clock is unchanged,
/// and thread clocks only grow, so `C_m ⊑ C_t` still holds and the join
/// can be skipped in `O(1)`.
#[derive(Clone, Debug, Default)]
struct ThreadClock {
    clock: VectorClock,
    lock_joined: IdMap<LockId, u64>,
    vol_joined: IdMap<VolatileId, u64>,
}

/// A lock or volatile clock with the stamp of its last content change.
#[derive(Clone, Debug)]
struct SyncClock {
    clock: CowClock,
    stamp: u64,
}

/// Vector clocks for every synchronization object: threads, locks, and
/// volatile variables (§2.1).
///
/// Both [`GenericDetector`](crate::GenericDetector) and
/// [`FastTrackDetector`](crate::FastTrackDetector) perform identical
/// analysis at synchronization operations (Algorithms 1–4 for locks and
/// threads, 14–15 for volatiles); this type implements it once.
///
/// Thread clocks are created lazily, initialized to `inc_t(⊥_c)` as in the
/// initial analysis state (§A.4, eq. 7).
///
/// Unlike PACER, these detectors have no version-epoch machinery, so every
/// acquire would pay an `O(n)` join. Two transparent optimizations close
/// the gap without changing any observable behavior:
///
/// * a *monotone-join cache*: each lock/volatile clock carries a version
///   stamp bumped whenever its content changes, and each thread remembers
///   the stamp it last joined — a repeated acquire of an unchanged lock is
///   skipped in `O(1)` (stamps are monotone counters, so recycled storage
///   cannot alias a stale stamp);
/// * a per-instance [`ClockArena`] backing lock/volatile clock storage, so
///   clock buffers are recycled instead of round-tripping the allocator.
///
/// Both can be disabled for ablation via
/// [`with_join_cache`](Self::with_join_cache) and
/// [`with_clock_arena`](Self::with_clock_arena).
///
/// # Examples
///
/// ```
/// use pacer_clock::ThreadId;
/// use pacer_fasttrack::SyncClocks;
/// use pacer_trace::{Action, LockId};
///
/// let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
/// let m = LockId::new(0);
/// let mut sync = SyncClocks::new();
/// sync.apply(&Action::Release { t: t0, m });
/// sync.apply(&Action::Acquire { t: t1, m });
/// // t1 now knows t0's time at the release.
/// assert_eq!(sync.clock(t1).get(t0), 1);
/// ```
#[derive(Clone, Debug)]
pub struct SyncClocks {
    threads: Vec<Option<ThreadClock>>,
    locks: IdMap<LockId, SyncClock>,
    volatiles: IdMap<VolatileId, SyncClock>,
    /// First thread whose clock component overflowed, if any. Clocks
    /// saturate rather than panic; the harness turns a post-run `Some`
    /// into a quarantinable trial error.
    overflow: Option<ThreadId>,
    /// Arena recycling lock/volatile clock storage, when enabled.
    arena: Option<ClockArena>,
    /// Monotone source of sync-object version stamps; `0` is reserved for
    /// "never stamped", so live stamps start at 1.
    next_stamp: u64,
    use_join_cache: bool,
    /// Acquires/volatile reads resolved by the cache instead of a join.
    cache_hits: u64,
}

impl Default for SyncClocks {
    fn default() -> Self {
        SyncClocks {
            threads: Vec::new(),
            locks: IdMap::new(),
            volatiles: IdMap::new(),
            overflow: None,
            arena: Some(ClockArena::new()),
            next_stamp: 0,
            use_join_cache: true,
            cache_hits: 0,
        }
    }
}

impl SyncClocks {
    /// Creates empty synchronization state (join cache and arena enabled).
    pub fn new() -> Self {
        SyncClocks::default()
    }

    /// Enables or disables the monotone-join cache. Observable behavior is
    /// identical either way; the flag exists for the `clock_ablation`
    /// benchmark.
    pub fn with_join_cache(mut self, enabled: bool) -> Self {
        self.use_join_cache = enabled;
        self
    }

    /// Enables or disables arena-recycled lock/volatile clock storage.
    /// Observable behavior is identical either way.
    pub fn with_clock_arena(mut self, enabled: bool) -> Self {
        self.arena = enabled.then(ClockArena::new);
        self
    }

    /// Number of acquires/volatile reads the monotone-join cache resolved
    /// without touching clock storage.
    pub fn join_cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// The current vector clock of thread `t`, creating it at its initial
    /// value `inc_t(⊥_c)` if `t` has not been seen yet.
    pub fn clock(&mut self, t: ThreadId) -> &VectorClock {
        &Self::ensure_slot(&mut self.threads, t).clock
    }

    /// Read-only view of thread `t`'s clock, or `None` if `t` has not
    /// been materialized yet. Unlike [`clock`](Self::clock) this never
    /// mutates, so invariant checks can walk the state as-is.
    pub fn thread_clock(&self, t: ThreadId) -> Option<&VectorClock> {
        self.threads
            .get(t.index())
            .and_then(Option::as_ref)
            .map(|ts| &ts.clock)
    }

    /// Increments `clock[t]`, recording the first overflow stickily. The
    /// clock itself saturates (see [`VectorClock::try_increment`]), so the
    /// analysis stays sound — it just stops advancing `t`'s time.
    fn bump(overflow: &mut Option<ThreadId>, clock: &mut VectorClock, t: ThreadId) {
        if let Err(e) = clock.try_increment(t) {
            overflow.get_or_insert(e.thread);
        }
    }

    /// The thread whose clock first overflowed during this run, if any.
    pub fn clock_overflow(&self) -> Option<ThreadId> {
        self.overflow
    }

    /// Free-standing slot materialization so `apply` can borrow a thread
    /// clock and a lock/volatile clock simultaneously (disjoint fields)
    /// instead of cloning one side per synchronization operation.
    fn ensure_slot(threads: &mut Vec<Option<ThreadClock>>, t: ThreadId) -> &mut ThreadClock {
        let i = t.index();
        if i >= threads.len() {
            threads.resize(i + 1, None);
        }
        threads[i].get_or_insert_with(|| {
            let mut ts = ThreadClock::default();
            ts.clock.increment(t);
            ts
        })
    }

    /// A fresh, strictly positive sync-object version stamp.
    fn fresh_stamp(next_stamp: &mut u64) -> u64 {
        *next_stamp += 1;
        *next_stamp
    }

    /// Applies a synchronization action (Algorithms 1–4, 14–15). Returns
    /// `true` if the action was a synchronization action; data accesses and
    /// sampling markers return `false` untouched.
    pub fn apply(&mut self, action: &Action) -> bool {
        match *action {
            Action::Acquire { t, m } => {
                // C_t ← C_t ⊔ C_m
                if let Some(cm) = self.locks.get(m) {
                    let ts = Self::ensure_slot(&mut self.threads, t);
                    if self.use_join_cache && ts.lock_joined.get(m) == Some(&cm.stamp) {
                        self.cache_hits += 1; // C_m unchanged: still ⊑ C_t
                    } else {
                        ts.clock.join(cm.clock.clock());
                        if self.use_join_cache {
                            ts.lock_joined.insert(m, cm.stamp);
                        }
                    }
                } else {
                    Self::ensure_slot(&mut self.threads, t);
                }
            }
            Action::Release { t, m } => {
                // C_m ← C_t ; C_t[t]++
                let stamp = Self::fresh_stamp(&mut self.next_stamp);
                let ts = Self::ensure_slot(&mut self.threads, t);
                match self.locks.get_mut(m) {
                    Some(cm) => {
                        cm.clock
                            .make_mut_in(self.arena.as_ref())
                            .clone_from(&ts.clock);
                        cm.stamp = stamp;
                    }
                    None => {
                        let clock = CowClock::new(ts.clock.clone());
                        self.locks.insert(m, SyncClock { clock, stamp });
                    }
                }
                if self.use_join_cache {
                    // C_m is now a copy of C_t: seed the releasing thread's
                    // cache edge so its own re-acquire skips the join.
                    ts.lock_joined.insert(m, stamp);
                }
                Self::bump(&mut self.overflow, &mut ts.clock, t);
            }
            Action::Fork { t, u } => {
                // C_u ← C_t ; C_u[u]++ ; C_t[t]++
                let ct = Self::ensure_slot(&mut self.threads, t).clock.clone();
                let tu = Self::ensure_slot(&mut self.threads, u);
                tu.clock = ct;
                // The overwrite may shrink C_u; cached subsumption claims
                // would be stale, so they are discarded.
                tu.lock_joined.clear();
                tu.vol_joined.clear();
                Self::bump(&mut self.overflow, &mut tu.clock, u);
                let ts = Self::ensure_slot(&mut self.threads, t);
                Self::bump(&mut self.overflow, &mut ts.clock, t);
            }
            Action::Join { t, u } => {
                // C_t ← C_u ⊔ C_t ; C_u[u]++
                let cu = Self::ensure_slot(&mut self.threads, u).clock.clone();
                Self::ensure_slot(&mut self.threads, t).clock.join(&cu);
                let tu = Self::ensure_slot(&mut self.threads, u);
                Self::bump(&mut self.overflow, &mut tu.clock, u);
            }
            Action::VolRead { t, v } => {
                // C_t ← C_t ⊔ C_v
                if let Some(cv) = self.volatiles.get(v) {
                    let ts = Self::ensure_slot(&mut self.threads, t);
                    if self.use_join_cache && ts.vol_joined.get(v) == Some(&cv.stamp) {
                        self.cache_hits += 1;
                    } else {
                        ts.clock.join(cv.clock.clock());
                        if self.use_join_cache {
                            ts.vol_joined.insert(v, cv.stamp);
                        }
                    }
                } else {
                    Self::ensure_slot(&mut self.threads, t);
                }
            }
            Action::VolWrite { t, v } => {
                // C_v ← C_v ⊔ C_t ; C_t[t]++
                let stamp = Self::fresh_stamp(&mut self.next_stamp);
                let ts = Self::ensure_slot(&mut self.threads, t);
                let cv = self.volatiles.get_or_insert_with(v, || SyncClock {
                    clock: CowClock::bottom(),
                    stamp: 0,
                });
                cv.clock.make_mut_in(self.arena.as_ref()).join(&ts.clock);
                cv.stamp = stamp;
                // No cache seed: C_v joins *all* writers, so it is not in
                // general subsumed by this writer's clock.
                Self::bump(&mut self.overflow, &mut ts.clock, t);
            }
            _ => return false,
        }
        true
    }

    /// Approximate live metadata footprint in machine words (for space
    /// accounting): one word per materialized clock slot. Join-cache maps
    /// are bookkeeping, not analysis state, and are not charged.
    pub fn footprint_words(&self) -> usize {
        let t: usize = self
            .threads
            .iter()
            .flatten()
            .map(|ts| ts.clock.width())
            .sum();
        let l: usize = self.locks.values().map(|c| c.clock.clock().width()).sum();
        let v: usize = self
            .volatiles
            .values()
            .map(|c| c.clock.clock().width())
            .sum();
        t + l + v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    /// Installs `c` as thread `i`'s clock, as if replayed to that state.
    fn install(s: &mut SyncClocks, i: u32, c: VectorClock) {
        SyncClocks::ensure_slot(&mut s.threads, t(i)).clock = c;
    }

    #[test]
    fn fresh_thread_starts_at_one() {
        let mut s = SyncClocks::new();
        assert_eq!(s.clock(t(3)).get(t(3)), 1);
        assert_eq!(s.clock(t(3)).get(t(0)), 0);
    }

    #[test]
    fn release_acquire_transfers_time() {
        let mut s = SyncClocks::new();
        let m = LockId::new(0);
        s.apply(&Action::Release { t: t(0), m });
        // The release incremented t0 past the published time.
        assert_eq!(s.clock(t(0)).get(t(0)), 2);
        s.apply(&Action::Acquire { t: t(1), m });
        assert_eq!(s.clock(t(1)).get(t(0)), 1);
        assert_eq!(s.clock(t(1)).get(t(1)), 1);
    }

    #[test]
    fn acquire_of_unreleased_lock_is_noop() {
        let mut s = SyncClocks::new();
        s.apply(&Action::Acquire {
            t: t(0),
            m: LockId::new(9),
        });
        assert_eq!(s.clock(t(0)).get(t(0)), 1);
    }

    #[test]
    fn fork_publishes_parent_time_to_child() {
        let mut s = SyncClocks::new();
        s.apply(&Action::Fork { t: t(0), u: t(1) });
        assert_eq!(s.clock(t(1)).get(t(0)), 1, "child sees parent");
        assert_eq!(s.clock(t(1)).get(t(1)), 1, "child incremented own slot");
        assert_eq!(s.clock(t(0)).get(t(0)), 2, "parent advanced past fork");
    }

    #[test]
    fn join_publishes_child_time_to_parent() {
        let mut s = SyncClocks::new();
        s.apply(&Action::Fork { t: t(0), u: t(1) });
        s.apply(&Action::Release {
            t: t(1),
            m: LockId::new(0),
        });
        s.apply(&Action::Join { t: t(0), u: t(1) });
        assert_eq!(s.clock(t(0)).get(t(1)), 2, "parent sees child's time");
    }

    #[test]
    fn volatile_write_then_read_creates_edge() {
        let mut s = SyncClocks::new();
        let v = VolatileId::new(0);
        s.apply(&Action::VolWrite { t: t(0), v });
        s.apply(&Action::VolRead { t: t(1), v });
        assert_eq!(s.clock(t(1)).get(t(0)), 1);
    }

    #[test]
    fn volatile_write_joins_rather_than_copies() {
        // Two concurrent volatile writers: the volatile's clock accumulates
        // both (Algorithm 15 joins).
        let mut s = SyncClocks::new();
        let v = VolatileId::new(0);
        s.apply(&Action::VolWrite { t: t(0), v });
        s.apply(&Action::VolWrite { t: t(1), v });
        s.apply(&Action::VolRead { t: t(2), v });
        assert_eq!(s.clock(t(2)).get(t(0)), 1);
        assert_eq!(s.clock(t(2)).get(t(1)), 1);
    }

    #[test]
    fn non_sync_actions_are_ignored() {
        let mut s = SyncClocks::new();
        assert!(!s.apply(&Action::SampleBegin));
        assert!(!s.apply(&Action::Read {
            t: t(0),
            x: pacer_trace::VarId::new(0),
            site: pacer_trace::SiteId::new(0),
        }));
    }

    #[test]
    fn overflow_is_recorded_stickily_and_clock_saturates() {
        let mut s = SyncClocks::new();
        let mut c = VectorClock::new();
        c.set(t(0), pacer_clock::MAX_CLOCK);
        install(&mut s, 0, c);
        assert_eq!(s.clock_overflow(), None);
        let m = LockId::new(0);
        s.apply(&Action::Release { t: t(0), m });
        assert_eq!(s.clock_overflow(), Some(t(0)));
        assert_eq!(s.clock(t(0)).get(t(0)), pacer_clock::MAX_CLOCK);
        // A later overflow on another thread does not displace the first.
        let mut c1 = VectorClock::new();
        c1.set(t(1), pacer_clock::MAX_CLOCK);
        install(&mut s, 1, c1);
        s.apply(&Action::Release { t: t(1), m });
        assert_eq!(s.clock_overflow(), Some(t(0)));
    }

    #[test]
    fn footprint_counts_materialized_slots() {
        let mut s = SyncClocks::new();
        assert_eq!(s.footprint_words(), 0);
        s.apply(&Action::Fork { t: t(0), u: t(1) });
        assert!(s.footprint_words() >= 3, "t0 (1 slot) + t1 (2 slots)");
    }

    #[test]
    fn repeated_acquire_of_unchanged_lock_hits_the_cache() {
        let mut s = SyncClocks::new();
        let m = LockId::new(0);
        s.apply(&Action::Release { t: t(0), m });
        for _ in 0..5 {
            s.apply(&Action::Acquire { t: t(1), m });
        }
        // First acquire joins; the other four are cache hits.
        assert_eq!(s.join_cache_hits(), 4);
        assert_eq!(s.clock(t(1)).get(t(0)), 1);
    }

    #[test]
    fn re_release_invalidates_the_cache_edge() {
        let mut s = SyncClocks::new();
        let m = LockId::new(0);
        s.apply(&Action::Release { t: t(0), m });
        s.apply(&Action::Acquire { t: t(1), m });
        s.apply(&Action::Release { t: t(0), m }); // new stamp
        s.apply(&Action::Acquire { t: t(1), m }); // must re-join
        assert_eq!(s.join_cache_hits(), 0);
        assert_eq!(s.clock(t(1)).get(t(0)), 2, "saw the second release");
    }

    #[test]
    fn own_release_seeds_the_cache_for_reacquire() {
        let mut s = SyncClocks::new();
        let m = LockId::new(0);
        s.apply(&Action::Release { t: t(0), m });
        s.apply(&Action::Acquire { t: t(0), m });
        assert_eq!(s.join_cache_hits(), 1, "own re-acquire is a no-op");
    }

    #[test]
    fn volatile_reads_cache_like_acquires() {
        let mut s = SyncClocks::new();
        let v = VolatileId::new(0);
        s.apply(&Action::VolWrite { t: t(0), v });
        s.apply(&Action::VolRead { t: t(1), v });
        s.apply(&Action::VolRead { t: t(1), v });
        assert_eq!(s.join_cache_hits(), 1);
        s.apply(&Action::VolWrite { t: t(2), v }); // new stamp
        s.apply(&Action::VolRead { t: t(1), v });
        assert_eq!(s.join_cache_hits(), 1, "stamp changed: full join");
        assert_eq!(s.clock(t(1)).get(t(2)), 1);
    }

    #[test]
    fn cache_and_arena_ablations_match_default_state() {
        use pacer_trace::gen::GenConfig;

        for seed in 0..4 {
            let trace = GenConfig::small(seed).with_lock_discipline(0.6).generate();
            let mut full = SyncClocks::new();
            let mut plain = SyncClocks::new()
                .with_join_cache(false)
                .with_clock_arena(false);
            for a in &trace {
                full.apply(a);
                plain.apply(a);
            }
            for i in 0..64 {
                assert_eq!(
                    full.thread_clock(t(i)).cloned(),
                    plain.thread_clock(t(i)).cloned(),
                    "seed {seed}: thread {i} clock diverged"
                );
            }
            assert_eq!(plain.join_cache_hits(), 0);
        }
    }

    #[test]
    fn fork_overwrite_discards_stale_cache_edges() {
        // t1 joins m's clock, then is re-forked (slot overwrite): its
        // cached edge must not claim C_m ⊑ C_t1 for the new occupant.
        let mut s = SyncClocks::new();
        let m = LockId::new(0);
        s.apply(&Action::Release { t: t(2), m });
        s.apply(&Action::Acquire { t: t(1), m });
        assert_eq!(s.clock(t(1)).get(t(2)), 1);
        // Overwrite t1's clock wholesale via a fork from a fresh parent.
        s.apply(&Action::Fork { t: t(0), u: t(1) });
        assert_eq!(s.clock(t(1)).get(t(2)), 0, "fork reset t1's view");
        s.apply(&Action::Acquire { t: t(1), m });
        assert_eq!(
            s.clock(t(1)).get(t(2)),
            1,
            "stale cache edge would have skipped this join"
        );
    }
}
