//! Precise, unsampled dynamic race detectors: GENERIC and FASTTRACK.
//!
//! These are the two baselines PACER builds on (§2 of the paper):
//!
//! * [`GenericDetector`] — the classic vector-clock algorithm (Algorithms
//!   1–6, 14–15): a full `O(n)` read vector and write vector per variable.
//! * [`FastTrackDetector`] — Flanagan & Freund's FASTTRACK (Algorithms 7–8):
//!   write *epochs* and adaptive read maps make almost all access analysis
//!   `O(1)`. Includes the paper's modification of clearing the read map at
//!   writes, which makes FASTTRACK "correspond more directly with PACER"
//!   (§2.2).
//!
//! Both are *sound and precise* on every trace: they report a race on a
//! variable if and only if the trace has a race on that variable, and every
//! individual report is a true race. Unlike the formal semantics, which gets
//! *stuck* at the first race, these implementations report and continue.
//!
//! # Examples
//!
//! ```
//! use pacer_fasttrack::FastTrackDetector;
//! use pacer_trace::{Detector, Trace};
//!
//! let trace = Trace::parse(
//!     "
//!     fork t0 t1
//!     wr t0 x0 s1
//!     rd t1 x0 s2
//! ",
//! )?;
//! let mut ft = FastTrackDetector::new();
//! ft.run(&trace);
//! assert_eq!(ft.races().len(), 1);
//! assert_eq!(
//!     ft.races()[0].to_string(),
//!     "race on x0: write by t0 at s1 vs read by t1 at s2"
//! );
//! # Ok::<(), pacer_trace::ParseTraceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fasttrack;
mod generic;
mod sync;

pub use fasttrack::FastTrackDetector;
pub use generic::GenericDetector;
pub use sync::SyncClocks;
