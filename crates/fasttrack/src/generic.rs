//! The GENERIC `O(n)` vector-clock race detector (Algorithms 1–6).

use pacer_clock::{ClockValue, ThreadId, VectorClock};
use pacer_collections::IdMap;
use pacer_obs::{ObservableDetector, SpaceBreakdown};
use pacer_trace::{Access, AccessKind, Action, Detector, RaceReport, SiteId, VarId};

use crate::SyncClocks;

/// Per-variable state: full read and write vectors, with the site of each
/// thread's last access (for race reporting).
#[derive(Clone, Debug, Default)]
struct VarState {
    reads: VectorClock,
    read_sites: IdMap<ThreadId, SiteId>,
    writes: VectorClock,
    write_sites: IdMap<ThreadId, SiteId>,
}

/// The simplest sound and precise vector-clock detector (§2.1).
///
/// Stores a read vector `R[1..n]` and write vector `W[1..n]` per variable;
/// every read and write performs `O(n)` checks (Algorithms 5 and 6). This is
/// the baseline FASTTRACK improves on by an order of magnitude.
///
/// # Examples
///
/// ```
/// use pacer_fasttrack::GenericDetector;
/// use pacer_trace::{Detector, Trace};
///
/// let trace = Trace::parse("fork t0 t1\nwr t0 x0 s1\nwr t1 x0 s2")?;
/// let mut d = GenericDetector::new();
/// d.run(&trace);
/// assert_eq!(d.races().len(), 1);
/// # Ok::<(), pacer_trace::ParseTraceError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct GenericDetector {
    sync: SyncClocks,
    vars: IdMap<VarId, VarState>,
    races: Vec<RaceReport>,
}

impl GenericDetector {
    /// Creates a detector with empty analysis state.
    pub fn new() -> Self {
        GenericDetector::default()
    }

    /// Enables or disables the synchronization-state monotone-join cache
    /// (see [`SyncClocks::with_join_cache`]). Detection is unchanged either
    /// way; the flag exists for the `clock_ablation` benchmark.
    pub fn with_join_cache(mut self, enabled: bool) -> Self {
        self.sync = self.sync.with_join_cache(enabled);
        self
    }

    /// Enables or disables arena-recycled lock/volatile clock storage (see
    /// [`SyncClocks::with_clock_arena`]). Detection is unchanged either way.
    pub fn with_clock_arena(mut self, enabled: bool) -> Self {
        self.sync = self.sync.with_clock_arena(enabled);
        self
    }

    /// Approximate live metadata footprint in machine words.
    pub fn footprint_words(&self) -> usize {
        self.space_breakdown().total_words() as usize
    }

    fn report_racing_writes(
        races: &mut Vec<RaceReport>,
        state: &VarState,
        x: VarId,
        ct: &VectorClock,
        second: Access,
    ) {
        for (tid, value) in state.writes.iter() {
            if value > ct.get(tid) {
                races.push(RaceReport {
                    x,
                    first: Access {
                        tid,
                        kind: AccessKind::Write,
                        site: state.write_sites.get(tid).copied().unwrap_or_default(),
                    },
                    second,
                });
            }
        }
    }

    /// Checks the analysis-state invariants: every component of every
    /// read/write vector is bounded by the owning thread's current clock.
    /// Intended for tests and differential-oracle runs; `O(vars × threads)`.
    ///
    /// # Panics
    ///
    /// Panics if an invariant is violated.
    pub fn assert_invariants(&self) {
        for (x, state) in self.vars.iter() {
            for (vec, what) in [(&state.reads, "read"), (&state.writes, "write")] {
                for (tid, value) in vec.iter() {
                    let ct = self.sync.thread_clock(tid).unwrap_or_else(|| {
                        panic!("{x:?}: {what} vector entry for unseen thread {tid:?}")
                    });
                    assert!(
                        value <= ct.get(tid),
                        "{x:?}: {what} vector entry {value}@{tid:?} above its thread's clock"
                    );
                }
            }
        }
    }

    fn report_racing_reads(
        races: &mut Vec<RaceReport>,
        state: &VarState,
        x: VarId,
        ct: &VectorClock,
        second: Access,
    ) {
        for (tid, value) in state.reads.iter() {
            if value > ct.get(tid) {
                races.push(RaceReport {
                    x,
                    first: Access {
                        tid,
                        kind: AccessKind::Read,
                        site: state.read_sites.get(tid).copied().unwrap_or_default(),
                    },
                    second,
                });
            }
        }
    }
}

impl Detector for GenericDetector {
    fn name(&self) -> String {
        "generic".to_string()
    }

    fn on_action(&mut self, action: &Action) {
        if self.sync.apply(action) {
            return;
        }
        match *action {
            // Algorithm 5: check W_f ⊑ C_t ; R_f[t] ← C_t[t]
            Action::Read { t, x, site } => {
                let ct = self.sync.clock(t);
                let state = self.vars.get_or_insert_with(x, Default::default);
                let second = Access {
                    tid: t,
                    kind: AccessKind::Read,
                    site,
                };
                if !state.writes.leq(&ct) {
                    Self::report_racing_writes(&mut self.races, state, x, &ct, second);
                }
                let c: ClockValue = ct.get(t);
                state.reads.set(t, c);
                state.read_sites.insert(t, site);
            }
            // Algorithm 6: check W_f ⊑ C_t ; check R_f ⊑ C_t ; W_f[t] ← C_t[t]
            Action::Write { t, x, site } => {
                let ct = self.sync.clock(t);
                let state = self.vars.get_or_insert_with(x, Default::default);
                let second = Access {
                    tid: t,
                    kind: AccessKind::Write,
                    site,
                };
                if !state.writes.leq(&ct) {
                    Self::report_racing_writes(&mut self.races, state, x, &ct, second);
                }
                if !state.reads.leq(&ct) {
                    Self::report_racing_reads(&mut self.races, state, x, &ct, second);
                }
                let c: ClockValue = ct.get(t);
                state.writes.set(t, c);
                state.write_sites.insert(t, site);
            }
            // GENERIC ignores sampling markers: it always analyzes fully.
            _ => {}
        }
    }

    fn races(&self) -> &[RaceReport] {
        &self.races
    }
}

impl ObservableDetector for GenericDetector {
    fn space_breakdown(&self) -> SpaceBreakdown {
        let mut b = SpaceBreakdown {
            clock_words_owned: self.sync.footprint_words() as u64,
            ..SpaceBreakdown::default()
        };
        for v in self.vars.values() {
            b.tracked_vars += 1;
            b.write_words += v.writes.width() as u64;
            b.read_map_words += v.reads.width() as u64;
            b.read_map_entries += v.reads.width() as u64;
        }
        b
    }

    fn clock_overflow(&self) -> Option<pacer_clock::ThreadId> {
        self.sync.clock_overflow()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacer_trace::Trace;

    fn run(text: &str) -> GenericDetector {
        let trace = Trace::parse(text).unwrap();
        trace.validate().unwrap();
        let mut d = GenericDetector::new();
        d.run(&trace);
        d
    }

    #[test]
    fn write_write_race() {
        let d = run("fork t0 t1\nwr t0 x0 s1\nwr t1 x0 s2");
        assert_eq!(d.races().len(), 1);
        let r = d.races()[0];
        assert_eq!(r.first.kind, AccessKind::Write);
        assert_eq!(r.second.kind, AccessKind::Write);
        assert_eq!(r.first.site, SiteId::new(1));
        assert_eq!(r.second.site, SiteId::new(2));
    }

    #[test]
    fn write_read_race() {
        let d = run("fork t0 t1\nwr t0 x0 s1\nrd t1 x0 s2");
        assert_eq!(d.races().len(), 1);
        assert_eq!(d.races()[0].second.kind, AccessKind::Read);
    }

    #[test]
    fn read_write_race() {
        let d = run("fork t0 t1\nrd t0 x0 s1\nwr t1 x0 s2");
        assert_eq!(d.races().len(), 1);
        assert_eq!(d.races()[0].first.kind, AccessKind::Read);
    }

    #[test]
    fn read_read_is_not_a_race() {
        let d = run("fork t0 t1\nrd t0 x0 s1\nrd t1 x0 s2");
        assert!(d.races().is_empty());
    }

    #[test]
    fn lock_discipline_prevents_race() {
        let d =
            run("fork t0 t1\nacq t0 m0\nwr t0 x0 s1\nrel t0 m0\nacq t1 m0\nwr t1 x0 s2\nrel t1 m0");
        assert!(d.races().is_empty());
    }

    #[test]
    fn same_thread_never_races() {
        let d = run("wr t0 x0 s1\nrd t0 x0 s2\nwr t0 x0 s3");
        assert!(d.races().is_empty());
    }

    #[test]
    fn multiple_concurrent_reads_race_with_write() {
        let d = run("fork t0 t1\nfork t0 t2\nrd t1 x0 s1\nrd t2 x0 s2\nwr t0 x0 s3");
        assert_eq!(d.races().len(), 2, "the write races with both reads");
    }

    #[test]
    fn volatile_synchronizes() {
        let d = run("fork t0 t1\nwr t0 x0 s1\nvwr t0 v0\nvrd t1 v0\nrd t1 x0 s2");
        assert!(d.races().is_empty());
    }

    #[test]
    fn footprint_grows_with_vars() {
        let d = run("fork t0 t1\nwr t0 x0 s1\nwr t0 x1 s2");
        assert!(d.footprint_words() > 0);
    }

    #[test]
    fn generic_matches_oracle_on_random_traces() {
        use pacer_trace::gen::GenConfig;
        use pacer_trace::HbOracle;
        for seed in 0..15 {
            let trace = GenConfig::small(seed).with_lock_discipline(0.6).generate();
            let oracle = HbOracle::analyze(&trace);
            let mut d = GenericDetector::new();
            d.run(&trace);
            let mut detected: Vec<VarId> = d.races().iter().map(|r| r.x).collect();
            detected.sort();
            detected.dedup();
            assert_eq!(
                detected,
                oracle.racy_vars(),
                "seed {seed}: racy-variable sets must agree"
            );
        }
    }
}
