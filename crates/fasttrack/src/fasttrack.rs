//! The FASTTRACK detector (Algorithms 7–8).

use pacer_clock::{Epoch, ReadMap};
use pacer_collections::IdMap;
use pacer_obs::{ObservableDetector, SpaceBreakdown};
use pacer_trace::{Access, AccessKind, Action, Detector, RaceReport, SiteId, VarId};

use crate::SyncClocks;

/// Per-variable state: a write *epoch* plus an adaptive read map (§2.2).
#[derive(Clone, Debug)]
struct VarState {
    write: Epoch,
    write_site: SiteId,
    reads: ReadMap,
}

impl Default for VarState {
    fn default() -> Self {
        VarState {
            write: Epoch::MIN,
            write_site: SiteId::default(),
            reads: ReadMap::empty(),
        }
    }
}

/// Flanagan & Freund's FASTTRACK: sound, precise, and `O(1)` for almost all
/// reads and writes (§2.2).
///
/// Exploits three observations: writes to a variable are totally ordered in
/// race-free executions; at a write, all prior reads must happen before it;
/// and only concurrent reads need to be remembered individually. The write
/// vector clock is therefore a single [`Epoch`], and the read metadata a
/// [`ReadMap`] that stays an epoch while reads are totally ordered.
///
/// This implementation includes the paper's modification: the read map is
/// cleared at every write ("Clearing `R_f` is sound since the current write
/// will race with any future access that would have also raced with the
/// discarded read", §2.2), matching what PACER does.
///
/// # Examples
///
/// ```
/// use pacer_fasttrack::FastTrackDetector;
/// use pacer_trace::{Detector, Trace};
///
/// let trace = Trace::parse("fork t0 t1\nrd t0 x0 s1\nwr t1 x0 s2")?;
/// let mut ft = FastTrackDetector::new();
/// ft.run(&trace);
/// assert_eq!(ft.races().len(), 1, "read–write race");
/// # Ok::<(), pacer_trace::ParseTraceError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct FastTrackDetector {
    sync: SyncClocks,
    vars: IdMap<VarId, VarState>,
    races: Vec<RaceReport>,
    /// Original-paper behavior: keep a single-entry read map across writes
    /// instead of clearing it (§2.2 "the *original* FASTTRACK algorithm
    /// does *not* clear R_f" when it is an epoch).
    keep_read_epoch_at_writes: bool,
}

impl FastTrackDetector {
    /// Creates a detector with empty analysis state, using the PACER
    /// paper's modification (read maps cleared at writes).
    pub fn new() -> Self {
        FastTrackDetector::default()
    }

    /// Creates a detector with Flanagan & Freund's *original* write rule:
    /// a read map that is an epoch survives a write. Detection verdicts
    /// are identical (any access racing with the kept read also races with
    /// the intervening write); only which representative gets reported can
    /// differ. Exists to measure the modification the PACER paper makes
    /// for metadata-discard symmetry (§2.2).
    pub fn original() -> Self {
        FastTrackDetector {
            keep_read_epoch_at_writes: true,
            ..FastTrackDetector::default()
        }
    }

    /// Enables or disables the synchronization-state monotone-join cache
    /// (see [`SyncClocks::with_join_cache`]). Detection is unchanged either
    /// way; the flag exists for the `clock_ablation` benchmark.
    pub fn with_join_cache(mut self, enabled: bool) -> Self {
        self.sync = self.sync.with_join_cache(enabled);
        self
    }

    /// Enables or disables arena-recycled lock/volatile clock storage (see
    /// [`SyncClocks::with_clock_arena`]). Detection is unchanged either way.
    pub fn with_clock_arena(mut self, enabled: bool) -> Self {
        self.sync = self.sync.with_clock_arena(enabled);
        self
    }

    /// Approximate live metadata footprint in machine words: three words
    /// per tracked variable (write epoch, site, read-map slot — the
    /// per-field hash-table entry of §4), plus inflated read maps and
    /// synchronization clocks.
    pub fn footprint_words(&self) -> usize {
        self.space_breakdown().total_words() as usize
    }

    /// Number of variables currently carrying metadata (never shrinks:
    /// FASTTRACK has no discard).
    pub fn tracked_vars(&self) -> usize {
        self.vars.len()
    }

    /// Checks the analysis-state invariants the algorithms maintain: every
    /// recorded access epoch is bounded by its thread's current clock
    /// (clocks only grow, and an access records the clock it ran at).
    /// Intended for tests and differential-oracle runs; `O(vars × threads)`.
    ///
    /// # Panics
    ///
    /// Panics if an invariant is violated.
    pub fn assert_invariants(&self) {
        for (x, state) in self.vars.iter() {
            if !state.write.is_min() {
                let t = state.write.tid();
                let ct = self
                    .sync
                    .thread_clock(t)
                    .unwrap_or_else(|| panic!("{x:?}: write epoch from unseen thread {t:?}"));
                assert!(
                    state.write.leq_clock(ct),
                    "{x:?}: write epoch {:?} above thread {t:?}'s clock",
                    state.write
                );
            }
            for entry in state.reads.iter() {
                let ct = self.sync.thread_clock(entry.tid).unwrap_or_else(|| {
                    panic!("{x:?}: read entry from unseen thread {:?}", entry.tid)
                });
                assert!(
                    entry.clock <= ct.get(entry.tid),
                    "{x:?}: read entry {entry:?} above its thread's clock"
                );
            }
        }
    }
}

impl Detector for FastTrackDetector {
    fn name(&self) -> String {
        "fasttrack".to_string()
    }

    fn on_action(&mut self, action: &Action) {
        if self.sync.apply(action) {
            return;
        }
        match *action {
            // Algorithm 7.
            Action::Read { t, x, site } => {
                let ct = self.sync.clock(t);
                let state = self.vars.get_or_insert_with(x, Default::default);
                let epoch_t = Epoch::of_thread(t, &ct);
                // {If same epoch, no action}
                if state.reads.as_epoch() == Some(epoch_t) && !epoch_t.is_min() {
                    return;
                }
                // check W_f ⊑ C_t {race with prior write?}
                if !state.write.leq_clock(&ct) {
                    self.races.push(RaceReport {
                        x,
                        first: Access {
                            tid: state.write.tid(),
                            kind: AccessKind::Write,
                            site: state.write_site,
                        },
                        second: Access {
                            tid: t,
                            kind: AccessKind::Read,
                            site,
                        },
                    });
                }
                // Update the read map.
                match state.reads.as_epoch() {
                    Some(prev) if prev.leq_clock(&ct) => {
                        // {Overwrite read map}: |R_f| ≤ 1 and ordered.
                        state.reads.set_epoch(epoch_t, site.raw());
                    }
                    _ => {
                        // {Update read map}: concurrent reader.
                        state.reads.insert(t, ct.get(t), site.raw());
                    }
                }
            }
            // Algorithm 8.
            Action::Write { t, x, site } => {
                let ct = self.sync.clock(t);
                let state = self.vars.get_or_insert_with(x, Default::default);
                let epoch_t = Epoch::of_thread(t, &ct);
                // {If same epoch, no action}
                if state.write == epoch_t {
                    return;
                }
                // check W_f ⊑ C_t
                if !state.write.leq_clock(&ct) {
                    self.races.push(RaceReport {
                        x,
                        first: Access {
                            tid: state.write.tid(),
                            kind: AccessKind::Write,
                            site: state.write_site,
                        },
                        second: Access {
                            tid: t,
                            kind: AccessKind::Write,
                            site,
                        },
                    });
                }
                // check R_f ⊑ C_t — O(1) when the map is an epoch,
                // O(|R_f|) when inflated.
                for entry in state.reads.entries_racing_with(&ct) {
                    self.races.push(RaceReport {
                        x,
                        first: Access {
                            tid: entry.tid,
                            kind: AccessKind::Read,
                            site: SiteId::new(entry.site),
                        },
                        second: Access {
                            tid: t,
                            kind: AccessKind::Write,
                            site,
                        },
                    });
                }
                // {New: clear read map} — the paper's modification. The
                // original algorithm keeps a totally ordered (epoch) read
                // map across writes.
                if !(self.keep_read_epoch_at_writes && state.reads.as_epoch().is_some()) {
                    state.reads = ReadMap::empty();
                }
                // {Update write epoch}
                state.write = epoch_t;
                state.write_site = site;
            }
            // FASTTRACK ignores sampling markers: it always analyzes fully.
            _ => {}
        }
    }

    fn races(&self) -> &[RaceReport] {
        &self.races
    }
}

impl ObservableDetector for FastTrackDetector {
    fn space_breakdown(&self) -> SpaceBreakdown {
        let mut b = SpaceBreakdown {
            // FASTTRACK never shares clock storage; everything is owned.
            clock_words_owned: self.sync.footprint_words() as u64,
            ..SpaceBreakdown::default()
        };
        for v in self.vars.values() {
            b.tracked_vars += 1;
            b.write_words += 2; // write epoch + site
            b.read_map_words += v.reads.footprint_words() as u64 + 1;
            b.read_map_entries += v.reads.len() as u64;
        }
        b
    }

    fn clock_overflow(&self) -> Option<pacer_clock::ThreadId> {
        self.sync.clock_overflow()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacer_clock::ThreadId;
    use pacer_trace::Trace;

    fn run(text: &str) -> FastTrackDetector {
        let trace = Trace::parse(text).unwrap();
        trace.validate().unwrap();
        let mut d = FastTrackDetector::new();
        d.run(&trace);
        d
    }

    #[test]
    fn write_write_race() {
        let d = run("fork t0 t1\nwr t0 x0 s1\nwr t1 x0 s2");
        assert_eq!(d.races().len(), 1);
        assert_eq!(d.races()[0].first.tid, ThreadId::new(0));
    }

    #[test]
    fn write_read_race() {
        let d = run("fork t0 t1\nwr t0 x0 s1\nrd t1 x0 s2");
        assert_eq!(d.races().len(), 1);
        assert_eq!(d.races()[0].second.kind, AccessKind::Read);
    }

    #[test]
    fn read_write_race_reports_the_read_site() {
        let d = run("fork t0 t1\nrd t0 x0 s7\nwr t1 x0 s2");
        assert_eq!(d.races().len(), 1);
        assert_eq!(d.races()[0].first.site, SiteId::new(7));
        assert_eq!(d.races()[0].first.kind, AccessKind::Read);
    }

    #[test]
    fn write_races_with_every_concurrent_read() {
        let d = run("fork t0 t1\nfork t0 t2\nrd t1 x0 s1\nrd t2 x0 s2\nwr t0 x0 s3");
        assert_eq!(d.races().len(), 2);
    }

    #[test]
    fn same_epoch_reads_are_free_and_silent() {
        let d = run("wr t0 x0 s1\nrd t0 x0 s2\nrd t0 x0 s2\nrd t0 x0 s2");
        assert!(d.races().is_empty());
    }

    #[test]
    fn read_map_collapses_after_ordered_reads() {
        // t1's read happens after t0's read (via lock): the map stays an
        // epoch, so footprint stays zero.
        let d =
            run("fork t0 t1\nacq t0 m0\nrd t0 x0 s1\nrel t0 m0\nacq t1 m0\nrd t1 x0 s2\nrel t1 m0");
        assert!(d.races().is_empty());
        let state = d.vars.get(VarId::new(0)).unwrap();
        assert!(state.reads.as_epoch().is_some(), "still an epoch");
    }

    #[test]
    fn concurrent_reads_inflate_the_map() {
        let d = run("fork t0 t1\nrd t0 x0 s1\nrd t1 x0 s2");
        let state = d.vars.get(VarId::new(0)).unwrap();
        assert_eq!(state.reads.len(), 2);
        assert!(d.races().is_empty(), "read–read is not a race");
    }

    #[test]
    fn write_clears_read_map() {
        let d = run("fork t0 t1\nrd t0 x0 s1\nrd t1 x0 s2\njoin t0 t1\nwr t0 x0 s3");
        let state = d.vars.get(VarId::new(0)).unwrap();
        assert!(state.reads.is_empty(), "modified FASTTRACK clears R_f");
        assert!(d.races().is_empty());
    }

    #[test]
    fn lock_discipline_prevents_race() {
        let d =
            run("fork t0 t1\nacq t0 m0\nwr t0 x0 s1\nrel t0 m0\nacq t1 m0\nwr t1 x0 s2\nrel t1 m0");
        assert!(d.races().is_empty());
    }

    #[test]
    fn fork_join_orders_accesses() {
        let d = run("wr t0 x0 s1\nfork t0 t1\nwr t1 x0 s2\njoin t0 t1\nwr t0 x0 s3");
        assert!(d.races().is_empty());
    }

    #[test]
    fn original_variant_keeps_epoch_read_maps_across_writes() {
        let trace = Trace::parse("fork t0 t1\nrd t0 x0 s1\njoin t0 t1\nwr t0 x0 s2").unwrap();
        let mut modified = FastTrackDetector::new();
        modified.run(&trace);
        assert!(
            modified.vars[&VarId::new(0)].reads.is_empty(),
            "modified clears"
        );
        let mut original = FastTrackDetector::original();
        original.run(&trace);
        assert_eq!(
            original.vars[&VarId::new(0)].reads.len(),
            1,
            "original keeps the read epoch"
        );
    }

    #[test]
    fn original_and_modified_agree_on_racy_vars() {
        use pacer_trace::gen::GenConfig;
        for seed in 0..10 {
            let trace = GenConfig::small(seed).with_lock_discipline(0.5).generate();
            let mut modified = FastTrackDetector::new();
            modified.run(&trace);
            let mut original = FastTrackDetector::original();
            original.run(&trace);
            let key = |races: &[RaceReport]| {
                let mut v: Vec<VarId> = races.iter().map(|r| r.x).collect();
                v.sort();
                v.dedup();
                v
            };
            assert_eq!(
                key(modified.races()),
                key(original.races()),
                "seed {seed}: the modification must not change verdicts"
            );
        }
    }

    #[test]
    fn matches_generic_racy_vars_on_random_traces() {
        use crate::GenericDetector;
        use pacer_trace::gen::GenConfig;
        use pacer_trace::Detector;

        for seed in 0..15 {
            let trace = GenConfig::small(seed).with_lock_discipline(0.6).generate();
            let mut ft = FastTrackDetector::new();
            let mut gen = GenericDetector::new();
            ft.run(&trace);
            gen.run(&trace);
            let key = |races: &[RaceReport]| {
                let mut v: Vec<VarId> = races.iter().map(|r| r.x).collect();
                v.sort();
                v.dedup();
                v
            };
            assert_eq!(
                key(ft.races()),
                key(gen.races()),
                "seed {seed}: FASTTRACK and GENERIC must agree on racy vars"
            );
        }
    }

    #[test]
    fn precise_against_oracle_on_random_traces() {
        use pacer_trace::gen::GenConfig;
        use pacer_trace::HbOracle;

        for seed in 0..15 {
            let trace = GenConfig::small(seed).with_lock_discipline(0.5).generate();
            let oracle = HbOracle::analyze(&trace);
            let truth: std::collections::HashSet<_> = oracle.distinct_races().into_iter().collect();
            let mut ft = FastTrackDetector::new();
            ft.run(&trace);
            for race in ft.races() {
                assert!(
                    truth.contains(&race.distinct_key()),
                    "seed {seed}: reported race {race} is not a true race"
                );
            }
        }
    }
}
