//! PACER: proportional sampling data-race detection.
//!
//! This crate is the primary contribution of the reproduced paper (Bond,
//! Coons, McKinley, *PACER: Proportional Detection of Data Races*, PLDI
//! 2010). [`PacerDetector`] samples the FASTTRACK analysis over *global
//! sampling periods* and guarantees that any race whose **first** access
//! falls inside a sampling period is reported — so every dynamic race is
//! detected with probability equal to the sampling rate, and time/space
//! overheads scale with the sampling rate instead of with the program.
//!
//! The overhead reductions come from two mechanisms (§3):
//!
//! 1. **Metadata discard** (§3.3): during non-sampling periods PACER records
//!    no new accesses and *discards* read/write metadata as soon as it can
//!    no longer be the first access of a shortest race, so untracked
//!    variables cost a single null check.
//! 2. **Timeless periods** (§3.2): vector clocks stop incrementing outside
//!    sampling periods, so redundant synchronization produces *identical*
//!    clock values; [version epochs](pacer_clock::VersionEpoch) detect the
//!    redundancy and replace `O(n)` joins with `O(1)` checks, and
//!    copy-on-write sharing replaces `O(n)` copies with `O(1)` shallow
//!    copies.
//!
//! Sampling periods are delimited by [`Action::SampleBegin`] /
//! [`Action::SampleEnd`] markers in the event stream; the runtime crate
//! inserts them at simulated GC boundaries exactly as §4 describes, and
//! [`PeriodicSampler`] inserts them during plain trace replay.
//!
//! [`Action::SampleBegin`]: pacer_trace::Action::SampleBegin
//! [`Action::SampleEnd`]: pacer_trace::Action::SampleEnd
//!
//! # Examples
//!
//! ```
//! use pacer_core::PacerDetector;
//! use pacer_trace::{Detector, Trace};
//!
//! // The first write is sampled, so PACER must report the race with the
//! // later (unsampled) read — Figure 1's write–read race on y.
//! let trace = Trace::parse(
//!     "
//!     fork t0 t1
//!     sbegin
//!     wr t0 x0 s1
//!     send
//!     rd t1 x0 s2
//! ",
//! )?;
//! let mut pacer = PacerDetector::new();
//! pacer.run(&trace);
//! assert_eq!(pacer.races().len(), 1);
//! # Ok::<(), pacer_trace::ParseTraceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accordion;
mod detector;
mod sampling;
mod state;

pub use accordion::AccordionPacerDetector;
pub use detector::PacerDetector;
pub use sampling::{PeriodicSampler, RandomSampler, Sampled, SamplingPolicy};
// The operation counters moved to the observability crate (`pacer-obs`),
// which unifies them behind one `Metrics` snapshot; re-exported here so
// existing `pacer_core::PacerStats` call sites keep working.
pub use pacer_obs::{CopyCounts, JoinCounts, PacerStats, PathCounts};
