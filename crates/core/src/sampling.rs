//! Sampling policies for trace replay.
//!
//! The PACER implementation toggles sampling at garbage-collection
//! boundaries (§4) — the runtime crate reproduces that. When replaying a
//! bare [`Trace`](pacer_trace::Trace) without a simulated heap, the
//! [`Sampled`] adapter drives a [`PacerDetector`](crate::PacerDetector) (or
//! any detector) from a [`SamplingPolicy`], injecting
//! `SampleBegin`/`SampleEnd` markers between program actions.

use pacer_prng::Rng;
use pacer_trace::{Action, Detector, RaceReport};

/// Decides, before each program action, whether the analysis should be in a
/// sampling period.
pub trait SamplingPolicy {
    /// Returns the desired sampling state for the upcoming action.
    fn desired(&mut self, upcoming: &Action) -> bool;
}

/// Deterministic duty-cycle sampling: within every window of `window`
/// actions, the first `sampled` actions are analyzed.
///
/// # Examples
///
/// ```
/// use pacer_core::{PeriodicSampler, SamplingPolicy};
/// use pacer_trace::Action;
///
/// let mut p = PeriodicSampler::new(100, 3); // 3% duty cycle
/// let a = Action::SampleBegin; // any action; periodic ignores it
/// let sampled = (0..100).filter(|_| p.desired(&a)).count();
/// assert_eq!(sampled, 3);
/// ```
#[derive(Clone, Debug)]
pub struct PeriodicSampler {
    window: u64,
    sampled: u64,
    count: u64,
}

impl PeriodicSampler {
    /// Creates a policy sampling the first `sampled` of every `window`
    /// actions.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `sampled > window`.
    pub fn new(window: u64, sampled: u64) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(sampled <= window, "duty cycle cannot exceed the window");
        PeriodicSampler {
            window,
            sampled,
            count: 0,
        }
    }

    /// A policy approximating sampling rate `rate` with the given window.
    pub fn with_rate(window: u64, rate: f64) -> Self {
        let sampled = ((window as f64) * rate.clamp(0.0, 1.0)).round() as u64;
        PeriodicSampler::new(window, sampled.min(window))
    }
}

impl SamplingPolicy for PeriodicSampler {
    fn desired(&mut self, _upcoming: &Action) -> bool {
        let phase = self.count % self.window;
        self.count += 1;
        phase < self.sampled
    }
}

/// Randomized global sampling periods with geometric lengths, averaging
/// `avg_period` actions per period and an overall duty cycle of `rate` —
/// the trace-level analogue of the paper's randomized GC-boundary toggling.
#[derive(Clone, Debug)]
pub struct RandomSampler {
    rate: f64,
    p_off: f64,
    p_on: f64,
    sampling: bool,
    rng: Rng,
}

impl RandomSampler {
    /// Creates a randomized policy with duty cycle `rate` and mean sampling
    /// period length `avg_period` (in actions).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ rate ≤ 1` and `avg_period ≥ 1`.
    pub fn new(rate: f64, avg_period: u64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        assert!(avg_period >= 1, "avg_period must be at least 1");
        let p_off = 1.0 / avg_period as f64;
        let p_on = if rate >= 1.0 {
            1.0
        } else {
            (p_off * rate / (1.0 - rate)).min(1.0)
        };
        RandomSampler {
            rate,
            p_off,
            p_on,
            sampling: false,
            rng: Rng::seed_from_u64(seed),
        }
    }
}

impl SamplingPolicy for RandomSampler {
    fn desired(&mut self, _upcoming: &Action) -> bool {
        if self.sampling {
            if self.rate < 1.0 && self.rng.gen_bool(self.p_off) {
                self.sampling = false;
            }
        } else if self.rng.gen_bool(self.p_on) {
            self.sampling = true;
        }
        self.sampling
    }
}

/// Adapts a detector to a sampling policy: forwards every program action,
/// inserting `SampleBegin`/`SampleEnd` markers whenever the policy's desired
/// state changes. Markers already present in the input are dropped — the
/// policy owns sampling.
///
/// # Examples
///
/// ```
/// use pacer_core::{PacerDetector, PeriodicSampler, Sampled};
/// use pacer_trace::{Detector, Trace};
///
/// let trace = Trace::parse("fork t0 t1\nwr t0 x0 s1\nwr t1 x0 s2")?;
/// let mut d = Sampled::new(PacerDetector::new(), PeriodicSampler::new(10, 10));
/// d.run(&trace);
/// assert_eq!(d.races().len(), 1, "100% duty cycle sees everything");
/// # Ok::<(), pacer_trace::ParseTraceError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Sampled<D, P> {
    inner: D,
    policy: P,
    sampling: bool,
}

impl<D: Detector, P: SamplingPolicy> Sampled<D, P> {
    /// Wraps `inner`, driving its sampling periods from `policy`.
    pub fn new(inner: D, policy: P) -> Self {
        Sampled {
            inner,
            policy,
            sampling: false,
        }
    }

    /// The wrapped detector.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Consumes the adapter, returning the wrapped detector.
    pub fn into_inner(self) -> D {
        self.inner
    }
}

impl<D: Detector, P: SamplingPolicy> Detector for Sampled<D, P> {
    fn name(&self) -> String {
        format!("{}+policy", self.inner.name())
    }

    fn on_action(&mut self, action: &Action) {
        if action.is_sampling_marker() {
            return;
        }
        let want = self.policy.desired(action);
        if want != self.sampling {
            self.inner.on_action(if want {
                &Action::SampleBegin
            } else {
                &Action::SampleEnd
            });
            self.sampling = want;
        }
        self.inner.on_action(action);
    }

    fn races(&self) -> &[RaceReport] {
        self.inner.races()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PacerDetector;
    use pacer_trace::Trace;

    #[test]
    fn periodic_hits_exact_duty_cycle() {
        let mut p = PeriodicSampler::new(1000, 30);
        let a = Action::SampleBegin;
        let hits = (0..10_000).filter(|_| p.desired(&a)).count();
        assert_eq!(hits, 300);
    }

    #[test]
    fn with_rate_rounds_to_window() {
        let mut p = PeriodicSampler::with_rate(100, 0.034);
        let a = Action::SampleBegin;
        let hits = (0..100).filter(|_| p.desired(&a)).count();
        assert_eq!(hits, 3);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        PeriodicSampler::new(0, 0);
    }

    #[test]
    fn random_sampler_approximates_rate() {
        let mut p = RandomSampler::new(0.10, 50, 7);
        let a = Action::SampleBegin;
        let n = 100_000;
        let hits = (0..n).filter(|_| p.desired(&a)).count();
        let rate = hits as f64 / n as f64;
        assert!((0.06..0.15).contains(&rate), "rate {rate} far from 0.10");
    }

    #[test]
    fn random_sampler_full_rate_always_samples() {
        let mut p = RandomSampler::new(1.0, 10, 0);
        let a = Action::SampleBegin;
        assert!((0..100).all(|_| p.desired(&a)));
    }

    #[test]
    fn sampled_adapter_inserts_balanced_markers() {
        let trace =
            Trace::parse("fork t0 t1\nwr t0 x0 s1\nwr t1 x0 s2\nwr t0 x1 s3\nwr t1 x1 s4").unwrap();
        let mut d = Sampled::new(PacerDetector::new(), PeriodicSampler::new(2, 1));
        d.run(&trace);
        // Alternating periods: markers were injected and the detector is in
        // a consistent state (no panic, races from sampled firsts only).
        assert!(d.inner().stats().sample_periods >= 1);
    }

    #[test]
    fn zero_duty_cycle_never_samples() {
        let trace = Trace::parse("fork t0 t1\nwr t0 x0 s1\nwr t1 x0 s2").unwrap();
        let mut d = Sampled::new(PacerDetector::new(), PeriodicSampler::new(100, 0));
        d.run(&trace);
        assert!(d.races().is_empty());
        assert_eq!(d.inner().stats().sample_periods, 0);
    }

    #[test]
    fn input_markers_are_ignored_by_adapter() {
        let trace = Trace::parse("fork t0 t1\nsbegin\nwr t0 x0 s1\nsend\nwr t1 x0 s2").unwrap();
        let mut d = Sampled::new(PacerDetector::new(), PeriodicSampler::new(100, 0));
        d.run(&trace);
        assert!(d.races().is_empty(), "policy (never sample) wins");
        assert_eq!(d.name(), "pacer+policy");
    }
}
