//! Accordion clocks: sound thread-identifier reuse.
//!
//! The paper's prototype "does not reuse thread identifiers, so vector
//! clock sizes are proportional to *Total* [threads started]. A production
//! implementation could use *accordion clocks* to reuse thread identifiers
//! soundly [9]" (§5.1). This module implements that production extension.
//!
//! A joined thread's clock slot is *retired* together with the final own
//! clock value the joiner received. A later fork may reuse a retired slot
//! `s` — but only when the forking thread's clock already covers that final
//! time (`C_forker(s) ≥ final(s)`). The condition means the fork
//! happens-after the retired thread's join, so any thread that later
//! observes the new occupant's (strictly larger) values for slot `s` also
//! transitively happens-after *all* of the retired thread's actions —
//! surviving epochs `c@s` from the old thread still order correctly, and no
//! false positives or negatives are introduced. Slot clock values and
//! versions continue monotonically rather than resetting, which is what
//! keeps old epochs and version epochs meaningful.

use pacer_clock::{ClockValue, ThreadId};
use pacer_collections::IdMap;
use pacer_obs::{ObservableDetector, SpaceBreakdown};
use pacer_trace::{Action, Detector, RaceReport};

use crate::{PacerDetector, PacerStats};

/// A [`PacerDetector`] with accordion-clock thread-identifier reuse.
///
/// External thread ids (from the program) are remapped onto a compact set
/// of internal slots bounded by the maximum number of concurrently live
/// threads (plus reuse-condition slack) instead of the total number of
/// threads ever started. For workloads like the paper's hsqldb (403 total
/// threads, 102 max live) this shrinks every vector clock by roughly 4×.
///
/// Race reports name internal slots, not program thread ids.
///
/// # Examples
///
/// ```
/// use pacer_core::AccordionPacerDetector;
/// use pacer_trace::{Detector, Trace};
///
/// // 3 workers run strictly one after another: one worker slot suffices.
/// let trace = Trace::parse(
///     "
///     fork t0 t1
///     join t0 t1
///     fork t0 t2
///     join t0 t2
///     fork t0 t3
///     join t0 t3
/// ",
/// )?;
/// let mut d = AccordionPacerDetector::new();
/// d.run(&trace);
/// assert_eq!(d.slots_in_use(), 2, "main + one reused worker slot");
/// # Ok::<(), pacer_trace::ParseTraceError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct AccordionPacerDetector {
    inner: PacerDetector,
    /// External thread id → internal slot.
    map: IdMap<ThreadId, ThreadId>,
    /// Retired slots with the final own clock value the joiner received.
    retired: Vec<(ThreadId, ClockValue)>,
    next_slot: u32,
    /// Set when the most recent fork reused a retired slot.
    fork_reused_slot: bool,
}

impl AccordionPacerDetector {
    /// Creates a detector with an empty slot table.
    pub fn new() -> Self {
        AccordionPacerDetector::default()
    }

    /// Number of internal clock slots allocated so far (≤ total threads).
    pub fn slots_in_use(&self) -> usize {
        self.next_slot as usize
    }

    /// The wrapped PACER detector.
    pub fn inner(&self) -> &PacerDetector {
        &self.inner
    }

    /// Checks the wrapped detector's invariants plus the slot-table ones:
    /// retired slots are pairwise distinct, never live-mapped, and every
    /// slot (live or retired) is below `next_slot`.
    ///
    /// # Panics
    ///
    /// Panics if an invariant is violated.
    pub fn assert_invariants(&self) {
        self.inner.assert_invariants();
        for (i, &(s, _)) in self.retired.iter().enumerate() {
            assert!(
                (s.index() as u32) < self.next_slot,
                "retired slot {s:?} was never allocated"
            );
            assert!(
                self.retired[i + 1..].iter().all(|&(o, _)| o != s),
                "slot {s:?} retired twice"
            );
            assert!(
                self.map.values().all(|&live| live != s),
                "slot {s:?} both retired and live-mapped"
            );
        }
        for &live in self.map.values() {
            assert!(
                (live.index() as u32) < self.next_slot,
                "live slot {live:?} was never allocated"
            );
        }
    }

    fn slot(&mut self, external: ThreadId) -> ThreadId {
        if let Some(&s) = self.map.get(external) {
            return s;
        }
        // First appearance without a fork (the main thread): fresh slot.
        let s = self.fresh_slot();
        self.map.insert(external, s);
        s
    }

    fn fresh_slot(&mut self) -> ThreadId {
        let s = ThreadId::new(self.next_slot);
        self.next_slot += 1;
        s
    }

    /// Picks a slot for a newly forked thread: a retired slot whose final
    /// time the forker has already observed, or a fresh one.
    fn slot_for_fork(&mut self, forker_slot: ThreadId) -> ThreadId {
        let forker_clock = self.inner.state.thread(forker_slot).clock.clock().clone();
        if let Some(pos) = self
            .retired
            .iter()
            .position(|&(s, fin)| forker_clock.get(s) >= fin)
        {
            let (s, _) = self.retired.swap_remove(pos);
            self.fork_reused_slot = true;
            return s;
        }
        self.fork_reused_slot = false;
        self.fresh_slot()
    }

    fn remap(&mut self, action: &Action) -> Action {
        match *action {
            Action::Read { t, x, site } => Action::Read {
                t: self.slot(t),
                x,
                site,
            },
            Action::Write { t, x, site } => Action::Write {
                t: self.slot(t),
                x,
                site,
            },
            Action::Acquire { t, m } => Action::Acquire { t: self.slot(t), m },
            Action::Release { t, m } => Action::Release { t: self.slot(t), m },
            Action::VolRead { t, v } => Action::VolRead { t: self.slot(t), v },
            Action::VolWrite { t, v } => Action::VolWrite { t: self.slot(t), v },
            Action::Fork { t, u } => {
                let ts = self.slot(t);
                let us = self.slot_for_fork(ts);
                self.map.insert(u, us);
                Action::Fork { t: ts, u: us }
            }
            Action::Join { t, u } => Action::Join {
                t: self.slot(t),
                u: self.slot(u),
            },
            Action::SampleBegin => Action::SampleBegin,
            Action::SampleEnd => Action::SampleEnd,
        }
    }
}

impl Detector for AccordionPacerDetector {
    fn name(&self) -> String {
        "pacer+accordion".to_string()
    }

    fn on_action(&mut self, action: &Action) {
        let remapped = self.remap(action);
        self.inner.on_action(&remapped);
        match remapped {
            Action::Join { t, u } => {
                // Retire u's slot with the final time the joiner received;
                // only values ≤ this ever escaped u, so a forker whose
                // clock covers it happens-after everything u did.
                let fin = self.inner.state.thread(t).clock.clock().get(u);
                self.retired.push((u, fin));
                let externals: Vec<ThreadId> = self
                    .map
                    .iter()
                    .filter(|&(_, &s)| s == u)
                    .map(|(e, _)| e)
                    .collect();
                for e in externals {
                    self.map.remove(&e);
                }
            }
            Action::Fork { u, .. } if self.fork_reused_slot => {
                // Give the reused slot one unconditional tick (mirroring a
                // fresh thread's initial `inc_u(⊥)`): the new occupant's
                // own component must sit strictly above everything the old
                // occupant published, so its epochs are distinguishable.
                let meta = self.inner.state.thread(u);
                if meta.clock.is_shared() {
                    self.inner.stats.cow_clones += 1;
                }
                let overflowed = meta.clock.make_mut().try_increment(u).is_err();
                meta.ver.increment(u);
                if overflowed {
                    self.inner.state.overflow.get_or_insert(u);
                }
                self.fork_reused_slot = false;
            }
            _ => {}
        }
    }

    fn races(&self) -> &[RaceReport] {
        self.inner.races()
    }
}

impl ObservableDetector for AccordionPacerDetector {
    fn space_breakdown(&self) -> SpaceBreakdown {
        self.inner.space_breakdown()
    }

    fn pacer_stats(&self) -> Option<PacerStats> {
        Some(*self.inner.stats())
    }

    fn clock_overflow(&self) -> Option<ThreadId> {
        self.inner.state.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacer_trace::Trace;

    fn run(text: &str) -> AccordionPacerDetector {
        let trace = Trace::parse(text).unwrap();
        trace.validate().unwrap();
        let mut d = AccordionPacerDetector::new();
        for a in &trace {
            d.on_action(a);
            d.inner().assert_invariants();
        }
        d
    }

    #[test]
    fn sequential_threads_share_one_slot() {
        let d = run("
            fork t0 t1
            join t0 t1
            fork t0 t2
            join t0 t2
            fork t0 t3
            join t0 t3
        ");
        assert_eq!(d.slots_in_use(), 2);
    }

    #[test]
    fn concurrent_threads_need_distinct_slots() {
        let d = run("
            fork t0 t1
            fork t0 t2
            join t0 t1
            join t0 t2
        ");
        assert_eq!(d.slots_in_use(), 3, "t1 and t2 overlap");
    }

    #[test]
    fn unjoined_forker_cannot_reuse() {
        // t1 forks t2 and joins it, but t0 (who never saw the join) forks
        // t3: t3 must not reuse t2's slot.
        let d = run("
            fork t0 t1
            fork t1 t2
            join t1 t2
            fork t0 t3
            join t0 t1
            join t0 t3
        ");
        assert_eq!(d.slots_in_use(), 4);
    }

    #[test]
    fn detects_races_like_plain_pacer() {
        let d = run("
            fork t0 t1
            sbegin
            wr t0 x0 s1
            send
            wr t1 x0 s2
        ");
        assert_eq!(d.races().len(), 1);
    }

    #[test]
    fn reuse_does_not_create_false_positives() {
        // Worker t1 writes x under a sample, is joined; its slot is reused
        // by t2. t2's read of x is ordered after the write via the join +
        // fork chain: no race.
        let d = run("
            fork t0 t1
            sbegin
            wr t1 x0 s1
            send
            join t0 t1
            fork t0 t2
            rd t2 x0 s2
            join t0 t2
        ");
        assert_eq!(d.slots_in_use(), 2, "t2 reused t1's slot");
        assert!(d.races().is_empty(), "join/fork chain orders the accesses");
    }

    #[test]
    fn reuse_preserves_real_races() {
        // t1's sampled write races with t3, which overlaps it. Meanwhile t2
        // is joined and its slot reused — the unrelated race must survive.
        let d = run("
            fork t0 t2
            join t0 t2
            fork t0 t1
            fork t0 t3
            sbegin
            wr t1 x0 s1
            send
            wr t3 x0 s2
            join t0 t1
            join t0 t3
        ");
        assert_eq!(d.races().len(), 1);
        assert_eq!(d.slots_in_use(), 3, "t1 reused t2's slot");
    }

    #[test]
    fn race_with_dead_threads_metadata_survives_reuse() {
        // t1's sampled write is still in metadata when t1 dies and its slot
        // is reused by t3 (forked by t0 after the join). The concurrent t2
        // then writes x: the race against the *old* occupant's epoch must
        // still be reported.
        let d = run("
            fork t0 t2
            fork t0 t1
            sbegin
            wr t1 x0 s1
            send
            join t0 t1
            fork t0 t3
            rd t3 x1 s9
            wr t2 x0 s2
            join t0 t2
            join t0 t3
        ");
        assert_eq!(d.slots_in_use(), 3);
        assert_eq!(d.races().len(), 1);
        assert_eq!(d.races()[0].first.site, pacer_trace::SiteId::new(1));
    }

    #[test]
    fn matches_plain_pacer_on_random_traces() {
        use pacer_trace::gen::{insert_sampling_periods, GenConfig};

        for seed in 0..8 {
            let base = GenConfig::small(seed).with_lock_discipline(0.4).generate();
            let trace = insert_sampling_periods(&base, 0.5, 20, seed);
            let mut plain = PacerDetector::new();
            plain.run(&trace);
            let mut accordion = AccordionPacerDetector::new();
            accordion.run(&trace);
            let key = |races: &[RaceReport]| {
                let mut v: Vec<_> = races
                    .iter()
                    .map(|r| (r.x, r.first.site, r.second.site))
                    .collect();
                v.sort();
                v
            };
            assert_eq!(
                key(plain.races()),
                key(accordion.races()),
                "seed {seed}: accordion must not change detection"
            );
        }
    }
}
