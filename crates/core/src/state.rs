//! PACER's analysis state and its redefined vector-clock operations.
//!
//! The state `σ = (C, L, V, R, W, s)` of §A.4, together with the copy,
//! increment, and join operations of Algorithms 9–11 and 16 / Table 7.
//! Copy-on-write sharing uses [`CowClock`]; redundancy detection uses
//! [`VersionVector`]s (threads) and [`VersionEpoch`]s (locks and
//! volatiles).

use pacer_clock::{ClockArena, CowClock, Epoch, ReadMap, ThreadId, VersionEpoch, VersionVector};
use pacer_collections::IdMap;
use pacer_obs::SpaceBreakdown;
use pacer_trace::{LockId, SiteId, VarId, VolatileId};

use crate::PacerStats;

/// Thread metadata: a versioned vector clock plus a version vector (§A.3),
/// and the thread's monotone-join cache edges (DESIGN.md "Clock
/// representation": the last sync-object *content stamp* fully joined into
/// this thread, per object).
#[derive(Clone, Debug)]
pub(crate) struct ThreadMeta {
    pub clock: CowClock,
    pub ver: VersionVector,
    /// Stamp of the lock clock last fully joined into this thread.
    pub joined_locks: IdMap<LockId, u64>,
    /// Stamp of the volatile clock last fully joined into this thread.
    pub joined_vols: IdMap<VolatileId, u64>,
}

impl ThreadMeta {
    /// Initial state: `(inc_t(⊥_c), inc_t(⊥_v))` (§A.4, eq. 7).
    fn initial(t: ThreadId) -> Self {
        let mut clock = pacer_clock::VectorClock::new();
        clock.increment(t);
        let mut ver = VersionVector::new();
        ver.increment(t);
        ThreadMeta {
            clock: CowClock::new(clock),
            ver,
            joined_locks: IdMap::new(),
            joined_vols: IdMap::new(),
        }
    }

    /// `vepoch(t) ≡ ver_t[t]@t` — the thread's current version epoch.
    pub fn vepoch(&self, t: ThreadId) -> VersionEpoch {
        VersionEpoch::at(self.ver.get(t), t)
    }
}

/// Lock/volatile metadata: a (possibly shared) vector clock plus a version
/// epoch (§A.3), and a content stamp for the monotone-join cache — bumped
/// (from the state's monotone counter) exactly when the clock's *content*
/// changes, so `stamp equal ⇒ content identical`.
#[derive(Clone, Debug)]
pub(crate) struct SyncObjMeta {
    pub clock: CowClock,
    pub vepoch: VersionEpoch,
    pub stamp: u64,
}

impl Default for SyncObjMeta {
    fn default() -> Self {
        SyncObjMeta {
            clock: CowClock::bottom(),
            vepoch: VersionEpoch::BOTTOM,
            stamp: 0,
        }
    }
}

/// The sampled last write: epoch plus reporting site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct WriteInfo {
    pub epoch: Epoch,
    pub site: SiteId,
}

/// Per-variable metadata. Either side may be absent (`null` in Algorithms
/// 12–13); a variable with neither is removed from the map entirely, which
/// is what makes untracked accesses take the fast path.
#[derive(Clone, Debug, Default)]
pub(crate) struct VarMeta {
    pub write: Option<WriteInfo>,
    pub read: Option<ReadMap>,
}

impl VarMeta {
    pub fn is_empty(&self) -> bool {
        self.write.is_none() && self.read.is_none()
    }
}

/// Identifies the source operand of a thread-target join.
#[derive(Clone, Copy, Debug)]
pub(crate) enum SyncRef {
    Thread(ThreadId),
    Lock(LockId),
    Volatile(VolatileId),
}

/// The full PACER analysis state `σ`.
#[derive(Clone, Debug)]
pub(crate) struct PacerState {
    pub threads: Vec<Option<ThreadMeta>>,
    pub locks: IdMap<LockId, SyncObjMeta>,
    pub volatiles: IdMap<VolatileId, SyncObjMeta>,
    pub vars: IdMap<VarId, VarMeta>,
    pub sampling: bool,
    /// Ablation switch: when false, the version-epoch fast path is skipped
    /// and every join pays the `O(n)` comparison (benchmarked by the
    /// `version_ablation` bench).
    pub use_versions: bool,
    /// Ablation switch: when false, the monotone-join stamp cache is
    /// bypassed and redundant joins that miss the version fast path pay
    /// the full `O(n)` comparison (benchmarked by `clock_ablation`).
    pub use_join_cache: bool,
    /// The trial's clock arena — recycled storage for every deep copy and
    /// clone-on-write this state performs. `None` only for the
    /// `clock_ablation` baseline, where copies hit the global allocator.
    pub arena: Option<ClockArena>,
    /// Monotone counter feeding sync-object content stamps. Assigned in
    /// event order, so stamps (and everything derived from them) are
    /// deterministic at any `--jobs`.
    next_stamp: u64,
    /// First thread whose vector-clock component overflowed, if any.
    /// Clocks saturate instead of panicking (conservative: time stops
    /// advancing, races may be missed but history is never reordered);
    /// the harness converts a post-run `Some` into a quarantinable trial
    /// error.
    pub overflow: Option<ThreadId>,
}

impl Default for PacerState {
    fn default() -> Self {
        PacerState {
            threads: Vec::new(),
            locks: IdMap::new(),
            volatiles: IdMap::new(),
            vars: IdMap::new(),
            sampling: false,
            use_versions: true,
            use_join_cache: true,
            arena: Some(ClockArena::new()),
            next_stamp: 0,
            overflow: None,
        }
    }
}

impl PacerState {
    /// Thread metadata, created at its initial value on first use.
    pub fn thread(&mut self, t: ThreadId) -> &mut ThreadMeta {
        Self::thread_slot(&mut self.threads, t)
    }

    /// Free-standing slot materialization so callers can borrow a thread's
    /// metadata and the arena (disjoint fields) simultaneously.
    fn thread_slot(threads: &mut Vec<Option<ThreadMeta>>, t: ThreadId) -> &mut ThreadMeta {
        let i = t.index();
        if i >= threads.len() {
            threads.resize_with(i + 1, || None);
        }
        threads[i].get_or_insert_with(|| ThreadMeta::initial(t))
    }

    /// The next sync-object content stamp (monotone, event-ordered).
    fn fresh_stamp(&mut self) -> u64 {
        self.next_stamp += 1;
        self.next_stamp
    }

    /// Reads the version epoch of a join source without touching its clock
    /// — the version fast path (rule 4) needs nothing else, so the common
    /// case never pays refcount traffic on the clock handle. Absent objects
    /// (never-released locks, never-written volatiles) read as `⊥_ve`, for
    /// which every join is a fast no-op. Returns the source's content stamp
    /// alongside (0 for threads and absent objects: never cached).
    fn source_vepoch(&mut self, source: SyncRef) -> (VersionEpoch, u64) {
        match source {
            SyncRef::Thread(u) => {
                let meta = self.thread(u);
                (meta.vepoch(u), 0)
            }
            SyncRef::Lock(m) => match self.locks.get(m) {
                Some(meta) => (meta.vepoch, meta.stamp),
                None => (VersionEpoch::BOTTOM, 0),
            },
            SyncRef::Volatile(v) => match self.volatiles.get(v) {
                Some(meta) => (meta.vepoch, meta.stamp),
                None => (VersionEpoch::BOTTOM, 0),
            },
        }
    }

    /// An `O(1)` handle on the source clock of a join (slow path only).
    fn source_clock(&mut self, source: SyncRef) -> CowClock {
        match source {
            SyncRef::Thread(u) => self.thread(u).clock.shallow_copy(),
            SyncRef::Lock(m) => match self.locks.get(m) {
                Some(meta) => meta.clock.shallow_copy(),
                None => CowClock::bottom(),
            },
            SyncRef::Volatile(v) => match self.volatiles.get(v) {
                Some(meta) => meta.clock.shallow_copy(),
                None => CowClock::bottom(),
            },
        }
    }

    /// The cached stamp for the `(thread t × source)` join edge, if the
    /// cache is enabled and the edge has one.
    fn cached_edge(meta: &ThreadMeta, source: SyncRef) -> Option<u64> {
        match source {
            SyncRef::Lock(m) => meta.joined_locks.get(m).copied(),
            SyncRef::Volatile(v) => meta.joined_vols.get(v).copied(),
            SyncRef::Thread(_) => None,
        }
    }

    /// Records that `source`'s clock at `stamp` is now fully joined into
    /// (subsumed by) thread `t`'s clock.
    fn record_edge(meta: &mut ThreadMeta, source: SyncRef, stamp: u64) {
        match source {
            SyncRef::Lock(m) => {
                meta.joined_locks.insert(m, stamp);
            }
            SyncRef::Volatile(v) => {
                meta.joined_vols.insert(v, stamp);
            }
            SyncRef::Thread(_) => {}
        }
    }

    /// Vector-clock increment (Algorithm 10): `C_t ← inc_t(C_t, s)`.
    ///
    /// No-op outside sampling periods — this is what makes them *timeless*.
    pub fn increment(&mut self, t: ThreadId, stats: &mut PacerStats) {
        if !self.sampling {
            return;
        }
        let meta = Self::thread_slot(&mut self.threads, t);
        if meta.clock.is_shared() {
            stats.cow_clones += 1;
        }
        let overflowed = meta
            .clock
            .make_mut_in(self.arena.as_ref())
            .try_increment(t)
            .is_err();
        meta.ver.increment(t);
        if overflowed {
            self.overflow.get_or_insert(t);
        }
    }

    /// Vector-clock join with a thread target (Algorithm 11 / Table 7,
    /// rules 4–6): `C_t ← C_t ⊔ S_o`.
    ///
    /// Two `O(1)` exits precede the `O(n)` work, in order: the paper's
    /// version fast path (rule 4), then the monotone-join stamp cache —
    /// if the source's content stamp equals the one last fully joined into
    /// `t`, the source is unchanged and `C_t` only grew, so rule 5's
    /// subsumption conclusion still holds without re-comparing. Neither
    /// exit perturbs the paper's join/copy accounting: the cache hit is
    /// counted as the slow join it replaces (it *is* rule 5, computed in
    /// `O(1)`), keeping Table 3 counters exact.
    pub fn join_into_thread(&mut self, t: ThreadId, source: SyncRef, stats: &mut PacerStats) {
        let (src_vepoch, src_stamp) = self.source_vepoch(source);
        let sampling = self.sampling;
        let use_versions = self.use_versions;
        let use_join_cache = self.use_join_cache;
        {
            let meta = self.thread(t);

            // Rule 4 {Same version epoch}: the source's snapshot is already
            // subsumed — O(1), no clock work at all.
            if use_versions && src_vepoch.leq(&meta.ver) {
                if sampling {
                    stats.joins.sampling_fast += 1;
                } else {
                    stats.joins.non_sampling_fast += 1;
                }
                return;
            }
            if sampling {
                stats.joins.sampling_slow += 1;
            } else {
                stats.joins.non_sampling_slow += 1;
            }

            // Monotone-join cache: source unchanged since last fully joined
            // into t ⇒ rule 5 applies, skip the O(n) comparison.
            if use_join_cache
                && src_stamp != 0
                && Self::cached_edge(meta, source) == Some(src_stamp)
            {
                if let VersionEpoch::At { v, t: u } = src_vepoch {
                    meta.ver.set(u, v);
                }
                return;
            }
        }

        let src_clock = self.source_clock(source);
        let meta = Self::thread_slot(&mut self.threads, t);

        // Rules 5–6: O(n) comparison decides whether the join changes C_t.
        // Shared storage is a free O(1) answer: identical content.
        let subsumed =
            CowClock::ptr_eq(&src_clock, &meta.clock) || src_clock.clock().leq(meta.clock.clock());
        if !subsumed {
            // Rule 6 {Concurrent}: perform the join.
            if meta.clock.is_shared() {
                stats.cow_clones += 1;
            }
            meta.clock
                .make_mut_in(self.arena.as_ref())
                .join(src_clock.clock());
            meta.ver.increment(t);
        }
        // Rules 5 and 6 both record the received version (skipped for ⊤_ve).
        if let VersionEpoch::At { v, t: u } = src_vepoch {
            meta.ver.set(u, v);
        }
        // Either way the source is now subsumed by C_t: remember its stamp.
        if use_join_cache && src_stamp != 0 {
            Self::record_edge(meta, source, src_stamp);
        }
    }

    /// Vector-clock copy into a lock (Algorithm 9): `C_m ← C_t`, at a lock
    /// release. Shallow outside sampling periods, deep inside.
    pub fn copy_to_lock(&mut self, m: LockId, t: ThreadId, stats: &mut PacerStats) {
        let sampling = self.sampling;
        let stamp = self.fresh_stamp();
        let meta = Self::thread_slot(&mut self.threads, t);
        let (clock, vepoch) = if sampling {
            stats.copies.sampling_deep += 1;
            (meta.clock.deep_copy_in(self.arena.as_ref()), meta.vepoch(t))
        } else {
            stats.copies.non_sampling_shallow += 1;
            (meta.clock.shallow_copy(), meta.vepoch(t))
        };
        // No cache edge is seeded here: the releasing thread's own
        // re-acquire is already O(1) via the version fast path (rule 4),
        // so a per-release map write would buy nothing.
        let displaced = self.locks.insert(
            m,
            SyncObjMeta {
                clock,
                vepoch,
                stamp,
            },
        );
        // The overwritten lock clock is dead; park sole-owner storage
        // (shared storage stays with its other owners — skip the pool).
        if let Some(old) = displaced {
            if !old.clock.is_shared() {
                if let Some(arena) = &self.arena {
                    arena.reclaim(old.clock);
                }
            }
        }
    }

    /// Vector-clock join with a volatile target (Algorithm 16 / Table 7,
    /// rules 7–9): `C_vx ← C_vx ⊔ C_t`, at a volatile write.
    ///
    /// When the thread's clock subsumes the volatile's (detected by version
    /// epoch or by an `O(n)` comparison) the join degenerates to a copy —
    /// shallow outside sampling periods — and the volatile keeps a version
    /// epoch. Otherwise the volatile's clock becomes a true join of several
    /// threads' clocks and its version epoch becomes `⊤_ve`.
    ///
    /// Deviation note: Algorithm 16 as printed only takes the subsumption
    /// fast path while sampling; we follow the Table 7 semantics (and the
    /// surrounding prose), which applies it in both periods. See DESIGN.md.
    pub fn join_into_volatile(&mut self, vx: VolatileId, t: ThreadId, stats: &mut PacerStats) {
        let sampling = self.sampling;
        let (t_vepoch, t_clock) = {
            let meta = self.thread(t);
            (meta.vepoch(t), meta.clock.shallow_copy())
        };
        let existing = self.volatiles.get(vx);

        // Does C_t subsume C_vx?
        let (subsumes, fast) = match existing {
            None => (true, true),
            Some(meta) => {
                let ver_hit = self.use_versions && {
                    // Check the volatile's version epoch against the
                    // thread's version vector.
                    let thread_ver = &self.threads[t.index()].as_ref().expect("thread exists").ver;
                    meta.vepoch.leq(thread_ver)
                };
                if ver_hit {
                    (true, true)
                } else {
                    (meta.clock.clock().leq(t_clock.clock()), false)
                }
            }
        };
        if fast {
            if sampling {
                stats.joins.sampling_fast += 1;
            } else {
                stats.joins.non_sampling_fast += 1;
            }
        } else if sampling {
            stats.joins.sampling_slow += 1;
        } else {
            stats.joins.non_sampling_slow += 1;
        }

        let stamp = self.fresh_stamp();
        if subsumes {
            // Rules 7–8: the join is a copy of C_t.
            let clock = if sampling {
                stats.copies.sampling_deep += 1;
                t_clock.deep_copy_in(self.arena.as_ref())
            } else {
                stats.copies.non_sampling_shallow += 1;
                t_clock.shallow_copy()
            };
            let displaced = self.volatiles.insert(
                vx,
                SyncObjMeta {
                    clock,
                    vepoch: t_vepoch,
                    stamp,
                },
            );
            // The overwritten volatile clock is dead; park sole-owner
            // storage (shared storage stays with its other owners).
            if let Some(old) = displaced {
                if !old.clock.is_shared() {
                    if let Some(arena) = &self.arena {
                        arena.reclaim(old.clock);
                    }
                }
            }
        } else {
            // Rule 9 {Concurrent}: real join; version epoch becomes ⊤_ve.
            let meta = self
                .volatiles
                .get_mut(vx)
                .expect("subsumes=false implies entry");
            if meta.clock.is_shared() {
                stats.cow_clones += 1;
            }
            meta.clock
                .make_mut_in(self.arena.as_ref())
                .join(t_clock.clock());
            meta.vepoch = VersionEpoch::Top;
            meta.stamp = stamp;
        }
    }

    /// `sbegin()` (Table 5, rule 1): increments every live thread's clock
    /// and version, then enables sampling. The increments add no
    /// happens-before edges; they only re-establish *strict*
    /// well-formedness (Lemma 5) so epochs recorded in this period are
    /// distinguishable.
    pub fn sample_begin(&mut self, stats: &mut PacerStats) {
        stats.sample_periods += 1;
        for i in 0..self.threads.len() {
            let t = ThreadId::new(i as u32);
            if let Some(meta) = &mut self.threads[i] {
                if meta.clock.is_shared() {
                    stats.cow_clones += 1;
                }
                if meta
                    .clock
                    .make_mut_in(self.arena.as_ref())
                    .try_increment(t)
                    .is_err()
                {
                    self.overflow.get_or_insert(t);
                }
                meta.ver.increment(t);
            }
        }
        self.sampling = true;
    }

    /// `send()` (Table 5, rule 2): disables sampling.
    pub fn sample_end(&mut self) {
        self.sampling = false;
    }

    /// Live metadata footprint in machine words. Shared clock buffers are
    /// charged once — that is precisely the saving shallow copies buy.
    pub fn footprint_words(&self) -> usize {
        self.space_breakdown().total_words() as usize
    }

    /// Splits the live metadata footprint by category (Fig. 7's space
    /// accounting). The sum of the word fields equals
    /// [`footprint_words`](Self::footprint_words); clock storage reached by
    /// more than one owner is charged once, under `clock_words_shared`.
    pub fn space_breakdown(&self) -> SpaceBreakdown {
        let mut seen = std::collections::HashSet::new();
        let mut b = SpaceBreakdown::default();
        let mut charge = |b: &mut SpaceBreakdown, c: &CowClock| {
            if seen.insert(c.storage_id()) {
                let words = c.clock().width() as u64;
                if c.is_shared() {
                    b.clock_words_shared += words;
                } else {
                    b.clock_words_owned += words;
                }
            }
        };
        for meta in self.threads.iter().flatten() {
            charge(&mut b, &meta.clock);
            b.version_words += meta.ver.width() as u64;
        }
        for meta in self.locks.values() {
            charge(&mut b, &meta.clock);
            b.version_words += 2; // version epoch
        }
        for meta in self.volatiles.values() {
            charge(&mut b, &meta.clock);
            b.version_words += 2;
        }
        for meta in self.vars.values() {
            b.tracked_vars += 1;
            b.write_words += 2; // write epoch + site (inline but charged per entry)
            if let Some(r) = &meta.read {
                b.read_map_words += r.footprint_words() as u64 + 1;
                b.read_map_entries += r.len() as u64;
            }
        }
        b
    }

    /// Checks the well-formedness invariants of Definition 1 plus Lemma 7
    /// (versions imply vector-clock ordering). Used by property tests after
    /// every transition; `O(n²)` and debug-only by design.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn assert_invariants(&self) {
        let live: Vec<(ThreadId, &ThreadMeta)> = self
            .threads
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.as_ref().map(|m| (ThreadId::new(i as u32), m)))
            .collect();
        for &(t, tm) in &live {
            let own = tm.clock.clock().get(t);
            let own_ver = tm.ver.get(t);
            for &(u, um) in &live {
                if u == t {
                    continue;
                }
                // Definition 1.1: C_u.vc(t) ≤ C_t.vc(t).
                assert!(
                    um.clock.clock().get(t) <= own,
                    "invariant 1 violated: C_{u}({t}) > C_{t}({t})"
                );
                // Definition 1.6: C_u.ver(t) ≤ C_t.ver(t).
                assert!(
                    um.ver.get(t) <= own_ver,
                    "invariant 6 violated: ver_{u}({t}) > ver_{t}({t})"
                );
            }
            for (m, lm) in self.locks.iter() {
                // Definition 1.2 / 1.7.
                assert!(
                    lm.clock.clock().get(t) <= own,
                    "invariant 2 violated: C_{m}({t}) > C_{t}({t})"
                );
                if let VersionEpoch::At { v, t: vt } = lm.vepoch {
                    if vt == t {
                        assert!(v <= own_ver, "invariant 7 violated at lock {m}");
                    }
                }
            }
            for (vx, vm) in self.volatiles.iter() {
                // Definition 1.5 / 1.8.
                assert!(
                    vm.clock.clock().get(t) <= own,
                    "invariant 5 violated: C_{vx}({t}) > C_{t}({t})"
                );
                if let VersionEpoch::At { v, t: vt } = vm.vepoch {
                    if vt == t {
                        assert!(v <= own_ver, "invariant 8 violated at volatile {vx}");
                    }
                }
            }
            // Definition 1.3 / 1.4: variable metadata is bounded by thread
            // clocks.
            for (x, xm) in self.vars.iter() {
                if let Some(w) = &xm.write {
                    if w.epoch.tid() == t {
                        assert!(
                            w.epoch.clock() <= own,
                            "invariant 4 violated: W_{x} ahead of C_{t}({t})"
                        );
                    }
                }
                if let Some(r) = &xm.read {
                    for entry in r.iter() {
                        if entry.tid == t {
                            assert!(
                                entry.clock <= own,
                                "invariant 3 violated: R_{x}({t}) ahead of C_{t}({t})"
                            );
                        }
                    }
                }
            }
            // Lemma 7: Ver(o) ≼ C_t.ver ⇒ S_o.vc ⊑ C_t.vc.
            for (m, lm) in self.locks.iter() {
                if lm.vepoch.leq(&tm.ver) {
                    assert!(
                        lm.clock.clock().leq(tm.clock.clock()),
                        "lemma 7 violated: lock {m} subsumed by version but not by clock of {t}"
                    );
                }
            }
            for (vx, vm) in self.volatiles.iter() {
                if vm.vepoch.leq(&tm.ver) {
                    assert!(
                        vm.clock.clock().leq(tm.clock.clock()),
                        "lemma 7 violated: volatile {vx} subsumed by version but not by clock of {t}"
                    );
                }
            }
            for &(u, um) in &live {
                if um.vepoch(u).leq(&tm.ver) {
                    assert!(
                        um.clock.clock().leq(tm.clock.clock()),
                        "lemma 7 violated: thread {u} subsumed by version but not by clock of {t}"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn initial_thread_state_matches_equation_7() {
        let mut st = PacerState::default();
        let meta = st.thread(t(2));
        assert_eq!(meta.clock.clock().get(t(2)), 1);
        assert_eq!(meta.ver.get(t(2)), 1);
        assert_eq!(meta.vepoch(t(2)), VersionEpoch::at(1, t(2)));
    }

    #[test]
    fn increment_is_noop_outside_sampling() {
        let mut st = PacerState::default();
        let mut stats = PacerStats::default();
        st.thread(t(0));
        st.increment(t(0), &mut stats);
        assert_eq!(st.thread(t(0)).clock.clock().get(t(0)), 1, "timeless");
        st.sampling = true;
        st.increment(t(0), &mut stats);
        assert_eq!(st.thread(t(0)).clock.clock().get(t(0)), 2);
        assert_eq!(st.thread(t(0)).ver.get(t(0)), 2, "version tracks clock");
    }

    #[test]
    fn copy_to_lock_is_shallow_outside_sampling() {
        let mut st = PacerState::default();
        let mut stats = PacerStats::default();
        st.thread(t(0));
        st.copy_to_lock(LockId::new(0), t(0), &mut stats);
        assert_eq!(stats.copies.non_sampling_shallow, 1);
        assert_eq!(stats.copies.sampling_deep, 0);
        let lock = &st.locks[&LockId::new(0)];
        assert!(CowClock::ptr_eq(
            &lock.clock,
            &st.threads[0].as_ref().unwrap().clock
        ));
        assert_eq!(lock.vepoch, VersionEpoch::at(1, t(0)));
    }

    #[test]
    fn copy_to_lock_is_deep_inside_sampling() {
        let mut st = PacerState::default();
        let mut stats = PacerStats::default();
        st.thread(t(0));
        st.sampling = true;
        st.copy_to_lock(LockId::new(0), t(0), &mut stats);
        assert_eq!(stats.copies.sampling_deep, 1);
        let lock = &st.locks[&LockId::new(0)];
        assert!(!CowClock::ptr_eq(
            &lock.clock,
            &st.threads[0].as_ref().unwrap().clock
        ));
    }

    #[test]
    fn redundant_join_takes_fast_path() {
        let mut st = PacerState::default();
        let mut stats = PacerStats::default();
        st.thread(t(0));
        st.thread(t(1));
        st.copy_to_lock(LockId::new(0), t(0), &mut stats);
        // First acquire by t1: slow (never received t0's version).
        st.join_into_thread(t(1), SyncRef::Lock(LockId::new(0)), &mut stats);
        assert_eq!(stats.joins.non_sampling_slow, 1);
        // Redundant re-acquire: fast.
        st.join_into_thread(t(1), SyncRef::Lock(LockId::new(0)), &mut stats);
        assert_eq!(stats.joins.non_sampling_fast, 1);
        st.assert_invariants();
    }

    #[test]
    fn join_of_missing_lock_is_fast_noop() {
        let mut st = PacerState::default();
        let mut stats = PacerStats::default();
        st.join_into_thread(t(0), SyncRef::Lock(LockId::new(9)), &mut stats);
        assert_eq!(stats.joins.non_sampling_fast, 1);
        assert_eq!(st.thread(t(0)).clock.clock().get(t(0)), 1);
    }

    #[test]
    fn join_updates_clock_and_version_when_concurrent() {
        let mut st = PacerState::default();
        let mut stats = PacerStats::default();
        st.sampling = true;
        st.thread(t(0));
        st.thread(t(1));
        st.increment(t(0), &mut stats); // make t0's clock nontrivial
        st.copy_to_lock(LockId::new(0), t(0), &mut stats);
        st.join_into_thread(t(1), SyncRef::Lock(LockId::new(0)), &mut stats);
        let m1 = st.threads[1].as_ref().unwrap();
        assert_eq!(m1.clock.clock().get(t(0)), 2, "received t0's time");
        assert_eq!(m1.ver.get(t(1)), 2, "own version bumped by the join");
        assert_eq!(m1.ver.get(t(0)), 2, "recorded t0's version");
        st.assert_invariants();
    }

    #[test]
    fn shared_clock_is_cloned_before_join_mutation() {
        let mut st = PacerState::default();
        let mut stats = PacerStats::default();
        st.thread(t(0));
        st.thread(t(1));
        // Outside sampling: t1 releases a lock, sharing its clock.
        st.copy_to_lock(LockId::new(1), t(1), &mut stats);
        // t0 publishes a nontrivial clock via lock 0.
        st.sampling = true;
        st.increment(t(0), &mut stats);
        st.copy_to_lock(LockId::new(0), t(0), &mut stats);
        st.sampling = false;
        // t1 joins lock 0: its (shared) clock must be cloned first.
        let before = stats.cow_clones;
        st.join_into_thread(t(1), SyncRef::Lock(LockId::new(0)), &mut stats);
        assert_eq!(stats.cow_clones, before + 1);
        // Lock 1 still holds the old snapshot.
        assert_eq!(st.locks[&LockId::new(1)].clock.clock().get(t(0)), 0);
        assert_eq!(st.threads[1].as_ref().unwrap().clock.clock().get(t(0)), 2);
        st.assert_invariants();
    }

    #[test]
    fn volatile_join_subsumed_becomes_copy() {
        let mut st = PacerState::default();
        let mut stats = PacerStats::default();
        st.thread(t(0));
        // First write: volatile absent → fast, copy.
        st.join_into_volatile(VolatileId::new(0), t(0), &mut stats);
        assert_eq!(stats.joins.non_sampling_fast, 1);
        assert_eq!(stats.copies.non_sampling_shallow, 1);
        let meta = &st.volatiles[&VolatileId::new(0)];
        assert_eq!(meta.vepoch, VersionEpoch::at(1, t(0)));
        // Redundant re-write: version fast path.
        st.join_into_volatile(VolatileId::new(0), t(0), &mut stats);
        assert_eq!(stats.joins.non_sampling_fast, 2);
        st.assert_invariants();
    }

    #[test]
    fn concurrent_volatile_writers_reach_top() {
        let mut st = PacerState::default();
        let mut stats = PacerStats::default();
        st.sampling = true;
        st.thread(t(0));
        st.thread(t(1));
        let vx = VolatileId::new(0);
        st.join_into_volatile(vx, t(0), &mut stats);
        st.increment(t(0), &mut stats);
        // t1 has not seen t0: its write cannot subsume the volatile.
        st.join_into_volatile(vx, t(1), &mut stats);
        assert_eq!(st.volatiles[&vx].vepoch, VersionEpoch::Top);
        let c = st.volatiles[&vx].clock.clock();
        assert_eq!(c.get(t(0)), 1);
        assert_eq!(c.get(t(1)), 1);
        st.assert_invariants();
    }

    #[test]
    fn sample_begin_increments_every_live_thread() {
        let mut st = PacerState::default();
        let mut stats = PacerStats::default();
        st.thread(t(0));
        st.thread(t(2));
        st.sample_begin(&mut stats);
        assert!(st.sampling);
        assert_eq!(stats.sample_periods, 1);
        assert_eq!(st.threads[0].as_ref().unwrap().clock.clock().get(t(0)), 2);
        assert!(st.threads[1].is_none(), "unseen threads untouched");
        assert_eq!(st.threads[2].as_ref().unwrap().clock.clock().get(t(2)), 2);
        st.sample_end();
        assert!(!st.sampling);
        st.assert_invariants();
    }

    #[test]
    fn footprint_charges_shared_storage_once() {
        let mut st = PacerState::default();
        let mut stats = PacerStats::default();
        st.sampling = true;
        st.thread(t(0));
        st.increment(t(0), &mut stats);
        st.sampling = false;
        let solo = st.footprint_words();
        // Shallow-copy the thread clock into three locks: footprint should
        // grow only by the per-lock version epochs, not by clock storage.
        for m in 0..3 {
            st.copy_to_lock(LockId::new(m), t(0), &mut stats);
        }
        assert_eq!(st.footprint_words(), solo + 3 * 2);
    }

    #[test]
    fn var_meta_emptiness() {
        let mut vm = VarMeta::default();
        assert!(vm.is_empty());
        vm.write = Some(WriteInfo {
            epoch: Epoch::new(1, t(0)),
            site: SiteId::new(0),
        });
        assert!(!vm.is_empty());
    }
}
