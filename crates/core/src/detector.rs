//! The PACER detector: sampling race detection with a proportionality
//! guarantee.

use pacer_clock::{Epoch, ReadMap, ThreadId};
use pacer_obs::{ObservableDetector, SpaceBreakdown};
use pacer_trace::{Access, AccessKind, Action, Detector, RaceReport, SiteId, VarId};

use crate::state::{PacerState, SyncRef, WriteInfo};
use crate::PacerStats;

/// The PACER sampling race detector (§3).
///
/// Inside sampling periods PACER *is* FASTTRACK. Outside, it:
///
/// * performs the same race **checks** against surviving sampled metadata —
///   that is how a sampled first access is paired with a later unsampled
///   second access;
/// * records **no** new accesses and *discards* metadata FASTTRACK would
///   have overwritten or discarded (Algorithms 12–13), so space shrinks
///   back between samples;
/// * never increments vector clocks, and resolves redundant synchronization
///   with `O(1)` version checks and shallow copies (Algorithms 9–11).
///
/// Sampling is controlled by `SampleBegin`/`SampleEnd` actions in the event
/// stream (use [`Sampled`](crate::sampling::Sampled) or the runtime crate's
/// GC-driven controller to produce them).
///
/// Guarantee (Theorem 2): for conflicting accesses `A` then `B` where `A`
/// executes in a sampling period and is the last access to race with `B`,
/// PACER reports the race — whether or not `B` is sampled.
///
/// # Examples
///
/// ```
/// use pacer_core::PacerDetector;
/// use pacer_trace::{Detector, Trace};
///
/// let trace = Trace::parse(
///     "
///     fork t0 t1
///     sbegin
///     rd t0 x0 s1
///     send
///     wr t1 x0 s2
/// ",
/// )?;
/// let mut pacer = PacerDetector::new();
/// pacer.run(&trace);
/// assert_eq!(pacer.races().len(), 1, "sampled read races with later write");
/// assert!(pacer.stats().reads.sampling_slow >= 1);
/// # Ok::<(), pacer_trace::ParseTraceError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct PacerDetector {
    pub(crate) state: PacerState,
    pub(crate) stats: PacerStats,
    pub(crate) races: Vec<RaceReport>,
}

impl PacerDetector {
    /// Creates a detector in the initial (non-sampling) state `σ₀`.
    pub fn new() -> Self {
        PacerDetector::default()
    }

    /// Enables or disables the version-epoch fast path (Algorithm 11's
    /// `O(1)` redundancy check). Disabling it is the ablation of §3.2's
    /// design choice: detection is unchanged, but every join pays `O(n)`.
    pub fn with_version_fast_path(mut self, enabled: bool) -> Self {
        self.state.use_versions = enabled;
        self
    }

    /// Enables or disables the monotone-join cache (the amortized-`O(1)`
    /// redundant-acquire skip keyed by sync-object version stamps).
    /// Detection and all Table 1/3 counters are unchanged either way; the
    /// flag exists for the `clock_ablation` benchmark.
    pub fn with_join_cache(mut self, enabled: bool) -> Self {
        self.state.use_join_cache = enabled;
        self
    }

    /// Enables or disables arena-recycled clock storage. With the arena
    /// off, every deep copy and clone-on-write goes through the global
    /// allocator. Detection is unchanged either way; the flag exists for
    /// the `clock_ablation` benchmark.
    pub fn with_clock_arena(mut self, enabled: bool) -> Self {
        self.state.arena = enabled.then(pacer_clock::ClockArena::new);
        self
    }

    /// The operation statistics gathered so far (Tables 1 and 3).
    pub fn stats(&self) -> &PacerStats {
        &self.stats
    }

    /// Whether the analysis is currently inside a sampling period.
    pub fn is_sampling(&self) -> bool {
        self.state.sampling
    }

    /// Live analysis metadata in machine words; shared clock storage is
    /// charged once (Figure 10's space measurement).
    pub fn footprint_words(&self) -> usize {
        self.state.footprint_words()
    }

    /// Number of variables currently carrying metadata.
    pub fn tracked_vars(&self) -> usize {
        self.state.vars.len()
    }

    /// Checks Definition 1 well-formedness and the Lemma 7 version
    /// invariant. Intended for tests; `O(n²)`.
    ///
    /// # Panics
    ///
    /// Panics if an invariant is violated.
    pub fn assert_invariants(&self) {
        self.state.assert_invariants();
    }

    /// Algorithm 12: analysis at a read.
    fn on_read(&mut self, t: ThreadId, x: VarId, site: SiteId) {
        let sampling = self.state.sampling;
        self.state.thread(t); // materialize C_t
        if !sampling && !self.state.vars.contains_key(&x) {
            // Fast path: `!(sampling || o.metadata != null)` (§4).
            self.stats.reads.non_sampling_fast += 1;
            return;
        }
        if sampling {
            self.stats.reads.sampling_slow += 1;
        } else {
            self.stats.reads.non_sampling_slow += 1;
        }

        let ct = self.state.threads[t.index()]
            .as_ref()
            .expect("materialized above")
            .clock
            .clock();
        let meta = self.state.vars.get_or_insert_with(x, Default::default);
        let epoch_t = Epoch::of_thread(t, ct);

        // {If same epoch, no action}: this thread already read f at this
        // very epoch (FASTTRACK's Algorithm 7 gate).
        if !epoch_t.is_min() && meta.read.as_ref().and_then(ReadMap::as_epoch) == Some(epoch_t) {
            return;
        }

        // check W_f ⊑ clock_t — a sampled write racing with this read?
        if let Some(w) = meta.write {
            if !w.epoch.leq_clock(ct) {
                self.races.push(RaceReport {
                    x,
                    first: Access {
                        tid: w.epoch.tid(),
                        kind: AccessKind::Write,
                        site: w.site,
                    },
                    second: Access {
                        tid: t,
                        kind: AccessKind::Read,
                        site,
                    },
                });
            }
        }

        if sampling {
            // FASTTRACK's read-map update, exactly as in Algorithm 7: the
            // map collapses to an epoch only while it has at most one,
            // ordered, entry.
            let rm = meta.read.get_or_insert_with(ReadMap::empty);
            match rm.as_epoch() {
                Some(prev) if prev.leq_clock(ct) => {
                    rm.set_epoch(epoch_t, site.raw()); // {Overwrite read map}
                }
                _ => {
                    rm.insert(t, ct.get(t), site.raw()); // {Update read map}
                }
            }
        } else {
            // Algorithm 12's gate: after the thread's own same-epoch
            // sampled *write*, the metadata must survive untouched.
            if meta.write.is_some_and(|w| w.epoch == epoch_t) {
                return;
            }
            // Discard whatever FASTTRACK would have replaced (Table 4,
            // rules 2–4, non-sampling column).
            if let Some(rm) = &mut meta.read {
                match rm.as_epoch() {
                    Some(e) if e.is_min() => meta.read = None,
                    Some(e) => {
                        if e.leq_clock(ct) {
                            // Rule 2 {Exclusive}: the stored read happens
                            // before this one; it can no longer be the last
                            // access to race with anything after us.
                            meta.read = None;
                        }
                        // Rule 4 {Share}: concurrent sampled read — keep it.
                    }
                    None => {
                        // Rule 3 {Shared}: discard only our own entry.
                        rm.remove(t);
                        if rm.is_empty() {
                            meta.read = None;
                        }
                    }
                }
            }
            if meta.is_empty() {
                self.state.vars.remove(&x);
            }
        }
    }

    /// Algorithm 13: analysis at a write.
    fn on_write(&mut self, t: ThreadId, x: VarId, site: SiteId) {
        let sampling = self.state.sampling;
        self.state.thread(t);
        if !sampling && !self.state.vars.contains_key(&x) {
            self.stats.writes.non_sampling_fast += 1;
            return;
        }
        if sampling {
            self.stats.writes.sampling_slow += 1;
        } else {
            self.stats.writes.non_sampling_slow += 1;
        }

        let ct = self.state.threads[t.index()]
            .as_ref()
            .expect("materialized above")
            .clock
            .clock();
        let meta = self.state.vars.get_or_insert_with(x, Default::default);
        let epoch_t = Epoch::of_thread(t, ct);
        // {If same epoch, no action} — FASTTRACK's Algorithm 8 gate, before
        // any check: a repeated write at the same epoch changes nothing.
        if meta.write.is_some_and(|w| w.epoch == epoch_t) {
            return;
        }
        let second = Access {
            tid: t,
            kind: AccessKind::Write,
            site,
        };

        // check R_f ⊑ clock_t — sampled reads racing with this write?
        if let Some(rm) = &meta.read {
            for entry in rm.entries_racing_with(ct) {
                self.races.push(RaceReport {
                    x,
                    first: Access {
                        tid: entry.tid,
                        kind: AccessKind::Read,
                        site: SiteId::new(entry.site),
                    },
                    second,
                });
            }
        }
        // check W_f ⊑ clock_t.
        if let Some(w) = meta.write {
            if !w.epoch.leq_clock(ct) {
                self.races.push(RaceReport {
                    x,
                    first: Access {
                        tid: w.epoch.tid(),
                        kind: AccessKind::Write,
                        site: w.site,
                    },
                    second,
                });
            }
        }

        if sampling {
            meta.write = Some(WriteInfo {
                epoch: epoch_t,
                site,
            }); // {Update write epoch}
            meta.read = None; // {Discard read map}
        } else {
            // {Discard write epoch and read map}: this unsampled write
            // supersedes them as "last access" for every future race.
            meta.write = None;
            meta.read = None;
        }
        if meta.is_empty() {
            self.state.vars.remove(&x);
        }
    }

    fn count_sync(&mut self) {
        if self.state.sampling {
            self.stats.sampled_sync_ops += 1;
        } else {
            self.stats.unsampled_sync_ops += 1;
        }
    }
}

impl Detector for PacerDetector {
    fn name(&self) -> String {
        "pacer".to_string()
    }

    fn on_action(&mut self, action: &Action) {
        match *action {
            Action::Read { t, x, site } => self.on_read(t, x, site),
            Action::Write { t, x, site } => self.on_write(t, x, site),
            // Table 6 — synchronization actions, with the redefined
            // copy/increment/join of Table 7.
            Action::Acquire { t, m } => {
                self.count_sync();
                self.state
                    .join_into_thread(t, SyncRef::Lock(m), &mut self.stats);
            }
            Action::Release { t, m } => {
                self.count_sync();
                self.state.copy_to_lock(m, t, &mut self.stats);
                self.state.increment(t, &mut self.stats);
            }
            Action::Fork { t, u } => {
                self.count_sync();
                self.state
                    .join_into_thread(u, SyncRef::Thread(t), &mut self.stats);
                self.state.increment(t, &mut self.stats);
            }
            Action::Join { t, u } => {
                self.count_sync();
                self.state
                    .join_into_thread(t, SyncRef::Thread(u), &mut self.stats);
                self.state.increment(u, &mut self.stats);
            }
            Action::VolRead { t, v } => {
                self.count_sync();
                self.state
                    .join_into_thread(t, SyncRef::Volatile(v), &mut self.stats);
            }
            Action::VolWrite { t, v } => {
                self.count_sync();
                self.state.join_into_volatile(v, t, &mut self.stats);
                self.state.increment(t, &mut self.stats);
            }
            Action::SampleBegin => self.state.sample_begin(&mut self.stats),
            Action::SampleEnd => self.state.sample_end(),
        }
    }

    fn races(&self) -> &[RaceReport] {
        &self.races
    }
}

impl ObservableDetector for PacerDetector {
    fn space_breakdown(&self) -> SpaceBreakdown {
        self.state.space_breakdown()
    }

    fn pacer_stats(&self) -> Option<PacerStats> {
        Some(self.stats)
    }

    fn clock_overflow(&self) -> Option<pacer_clock::ThreadId> {
        self.state.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacer_trace::Trace;

    fn run(text: &str) -> PacerDetector {
        let trace = Trace::parse(text).unwrap();
        trace.validate().unwrap();
        let mut d = PacerDetector::new();
        for a in &trace {
            d.on_action(a);
            d.assert_invariants();
        }
        d
    }

    #[test]
    fn never_sampling_reports_nothing_and_tracks_nothing() {
        let d = run("fork t0 t1\nwr t0 x0 s1\nwr t1 x0 s2\nrd t1 x1 s3");
        assert!(d.races().is_empty());
        assert_eq!(d.tracked_vars(), 0);
        assert_eq!(d.stats().reads.non_sampling_fast, 1);
        assert_eq!(d.stats().writes.non_sampling_fast, 2);
    }

    #[test]
    fn figure_1_write_read_race_across_period_boundary() {
        let d = run("fork t0 t1\nsbegin\nwr t0 x0 s1\nsend\nrd t1 x0 s2");
        assert_eq!(d.races().len(), 1);
        let r = d.races()[0];
        assert_eq!(r.first.site, SiteId::new(1));
        assert_eq!(r.second.site, SiteId::new(2));
        assert_eq!(r.second.kind, AccessKind::Read);
    }

    #[test]
    fn sampled_read_races_with_unsampled_write() {
        let d = run("fork t0 t1\nsbegin\nrd t0 x0 s1\nsend\nwr t1 x0 s2");
        assert_eq!(d.races().len(), 1);
        assert_eq!(d.races()[0].first.kind, AccessKind::Read);
    }

    #[test]
    fn unsampled_first_access_is_missed_by_design() {
        let d = run("fork t0 t1\nwr t0 x0 s1\nsbegin\nwr t1 x0 s2\nsend");
        assert!(
            d.races().is_empty(),
            "first access was not sampled: no metadata, no report"
        );
    }

    #[test]
    fn fully_sampled_races_are_reported() {
        let d = run("fork t0 t1\nsbegin\nwr t0 x0 s1\nwr t1 x0 s2\nsend");
        assert_eq!(d.races().len(), 1);
    }

    #[test]
    fn hb_ordered_sampled_metadata_is_discarded() {
        // Figure 1's x: sampled read on t2 is ordered (via m0) before t1's
        // unsampled write; the write discards the read/write metadata, so a
        // later racing write is *not* reported against the sampled read.
        let d = run("
            fork t0 t1
            fork t0 t2
            sbegin
            acq t2 m0
            rd t2 x0 s1
            rel t2 m0
            send
            acq t1 m0
            wr t1 x0 s2
            rel t1 m0
            wr t2 x0 s3
        ");
        assert!(
            d.races().is_empty(),
            "the HB-ordered write became the last racer; metadata was discarded"
        );
        assert_eq!(d.tracked_vars(), 0, "metadata discarded after the write");
    }

    #[test]
    fn non_sampling_ordered_read_discards_epoch() {
        // Sampled read on t0, then an HB-ordered unsampled read on t1
        // discards it (Table 4 rule 2): a later racing write reports
        // nothing.
        let d = run("
            fork t0 t1
            fork t0 t2
            sbegin
            acq t0 m0
            rd t0 x0 s1
            rel t0 m0
            send
            acq t1 m0
            rd t1 x0 s2
            rel t1 m0
            wr t2 x0 s3
        ");
        assert!(d.races().is_empty());
        assert_eq!(d.tracked_vars(), 0);
    }

    #[test]
    fn non_sampling_concurrent_read_keeps_epoch() {
        // Sampled read on t0; a *concurrent* unsampled read on t1 must keep
        // the sampled epoch (Table 4 rule 4), so the later write still
        // races with it.
        let d = run("
            fork t0 t1
            fork t0 t2
            sbegin
            rd t0 x0 s1
            send
            rd t1 x0 s2
            wr t2 x0 s3
        ");
        assert_eq!(d.races().len(), 1);
        assert_eq!(d.races()[0].first.site, SiteId::new(1));
    }

    #[test]
    fn shared_read_map_discards_own_entry_only() {
        // Two sampled concurrent reads (t0, t1); t1 re-reads outside the
        // period: only t1's entry is discarded (Table 4 rule 3), so the
        // racing write still pairs with t0's read.
        let d = run("
            fork t0 t1
            fork t0 t2
            sbegin
            rd t0 x0 s1
            rd t1 x0 s2
            send
            rd t1 x0 s4
            wr t2 x0 s3
        ");
        let firsts: Vec<SiteId> = d.races().iter().map(|r| r.first.site).collect();
        assert!(firsts.contains(&SiteId::new(1)), "t0's read survived");
        assert!(
            !firsts.contains(&SiteId::new(2)),
            "t1's entry was discarded"
        );
    }

    #[test]
    fn unsampled_write_discards_everything() {
        let d = run("
            fork t0 t1
            sbegin
            wr t0 x0 s1
            send
            wr t1 x0 s2
            wr t0 x0 s3
        ");
        // wr s2 races with sampled wr s1 and discards metadata; wr s3 then
        // takes the fast path.
        assert_eq!(d.races().len(), 1);
        assert_eq!(d.tracked_vars(), 0);
        assert_eq!(d.stats().writes.non_sampling_fast, 1);
    }

    #[test]
    fn lock_discipline_is_respected_across_periods() {
        let d = run("
            fork t0 t1
            sbegin
            acq t0 m0
            wr t0 x0 s1
            rel t0 m0
            send
            acq t1 m0
            wr t1 x0 s2
            rel t1 m0
        ");
        assert!(d.races().is_empty());
    }

    #[test]
    fn timeless_periods_use_fast_joins() {
        // Repeated lock traffic outside sampling: after the first transfer,
        // every acquire is resolved by version epochs in O(1).
        let mut text = String::from("fork t0 t1\n");
        for _ in 0..50 {
            text.push_str("acq t0 m0\nrel t0 m0\nacq t1 m0\nrel t1 m0\n");
        }
        let d = run(&text);
        let stats = d.stats();
        // Slow joins: the fork, plus one per direction while the threads
        // first learn each other's versions; everything after is fast.
        assert!(
            stats.joins.non_sampling_slow <= 3,
            "steady state must be all-fast, got {} slow joins",
            stats.joins.non_sampling_slow
        );
        assert!(stats.joins.non_sampling_fast >= 97);
        assert_eq!(
            stats.copies.non_sampling_deep, 0,
            "all non-sampling copies are shallow"
        );
    }

    #[test]
    fn effective_rate_tracks_marker_placement() {
        let d = run("
            fork t0 t1
            sbegin
            wr t1 x0 s1
            send
            wr t1 x1 s2
            wr t1 x2 s3
            wr t1 x3 s4
        ");
        assert_eq!(d.stats().effective_rate(), Some(0.25));
    }

    #[test]
    fn volatiles_synchronize_across_periods() {
        let d = run("
            fork t0 t1
            sbegin
            wr t0 x0 s1
            vwr t0 v0
            send
            vrd t1 v0
            rd t1 x0 s2
        ");
        assert!(d.races().is_empty(), "volatile edge orders the accesses");
    }

    #[test]
    fn same_epoch_write_outside_sampling_keeps_metadata() {
        // t0 writes x during sampling; the period ends with no intervening
        // increment, so a second write by t0 sees the same epoch and must
        // not discard (Table 4 rule 5) — the race with t1 is still caught.
        let d = run("
            fork t0 t1
            sbegin
            wr t0 x0 s1
            send
            wr t0 x0 s1
            wr t1 x0 s2
        ");
        assert_eq!(d.races().len(), 1);
    }

    #[test]
    fn second_sampling_period_distinguishes_epochs() {
        // Two sampling periods: sbegin's global increment ensures the
        // second period's accesses get fresh epochs.
        let d = run("
            fork t0 t1
            sbegin
            wr t0 x0 s1
            send
            sbegin
            wr t1 x0 s2
            send
        ");
        assert_eq!(d.races().len(), 1);
        assert_eq!(d.stats().sample_periods, 2);
    }

    #[test]
    fn matches_fasttrack_when_always_sampling() {
        use pacer_fasttrack::FastTrackDetector;
        use pacer_trace::gen::GenConfig;

        for seed in 0..10 {
            let base = GenConfig::small(seed).with_lock_discipline(0.5).generate();
            let mut sampled = Trace::new();
            sampled.push(Action::SampleBegin);
            sampled.extend(base.iter().copied());

            let mut pacer = PacerDetector::new();
            pacer.run(&sampled);
            let mut ft = FastTrackDetector::new();
            ft.run(&base);

            let key = |races: &[RaceReport]| {
                let mut v: Vec<_> = races
                    .iter()
                    .map(|r| (r.x, r.first.site, r.second.site))
                    .collect();
                v.sort();
                v
            };
            assert_eq!(
                key(pacer.races()),
                key(ft.races()),
                "seed {seed}: PACER at 100% sampling must equal FASTTRACK"
            );
        }
    }

    #[test]
    fn precise_on_random_sampled_traces() {
        use pacer_trace::gen::{insert_sampling_periods, GenConfig};
        use pacer_trace::HbOracle;

        for seed in 0..10 {
            let base = GenConfig::small(seed).with_lock_discipline(0.4).generate();
            let trace = insert_sampling_periods(&base, 0.3, 20, seed);
            let oracle = HbOracle::analyze(&trace);
            let truth: std::collections::HashSet<_> = oracle.distinct_races().into_iter().collect();
            let mut pacer = PacerDetector::new();
            pacer.run(&trace);
            for race in pacer.races() {
                assert!(
                    truth.contains(&race.distinct_key()),
                    "seed {seed}: PACER reported a false race {race}"
                );
            }
        }
    }

    #[test]
    fn guarantee_sampled_shortest_races_are_reported() {
        use pacer_trace::gen::{insert_sampling_periods, GenConfig};
        use pacer_trace::HbOracle;

        for seed in 0..10 {
            let base = GenConfig::small(seed).with_lock_discipline(0.4).generate();
            let trace = insert_sampling_periods(&base, 0.4, 15, seed * 31 + 1);
            let oracle = HbOracle::analyze(&trace);
            let mut pacer = PacerDetector::new();
            pacer.run(&trace);
            // Compare at epoch-group granularity: accesses by one thread
            // at one PACER clock component are indistinguishable to the
            // analysis, which reports one representative pair per group
            // pair (the "Same epoch" cases of the Theorem 2 proof).
            let norm = |g1, g2| if g1 <= g2 { (g1, g2) } else { (g2, g1) };
            let reported: std::collections::HashSet<_> = pacer
                .races()
                .iter()
                .filter_map(|r| {
                    let g1 = oracle.epoch_group_of_site(r.first.site)?;
                    let g2 = oracle.epoch_group_of_site(r.second.site)?;
                    Some(norm(g1, g2))
                })
                .collect();
            for race in oracle.sampled_guaranteed_races(&trace) {
                let key = norm(
                    oracle.epoch_group(race.first),
                    oracle.epoch_group(race.second),
                );
                assert!(
                    reported.contains(&key),
                    "seed {seed}: sampled guaranteed race {race:?} ({key:?}) unreported"
                );
            }
        }
    }
}
