//! Property tests for PACER: precision, completeness, the FASTTRACK
//! equivalence at full sampling, the proportionality guarantee, and the
//! Lemma 7 / Definition 1 invariants — all over randomly generated,
//! randomly sampled traces.

// Compiled only with the non-default `proptest` feature (restore the
// `proptest` dev-dependency first; the workspace is offline by default).
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use pacer_core::{AccordionPacerDetector, PacerDetector};
use pacer_fasttrack::FastTrackDetector;
use pacer_trace::gen::{insert_sampling_periods, GenConfig};
use pacer_trace::{Action, Detector, HbOracle, RaceReport, Trace};

fn racy_trace(seed: u64, discipline: f64, rate: f64) -> Trace {
    let base = GenConfig::small(seed)
        .with_lock_discipline(discipline)
        .generate();
    insert_sampling_periods(&base, rate, 15, seed.wrapping_mul(31).wrapping_add(1))
}

fn race_keys(
    races: &[RaceReport],
) -> Vec<(pacer_trace::VarId, pacer_trace::SiteId, pacer_trace::SiteId)> {
    let mut v: Vec<_> = races
        .iter()
        .map(|r| (r.x, r.first.site, r.second.site))
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every race PACER reports is a true race of the trace (precision /
    /// "no false positives", §2.4's first requirement).
    #[test]
    fn precision_at_any_rate(
        seed in 0u64..10_000,
        discipline in 0.0f64..=1.0,
        rate in 0.0f64..=1.0,
    ) {
        let trace = racy_trace(seed, discipline, rate);
        let oracle = HbOracle::analyze(&trace);
        let truth: std::collections::HashSet<_> =
            oracle.distinct_races().into_iter().collect();
        let mut pacer = PacerDetector::new();
        pacer.run(&trace);
        for race in pacer.races() {
            prop_assert!(
                truth.contains(&race.distinct_key()),
                "false positive: {race}"
            );
        }
    }

    /// On race-free traces PACER reports nothing, at any sampling rate
    /// (completeness, Theorem 3's direction).
    #[test]
    fn silence_on_race_free_traces(seed in 0u64..10_000, rate in 0.0f64..=1.0) {
        let base = GenConfig::small(seed).race_free().generate();
        let trace = insert_sampling_periods(&base, rate, 15, seed);
        let mut pacer = PacerDetector::new();
        pacer.run(&trace);
        prop_assert!(pacer.races().is_empty());
    }

    /// With a sampling period covering the whole trace, PACER's reports are
    /// exactly FASTTRACK's ("In sampling periods, PACER simply performs the
    /// FASTTRACK algorithm", §3.3).
    #[test]
    fn full_sampling_equals_fasttrack(seed in 0u64..10_000, discipline in 0.0f64..=1.0) {
        let base = GenConfig::small(seed)
            .with_lock_discipline(discipline)
            .generate();
        let mut sampled = Trace::new();
        sampled.push(Action::SampleBegin);
        sampled.extend(base.iter().copied());

        let mut pacer = PacerDetector::new();
        pacer.run(&sampled);
        let mut ft = FastTrackDetector::new();
        ft.run(&base);
        prop_assert_eq!(race_keys(pacer.races()), race_keys(ft.races()));
    }

    /// The proportionality guarantee, deterministically: every *sampled
    /// guaranteed* race (first access in a sampling period, no intervening
    /// racy access, no earlier same-epoch sibling of the second access) is
    /// reported. Races are compared at *epoch-group* granularity — accesses
    /// by one thread at one PACER clock component are indistinguishable to
    /// the analysis, which reports one representative pair per group pair
    /// (Theorem 2's "Same epoch" cases).
    #[test]
    fn sampled_guaranteed_races_are_reported(
        seed in 0u64..10_000,
        discipline in 0.2f64..=0.8,
        rate in 0.1f64..=0.9,
    ) {
        let trace = racy_trace(seed, discipline, rate);
        let oracle = HbOracle::analyze(&trace);
        let mut pacer = PacerDetector::new();
        pacer.run(&trace);
        let norm = |g1, g2| if g1 <= g2 { (g1, g2) } else { (g2, g1) };
        let reported: std::collections::HashSet<_> = pacer
            .races()
            .iter()
            .filter_map(|r| {
                let g1 = oracle.epoch_group_of_site(r.first.site)?;
                let g2 = oracle.epoch_group_of_site(r.second.site)?;
                Some(norm(g1, g2))
            })
            .collect();
        for race in oracle.sampled_guaranteed_races(&trace) {
            let key = norm(
                oracle.epoch_group(race.first),
                oracle.epoch_group(race.second),
            );
            prop_assert!(
                reported.contains(&key),
                "unreported guaranteed race {race:?} (groups {key:?})"
            );
        }
    }

    /// Definition 1 well-formedness and the Lemma 7 version invariant hold
    /// after every transition.
    #[test]
    fn invariants_hold_after_every_action(
        seed in 0u64..2_000,
        rate in 0.0f64..=1.0,
    ) {
        let trace = racy_trace(seed, 0.5, rate);
        let mut pacer = PacerDetector::new();
        for action in &trace {
            pacer.on_action(action);
            pacer.assert_invariants();
        }
    }

    /// Accordion-clock thread-id reuse changes neither detection nor
    /// precision, while using no more clock slots than threads.
    #[test]
    fn accordion_is_equivalent_and_compact(
        seed in 0u64..5_000,
        rate in 0.1f64..=1.0,
    ) {
        let trace = racy_trace(seed, 0.5, rate);
        let mut plain = PacerDetector::new();
        plain.run(&trace);
        let mut accordion = AccordionPacerDetector::new();
        accordion.run(&trace);
        prop_assert_eq!(race_keys(plain.races()), race_keys(accordion.races()));
        prop_assert!(accordion.slots_in_use() <= trace.thread_count());
    }

    /// Disabling the version fast path is a pure performance ablation:
    /// identical reports.
    #[test]
    fn version_fast_path_does_not_affect_detection(
        seed in 0u64..5_000,
        rate in 0.0f64..=1.0,
    ) {
        let trace = racy_trace(seed, 0.5, rate);
        let mut with = PacerDetector::new();
        with.run(&trace);
        let mut without = PacerDetector::new().with_version_fast_path(false);
        without.run(&trace);
        prop_assert_eq!(race_keys(with.races()), race_keys(without.races()));
        prop_assert!(
            without.stats().joins.non_sampling_fast
                <= with.stats().joins.non_sampling_fast
        );
    }

    /// PACER's reports are a subset of FASTTRACK's on the marker-stripped
    /// trace, by racy variable: sampling can only miss races, never invent
    /// them on new variables.
    #[test]
    fn pacer_racy_vars_subset_of_fasttrack(
        seed in 0u64..5_000,
        rate in 0.0f64..=1.0,
    ) {
        let trace = racy_trace(seed, 0.4, rate);
        let mut pacer = PacerDetector::new();
        pacer.run(&trace);
        let mut ft = FastTrackDetector::new();
        ft.run(&trace); // FASTTRACK ignores the markers
        let ft_vars: std::collections::HashSet<_> =
            ft.races().iter().map(|r| r.x).collect();
        for r in pacer.races() {
            prop_assert!(ft_vars.contains(&r.x));
        }
    }
}
