//! Epochs: the scalar `c@t` clock representation.

use std::fmt;

use crate::{ClockValue, ThreadId, VectorClock};

/// An epoch `c@t`: the clock value `c` of thread `t` at some instant
/// (§2.2, §A.1).
///
/// FASTTRACK replaces the last-write vector clock (and, when reads are
/// totally ordered, the last-read vector clock) with an epoch, reducing the
/// common-case race check from `O(n)` to `O(1)`.
///
/// The minimal epoch `⊥_e = 0@t0` satisfies `⊥_e ≼ C` for every clock `C`;
/// any epoch with clock zero is minimal.
///
/// # Examples
///
/// ```
/// use pacer_clock::{Epoch, ThreadId, VectorClock};
///
/// let t1 = ThreadId::new(1);
/// let c = VectorClock::from_slice(&[0, 5]);
/// assert!(Epoch::new(5, t1).leq_clock(&c));
/// assert!(!Epoch::new(6, t1).leq_clock(&c));
/// assert!(Epoch::MIN.leq_clock(&VectorClock::new()));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Epoch {
    clock: ClockValue,
    tid: ThreadId,
}

impl Epoch {
    /// The minimal epoch `⊥_e = 0@0`.
    pub const MIN: Epoch = Epoch {
        clock: 0,
        tid: ThreadId::new(0),
    };

    /// Creates the epoch `clock@tid`.
    pub const fn new(clock: ClockValue, tid: ThreadId) -> Self {
        Epoch { clock, tid }
    }

    /// Creates thread `t`'s *current epoch* `E(t) = C_t(t)@t` from its
    /// vector clock.
    pub fn of_thread(t: ThreadId, clock_t: &VectorClock) -> Self {
        Epoch {
            clock: clock_t.get(t),
            tid: t,
        }
    }

    /// The clock component `c`.
    pub const fn clock(self) -> ClockValue {
        self.clock
    }

    /// The thread component `t`.
    pub const fn tid(self) -> ThreadId {
        self.tid
    }

    /// The constant-time order `c@t ≼ C  iff  c ≤ C(t)` (§A.1, eq. 4).
    ///
    /// In FASTTRACK this implies happens-before; in PACER it implies
    /// happens-before only for epochs recorded in sampling periods, which is
    /// all PACER ever compares (§3.2).
    pub fn leq_clock(self, clock: &VectorClock) -> bool {
        self.clock <= clock.get(self.tid)
    }

    /// Returns `true` if this is a minimal epoch (clock component zero).
    pub fn is_min(self) -> bool {
        self.clock == 0
    }
}

impl Default for Epoch {
    fn default() -> Self {
        Epoch::MIN
    }
}

impl fmt::Debug for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.clock, self.tid)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.clock, self.tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn epoch_at_clock_boundary_orders_correctly() {
        // Drive a thread's component to the u64 boundary and form its
        // epoch: ordering must stay consistent right at the edge.
        let mut c = VectorClock::new();
        c.set(t(1), ClockValue::MAX - 1);
        assert_eq!(c.try_increment(t(1)), Ok(ClockValue::MAX));
        let e = Epoch::of_thread(t(1), &c);
        assert_eq!(e.clock(), ClockValue::MAX);
        assert!(e.leq_clock(&c), "an epoch read from a clock precedes it");
        let behind = VectorClock::from_slice(&[0, ClockValue::MAX - 1]);
        assert!(!e.leq_clock(&behind), "a saturated epoch is ahead of MAX-1");
        // Further increments overflow rather than wrapping the epoch back
        // to zero (which would order it before everything).
        assert!(c.try_increment(t(1)).is_err());
        assert_eq!(Epoch::of_thread(t(1), &c).clock(), ClockValue::MAX);
    }

    #[test]
    fn min_precedes_everything() {
        assert!(Epoch::MIN.leq_clock(&VectorClock::new()));
        assert!(Epoch::new(0, t(7)).is_min());
        assert!(Epoch::new(0, t(7)).leq_clock(&VectorClock::new()));
    }

    #[test]
    fn leq_checks_only_own_component() {
        let c = VectorClock::from_slice(&[9, 2]);
        assert!(Epoch::new(2, t(1)).leq_clock(&c));
        assert!(!Epoch::new(3, t(1)).leq_clock(&c));
        // A huge value at another thread is irrelevant.
        assert!(Epoch::new(1, t(1)).leq_clock(&c));
    }

    #[test]
    fn of_thread_reads_current_component() {
        let mut c = VectorClock::new();
        c.increment(t(2));
        c.increment(t(2));
        let e = Epoch::of_thread(t(2), &c);
        assert_eq!(e, Epoch::new(2, t(2)));
        assert!(e.leq_clock(&c));
    }

    #[test]
    fn accessors() {
        let e = Epoch::new(4, t(3));
        assert_eq!(e.clock(), 4);
        assert_eq!(e.tid(), t(3));
        assert_eq!(e.to_string(), "4@t3");
        assert_eq!(format!("{e:?}"), "4@t3");
    }

    #[test]
    fn default_is_min() {
        assert_eq!(Epoch::default(), Epoch::MIN);
    }
}
