//! Epochs: the scalar `c@t` clock representation, packed into one word.

use std::fmt;

use crate::{ClockOverflow, ClockValue, ThreadId, VectorClock};

/// Bits reserved for the clock component of a packed [`Epoch`].
pub const CLOCK_BITS: u32 = 48;

/// Bits reserved for the thread-id component of a packed [`Epoch`]
/// (65 536 thread slots — two orders of magnitude beyond the paper's 403).
pub const TID_BITS: u32 = 64 - CLOCK_BITS;

/// Maximum clock value an [`Epoch`] (and therefore any [`VectorClock`]
/// component that may be narrowed into one) can carry: `2^48 − 1`.
///
/// [`VectorClock::try_increment`] reports [`ClockOverflow`] at this
/// boundary, so every clock component a detector ever reads packs without
/// loss.
pub const MAX_CLOCK: ClockValue = (1 << CLOCK_BITS) - 1;

/// An epoch `c@t`: the clock value `c` of thread `t` at some instant
/// (§2.2, §A.1), stored in **one machine word**: the thread id in the high
/// [`TID_BITS`], the clock in the low [`CLOCK_BITS`].
///
/// FASTTRACK replaces the last-write vector clock (and, when reads are
/// totally ordered, the last-read vector clock) with an epoch, reducing the
/// common-case race check from `O(n)` to `O(1)`. The real implementations
/// (§4 of the paper) keep the epoch in a single word so metadata can be read
/// and compare-and-swapped atomically; this layout reproduces that, and makes
/// epoch equality (the same-epoch "no action" gate of Algorithms 7/8) and
/// [`Ord`]ering single integer comparisons.
///
/// The minimal epoch `⊥_e = 0@t0` satisfies `⊥_e ≼ C` for every clock `C`;
/// any epoch with clock zero is minimal.
///
/// # Examples
///
/// ```
/// use pacer_clock::{Epoch, ThreadId, VectorClock};
///
/// let t1 = ThreadId::new(1);
/// let c = VectorClock::from_slice(&[0, 5]);
/// assert!(Epoch::new(5, t1).leq_clock(&c));
/// assert!(!Epoch::new(6, t1).leq_clock(&c));
/// assert!(Epoch::MIN.leq_clock(&VectorClock::new()));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Epoch(u64);

impl Epoch {
    /// The minimal epoch `⊥_e = 0@0` — the all-zero word.
    pub const MIN: Epoch = Epoch(0);

    /// Creates the epoch `clock@tid`.
    ///
    /// The clock must fit in [`CLOCK_BITS`]; out-of-range values
    /// debug-assert and saturate at [`MAX_CLOCK`] in release builds,
    /// mirroring [`VectorClock::increment`]. Use [`try_new`](Self::try_new)
    /// to observe the narrowing failure as a typed error instead.
    ///
    /// # Panics
    ///
    /// Panics if `tid` does not fit in [`TID_BITS`]; thread slots are
    /// detector-assigned dense indices, so an oversized id is a programming
    /// error, not an input condition.
    pub const fn new(clock: ClockValue, tid: ThreadId) -> Self {
        assert!(
            (tid.raw() as u64) < (1 << TID_BITS),
            "thread id out of range for packed epoch"
        );
        debug_assert!(
            clock <= MAX_CLOCK,
            "clock overflow: epoch clock exceeds 2^48 - 1"
        );
        let c = if clock > MAX_CLOCK { MAX_CLOCK } else { clock };
        Epoch(((tid.raw() as u64) << CLOCK_BITS) | c)
    }

    /// Checked construction: the narrowing of a full-width [`ClockValue`]
    /// into the packed clock field, reusing the [`ClockOverflow`] path.
    ///
    /// # Errors
    ///
    /// [`ClockOverflow`] when `clock` exceeds [`MAX_CLOCK`].
    pub const fn try_new(clock: ClockValue, tid: ThreadId) -> Result<Self, ClockOverflow> {
        if clock > MAX_CLOCK {
            return Err(ClockOverflow { thread: tid });
        }
        Ok(Epoch::new(clock, tid))
    }

    /// Creates thread `t`'s *current epoch* `E(t) = C_t(t)@t` from its
    /// vector clock.
    ///
    /// Always representable: [`VectorClock`] components saturate at
    /// [`MAX_CLOCK`], so the narrowing cannot lose information here.
    pub fn of_thread(t: ThreadId, clock_t: &VectorClock) -> Self {
        Epoch::new(clock_t.get(t), t)
    }

    /// The clock component `c`.
    pub const fn clock(self) -> ClockValue {
        self.0 & MAX_CLOCK
    }

    /// The thread component `t`.
    pub const fn tid(self) -> ThreadId {
        ThreadId::new((self.0 >> CLOCK_BITS) as u32)
    }

    /// The constant-time order `c@t ≼ C  iff  c ≤ C(t)` (§A.1, eq. 4).
    ///
    /// In FASTTRACK this implies happens-before; in PACER it implies
    /// happens-before only for epochs recorded in sampling periods, which is
    /// all PACER ever compares (§3.2).
    pub fn leq_clock(self, clock: &VectorClock) -> bool {
        self.clock() <= clock.get(self.tid())
    }

    /// Returns `true` if this is a minimal epoch (clock component zero).
    pub const fn is_min(self) -> bool {
        self.clock() == 0
    }

    /// The raw packed word (what a lock-free implementation would CAS).
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs an epoch from a raw packed word.
    pub const fn from_raw(raw: u64) -> Epoch {
        Epoch(raw)
    }
}

impl Default for Epoch {
    fn default() -> Self {
        Epoch::MIN
    }
}

impl fmt::Debug for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.clock(), self.tid())
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.clock(), self.tid())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn epoch_at_clock_boundary_orders_correctly() {
        // Drive a thread's component to the packed-clock boundary and form
        // its epoch: ordering must stay consistent right at the edge.
        let mut c = VectorClock::new();
        c.set(t(1), MAX_CLOCK - 1);
        assert_eq!(c.try_increment(t(1)), Ok(MAX_CLOCK));
        let e = Epoch::of_thread(t(1), &c);
        assert_eq!(e.clock(), MAX_CLOCK);
        assert!(e.leq_clock(&c), "an epoch read from a clock precedes it");
        let behind = VectorClock::from_slice(&[0, MAX_CLOCK - 1]);
        assert!(!e.leq_clock(&behind), "a saturated epoch is ahead of MAX-1");
        // Further increments overflow rather than wrapping the epoch back
        // to zero (which would order it before everything).
        assert!(c.try_increment(t(1)).is_err());
        assert_eq!(Epoch::of_thread(t(1), &c).clock(), MAX_CLOCK);
    }

    #[test]
    fn try_new_reports_overflow_past_packed_boundary() {
        assert_eq!(
            Epoch::try_new(MAX_CLOCK, t(3)),
            Ok(Epoch::new(MAX_CLOCK, t(3)))
        );
        assert_eq!(
            Epoch::try_new(MAX_CLOCK + 1, t(3)),
            Err(ClockOverflow { thread: t(3) })
        );
        assert_eq!(
            Epoch::try_new(ClockValue::MAX, t(0)),
            Err(ClockOverflow { thread: t(0) })
        );
    }

    #[test]
    fn packs_into_one_word() {
        assert_eq!(std::mem::size_of::<Epoch>(), 8);
        let e = Epoch::new(12345, t(402));
        assert_eq!(Epoch::from_raw(e.raw()), e);
        assert_eq!(e.raw(), (402u64 << CLOCK_BITS) | 12345);
        assert_eq!(Epoch::MIN.raw(), 0);
    }

    #[test]
    fn round_trips_at_field_extremes() {
        for (c, tid) in [
            (0u64, 0u32),
            (1, 0),
            (0, 1),
            (12345, 402),
            (MAX_CLOCK, 99),
            (7, (1 << TID_BITS) - 1),
        ] {
            let e = Epoch::new(c, t(tid));
            assert_eq!(e.clock(), c, "{e}");
            assert_eq!(e.tid(), t(tid), "{e}");
        }
    }

    #[test]
    #[should_panic(expected = "thread id out of range")]
    fn oversized_tid_panics() {
        let _ = Epoch::new(0, t(1 << TID_BITS));
    }

    #[test]
    fn min_precedes_everything() {
        assert!(Epoch::MIN.leq_clock(&VectorClock::new()));
        assert!(Epoch::new(0, t(7)).is_min());
        assert!(Epoch::new(0, t(7)).leq_clock(&VectorClock::new()));
    }

    #[test]
    fn leq_checks_only_own_component() {
        let c = VectorClock::from_slice(&[9, 2]);
        assert!(Epoch::new(2, t(1)).leq_clock(&c));
        assert!(!Epoch::new(3, t(1)).leq_clock(&c));
        // A huge value at another thread is irrelevant.
        assert!(Epoch::new(1, t(1)).leq_clock(&c));
    }

    #[test]
    fn of_thread_reads_current_component() {
        let mut c = VectorClock::new();
        c.increment(t(2));
        c.increment(t(2));
        let e = Epoch::of_thread(t(2), &c);
        assert_eq!(e, Epoch::new(2, t(2)));
        assert!(e.leq_clock(&c));
    }

    #[test]
    fn accessors() {
        let e = Epoch::new(4, t(3));
        assert_eq!(e.clock(), 4);
        assert_eq!(e.tid(), t(3));
        assert_eq!(e.to_string(), "4@t3");
        assert_eq!(format!("{e:?}"), "4@t3");
    }

    #[test]
    fn default_is_min() {
        assert_eq!(Epoch::default(), Epoch::MIN);
    }
}
