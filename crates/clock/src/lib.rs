//! Logical-time primitives for happens-before race detection.
//!
//! This crate provides the data structures that the GENERIC, FASTTRACK, and
//! PACER detectors (Bond, Coons, McKinley, PLDI 2010) are built from:
//!
//! * [`VectorClock`] — a map from thread identifier to clock value with the
//!   pointwise partial order `⊑` and least-upper-bound join `⊔` (§2.1, §A.1
//!   of the paper).
//! * [`Epoch`] — the scalar `c@t` representation FASTTRACK uses for totally
//!   ordered accesses, packed into a single `u64` (tid in the high bits,
//!   clock in the low [`CLOCK_BITS`]) with the constant-time order `≼`
//!   against vector clocks (§2.2).
//! * [`ReadMap`] — FASTTRACK's adaptive representation for last-reader
//!   metadata: an epoch while reads are totally ordered, inflated to a
//!   sparse map for concurrent reads.
//! * [`VersionVector`] and [`VersionEpoch`] — PACER's machinery for
//!   detecting *redundant* synchronization during non-sampling periods
//!   (§3.2, §A.2).
//! * [`CowClock`] — a reference-counted, copy-on-write vector clock
//!   implementing PACER's `isShared`/`setShared`/`clone` sharing protocol
//!   (Algorithms 9–11) with explicit deep/shallow accounting hooks.
//! * [`ClockArena`] — a slab allocator that recycles clock storage so the
//!   deep-copy/clone-on-write churn of a full-rate trial stops paying the
//!   allocator; each detector trial owns one arena.
//!
//! # Examples
//!
//! ```
//! use pacer_clock::{Epoch, ThreadId, VectorClock};
//!
//! let t0 = ThreadId::new(0);
//! let t1 = ThreadId::new(1);
//!
//! let mut a = VectorClock::new();
//! a.increment(t0); // a = [1, 0]
//! let mut b = VectorClock::new();
//! b.increment(t1); // b = [0, 1]
//!
//! assert!(!a.leq(&b), "concurrent clocks are unordered");
//! b.join(&a);
//! assert!(a.leq(&b), "after joining, a ⊑ b");
//!
//! let e = Epoch::new(1, t0);
//! assert!(e.leq_clock(&b), "the epoch 1@t0 happens before b");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod cow;
mod epoch;
mod read_map;
mod thread_id;
mod vector;
mod version;

pub use arena::ClockArena;
pub use cow::CowClock;
pub use epoch::{Epoch, CLOCK_BITS, MAX_CLOCK, TID_BITS};
pub use read_map::{ReadEntry, ReadMap};
pub use thread_id::ThreadId;
pub use vector::VectorClock;
pub use version::{VersionEpoch, VersionVector};

/// The integer type used for clock values and version numbers.
///
/// Clock values only increase, one step per release/fork/join/volatile-write
/// in a sampling period. The API keeps the full 64-bit width, but values a
/// detector can produce are bounded by [`MAX_CLOCK`] (`2^48 − 1`) so every
/// component narrows losslessly into a packed [`Epoch`]. That is far more
/// than any realistic execution consumes, and increments are still
/// *checked*: hitting the boundary is a [`ClockOverflow`] from
/// [`VectorClock::try_increment`], a debug assertion (and saturation in
/// release) from [`VectorClock::increment`] — never a silent wrap that
/// would corrupt the happens-before order.
pub type ClockValue = u64;

/// A thread's logical clock reached [`MAX_CLOCK`] and cannot advance.
///
/// Wrapping back to zero would reorder every previously recorded access
/// after the current one — silently unsound — so the overflow is surfaced
/// as a typed error instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClockOverflow {
    /// The thread whose component saturated.
    pub thread: ThreadId,
}

impl std::fmt::Display for ClockOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "clock overflow: thread {} reached the maximum clock value",
            self.thread
        )
    }
}

impl std::error::Error for ClockOverflow {}
