//! Read maps: FASTTRACK's adaptive last-reader metadata.

use std::fmt;

use crate::{ClockValue, Epoch, ThreadId, VectorClock};

/// One entry of a [`ReadMap`]: thread `tid` last read the variable at clock
/// value `clock`, at program location `site`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadEntry {
    /// Reading thread.
    pub tid: ThreadId,
    /// The reader's clock component at the time of the read.
    pub clock: ClockValue,
    /// Opaque program-location payload (a site identifier in the detectors),
    /// carried so race reports can name the *first* access (§4 "Reporting
    /// Races").
    pub site: u32,
}

/// A read map `R : t → c` (§2.2).
///
/// While reads of a variable are totally ordered, the map holds a single
/// [`Epoch`] and all operations are `O(1)`. When concurrent reads occur it
/// inflates to a sparse per-thread map. A map with zero entries is
/// equivalent to the initial-state epoch `0@0`.
///
/// Representation invariant: the `Map` variant always holds at least two
/// entries sorted by thread id with nonzero clocks; zero- and one-entry maps
/// use the `Epoch` variant ("a read map with one entry is an epoch, and we
/// use them interchangeably").
///
/// # Examples
///
/// ```
/// use pacer_clock::{ReadMap, ThreadId, VectorClock};
///
/// let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
/// let mut r = ReadMap::empty();
/// assert_eq!(r.len(), 0);
/// r.insert(t0, 3, 101);
/// assert_eq!(r.len(), 1);
/// r.insert(t1, 2, 102); // concurrent second reader: inflates
/// assert_eq!(r.len(), 2);
///
/// let c = VectorClock::from_slice(&[3, 2]);
/// assert!(r.leq_clock(&c), "both reads happen before c");
/// ```
#[derive(Clone, PartialEq, Eq)]
pub enum ReadMap {
    /// Zero or one totally ordered readers (`0@0` when minimal).
    Epoch {
        /// Last-read epoch; minimal epoch means "no reads recorded".
        epoch: Epoch,
        /// Site payload for the last read (meaningless when minimal).
        site: u32,
    },
    /// Two or more concurrent readers, sorted by thread id.
    Map(Vec<ReadEntry>),
}

impl ReadMap {
    /// Creates the empty read map (equivalent to epoch `0@0`).
    pub const fn empty() -> Self {
        ReadMap::Epoch {
            epoch: Epoch::MIN,
            site: 0,
        }
    }

    /// Creates a single-entry read map.
    pub const fn epoch(epoch: Epoch, site: u32) -> Self {
        ReadMap::Epoch { epoch, site }
    }

    /// Number of entries `|R|`.
    pub fn len(&self) -> usize {
        match self {
            ReadMap::Epoch { epoch, .. } => usize::from(!epoch.is_min()),
            ReadMap::Map(entries) => entries.len(),
        }
    }

    /// Returns `true` if the map records no reads.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the single epoch if `|R| ≤ 1`.
    pub fn as_epoch(&self) -> Option<Epoch> {
        match self {
            ReadMap::Epoch { epoch, .. } => Some(*epoch),
            ReadMap::Map(_) => None,
        }
    }

    /// Looks up thread `t`'s entry.
    pub fn get(&self, t: ThreadId) -> Option<ReadEntry> {
        match self {
            ReadMap::Epoch { epoch, site } => {
                (!epoch.is_min() && epoch.tid() == t).then(|| ReadEntry {
                    tid: t,
                    clock: epoch.clock(),
                    site: *site,
                })
            }
            ReadMap::Map(entries) => entries
                .binary_search_by_key(&t, |e| e.tid)
                .ok()
                .map(|i| entries[i]),
        }
    }

    /// Tests `R ⊑ C`: every recorded read happens before `C`.
    ///
    /// Takes `O(|R|)` time — constant while the map is an epoch.
    pub fn leq_clock(&self, c: &VectorClock) -> bool {
        match self {
            ReadMap::Epoch { epoch, .. } => epoch.leq_clock(c),
            ReadMap::Map(entries) => entries.iter().all(|e| e.clock <= c.get(e.tid)),
        }
    }

    /// Returns the entries that do **not** happen before `C` — the reads
    /// that race with a write at clock `C`.
    pub fn entries_racing_with(&self, c: &VectorClock) -> Vec<ReadEntry> {
        match self {
            ReadMap::Epoch { epoch, site } => {
                if !epoch.is_min() && !epoch.leq_clock(c) {
                    vec![ReadEntry {
                        tid: epoch.tid(),
                        clock: epoch.clock(),
                        site: *site,
                    }]
                } else {
                    Vec::new()
                }
            }
            ReadMap::Map(entries) => entries
                .iter()
                .copied()
                .filter(|e| e.clock > c.get(e.tid))
                .collect(),
        }
    }

    /// Replaces the whole map with a single epoch (`R ← epoch(t)`).
    pub fn set_epoch(&mut self, epoch: Epoch, site: u32) {
        *self = ReadMap::Epoch { epoch, site };
    }

    /// Updates thread `t`'s entry (`R[t] ← c`), inflating the representation
    /// if a second concurrent reader appears.
    ///
    /// # Panics
    ///
    /// Panics if `clock` is zero: zero entries are represented by absence.
    pub fn insert(&mut self, t: ThreadId, clock: ClockValue, site: u32) {
        assert!(clock > 0, "read-map entries must have nonzero clocks");
        match self {
            ReadMap::Epoch { epoch, site: s } => {
                if epoch.is_min() || epoch.tid() == t {
                    *epoch = Epoch::new(clock, t);
                    *s = site;
                } else {
                    let mut entries = vec![
                        ReadEntry {
                            tid: epoch.tid(),
                            clock: epoch.clock(),
                            site: *s,
                        },
                        ReadEntry {
                            tid: t,
                            clock,
                            site,
                        },
                    ];
                    entries.sort_by_key(|e| e.tid);
                    *self = ReadMap::Map(entries);
                }
            }
            ReadMap::Map(entries) => match entries.binary_search_by_key(&t, |e| e.tid) {
                Ok(i) => {
                    entries[i].clock = clock;
                    entries[i].site = site;
                }
                Err(i) => entries.insert(
                    i,
                    ReadEntry {
                        tid: t,
                        clock,
                        site,
                    },
                ),
            },
        }
    }

    /// Removes thread `t`'s entry (`R[t] ← null`, PACER's non-sampling read
    /// discard, Algorithm 12). Collapses back to an epoch when one entry
    /// remains. Returns `true` if an entry was removed.
    pub fn remove(&mut self, t: ThreadId) -> bool {
        match self {
            ReadMap::Epoch { epoch, .. } => {
                if !epoch.is_min() && epoch.tid() == t {
                    *self = ReadMap::empty();
                    true
                } else {
                    false
                }
            }
            ReadMap::Map(entries) => {
                let Ok(i) = entries.binary_search_by_key(&t, |e| e.tid) else {
                    return false;
                };
                entries.remove(i);
                if entries.len() == 1 {
                    let e = entries[0];
                    *self = ReadMap::Epoch {
                        epoch: Epoch::new(e.clock, e.tid),
                        site: e.site,
                    };
                }
                true
            }
        }
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> Box<dyn Iterator<Item = ReadEntry> + '_> {
        match self {
            ReadMap::Epoch { epoch, site } => {
                if epoch.is_min() {
                    Box::new(std::iter::empty())
                } else {
                    Box::new(std::iter::once(ReadEntry {
                        tid: epoch.tid(),
                        clock: epoch.clock(),
                        site: *site,
                    }))
                }
            }
            ReadMap::Map(entries) => Box::new(entries.iter().copied()),
        }
    }

    /// Approximate heap footprint in machine words, for space accounting:
    /// epochs are inline (zero words); maps cost two words per entry.
    pub fn footprint_words(&self) -> usize {
        match self {
            ReadMap::Epoch { .. } => 0,
            ReadMap::Map(entries) => 2 * entries.len(),
        }
    }
}

impl Default for ReadMap {
    fn default() -> Self {
        ReadMap::empty()
    }
}

impl fmt::Debug for ReadMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadMap::Epoch { epoch, .. } => write!(f, "R[{epoch:?}]"),
            ReadMap::Map(entries) => {
                write!(f, "R[")?;
                for (i, e) in entries.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}@{}", e.clock, e.tid)?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn empty_map_is_minimal_epoch() {
        let r = ReadMap::empty();
        assert!(r.is_empty());
        assert_eq!(r.as_epoch(), Some(Epoch::MIN));
        assert!(r.leq_clock(&VectorClock::new()));
        assert_eq!(r.iter().count(), 0);
    }

    #[test]
    fn single_insert_stays_epoch() {
        let mut r = ReadMap::empty();
        r.insert(t(1), 4, 9);
        assert_eq!(r.len(), 1);
        assert_eq!(r.as_epoch(), Some(Epoch::new(4, t(1))));
        assert_eq!(r.get(t(1)).unwrap().site, 9);
        assert!(r.get(t(0)).is_none());
    }

    #[test]
    fn same_thread_update_stays_epoch() {
        let mut r = ReadMap::empty();
        r.insert(t(1), 4, 9);
        r.insert(t(1), 6, 10);
        assert_eq!(r.len(), 1);
        assert_eq!(r.as_epoch(), Some(Epoch::new(6, t(1))));
    }

    #[test]
    fn second_thread_inflates() {
        let mut r = ReadMap::empty();
        r.insert(t(2), 4, 9);
        r.insert(t(0), 1, 3);
        assert_eq!(r.len(), 2);
        assert!(r.as_epoch().is_none());
        // Sorted by tid.
        let entries: Vec<_> = r.iter().map(|e| e.tid).collect();
        assert_eq!(entries, vec![t(0), t(2)]);
    }

    #[test]
    fn leq_clock_checks_all_entries() {
        let mut r = ReadMap::empty();
        r.insert(t(0), 2, 0);
        r.insert(t(1), 3, 0);
        assert!(r.leq_clock(&VectorClock::from_slice(&[2, 3])));
        assert!(!r.leq_clock(&VectorClock::from_slice(&[2, 2])));
    }

    #[test]
    fn racing_entries_are_reported() {
        let mut r = ReadMap::empty();
        r.insert(t(0), 2, 100);
        r.insert(t(1), 3, 200);
        let racy = r.entries_racing_with(&VectorClock::from_slice(&[5, 1]));
        assert_eq!(racy.len(), 1);
        assert_eq!(racy[0].tid, t(1));
        assert_eq!(racy[0].site, 200);
    }

    #[test]
    fn racing_entries_epoch_case() {
        let r = ReadMap::epoch(Epoch::new(5, t(1)), 77);
        assert_eq!(
            r.entries_racing_with(&VectorClock::from_slice(&[9, 4]))
                .len(),
            1
        );
        assert!(r
            .entries_racing_with(&VectorClock::from_slice(&[0, 5]))
            .is_empty());
        assert!(ReadMap::empty()
            .entries_racing_with(&VectorClock::new())
            .is_empty());
    }

    #[test]
    fn remove_collapses_back_to_epoch() {
        let mut r = ReadMap::empty();
        r.insert(t(0), 2, 10);
        r.insert(t(1), 3, 20);
        r.insert(t(2), 4, 30);
        assert!(r.remove(t(1)));
        assert_eq!(r.len(), 2);
        assert!(r.remove(t(0)));
        assert_eq!(r.as_epoch(), Some(Epoch::new(4, t(2))));
        assert_eq!(r.get(t(2)).unwrap().site, 30);
        assert!(r.remove(t(2)));
        assert!(r.is_empty());
        assert!(!r.remove(t(2)), "second removal is a no-op");
    }

    #[test]
    fn remove_missing_from_map_is_noop() {
        let mut r = ReadMap::empty();
        r.insert(t(0), 2, 10);
        r.insert(t(1), 3, 20);
        assert!(!r.remove(t(9)));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn set_epoch_replaces_everything() {
        let mut r = ReadMap::empty();
        r.insert(t(0), 2, 10);
        r.insert(t(1), 3, 20);
        r.set_epoch(Epoch::new(7, t(5)), 42);
        assert_eq!(r.len(), 1);
        assert_eq!(r.as_epoch(), Some(Epoch::new(7, t(5))));
    }

    #[test]
    fn footprint_is_zero_for_epochs() {
        let mut r = ReadMap::empty();
        assert_eq!(r.footprint_words(), 0);
        r.insert(t(0), 1, 0);
        assert_eq!(r.footprint_words(), 0);
        r.insert(t(1), 1, 0);
        assert_eq!(r.footprint_words(), 4);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_clock_insert_panics() {
        ReadMap::empty().insert(t(0), 0, 0);
    }

    #[test]
    fn debug_formats() {
        let mut r = ReadMap::empty();
        r.insert(t(0), 1, 0);
        assert_eq!(format!("{r:?}"), "R[1@t0]");
        r.insert(t(1), 2, 0);
        assert_eq!(format!("{r:?}"), "R[1@t0, 2@t1]");
    }
}
