//! Per-trial arenas that recycle vector-clock storage.

use std::fmt;
use std::rc::Rc;

use pacer_collections::{PoolStats, SlabPool};

use crate::{CowClock, VectorClock};

impl pacer_collections::PoolItem for VectorClock {
    fn reset(&mut self) {
        self.reset_storage();
    }
}

/// A slab arena for [`VectorClock`] storage, shared by a detector trial's
/// clock-heavy operations.
///
/// PACER's full-rate path deep-copies a thread clock at every lock release
/// inside a sampling period and clones shared storage at every
/// copy-on-write (Algorithms 9–11). Without an arena each of those is a
/// heap allocation plus, a few events later, a free. The arena parks
/// retired clock buffers — `Rc` box and `Vec` capacity intact — and hands
/// them back to the next copy, so steady-state allocator traffic on the
/// hot path is zero and per-trial teardown is one arena drop (or
/// [`reset`](ClockArena::reset)).
///
/// Recycling is explicit: copies drawn via
/// [`CowClock::deep_copy_in`]/[`CowClock::make_mut_in`] come from the
/// arena, and the detector parks displaced storage with
/// [`reclaim`](ClockArena::reclaim) where it overwrites a clock (shared
/// storage is left alive for its other owners). Keeping recycling out of
/// `CowClock` itself keeps shallow copies — the only clock operation
/// non-sampling periods pay — a bare refcount bump.
///
/// Handles are cheap `Rc` clones; each detector owns one so a trial's
/// clocks all recycle through the same pool. An arena is plumbing, not
/// analysis state: two detectors differing only in arena wiring produce
/// byte-identical results.
///
/// # Examples
///
/// ```
/// use pacer_clock::{ClockArena, CowClock, ThreadId, VectorClock};
///
/// let arena = ClockArena::new();
/// let a = CowClock::new(VectorClock::from_slice(&[1, 2]));
/// let b = a.deep_copy_in(Some(&arena));
/// arena.reclaim(b); // storage parks in the arena...
/// let c = a.deep_copy_in(Some(&arena)); // ...and is reused here
/// assert_eq!(c.clock().get(ThreadId::new(1)), 2);
/// assert!(arena.stats().reused >= 1);
/// ```
#[derive(Clone, Default)]
pub struct ClockArena {
    pool: SlabPool<VectorClock>,
}

impl ClockArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        ClockArena {
            pool: SlabPool::new(),
        }
    }

    /// Allocates clock storage initialized to a copy of `src` — recycled
    /// storage if available (reusing its `Vec` capacity), fresh otherwise.
    /// The result is uniquely owned.
    pub(crate) fn alloc_copy(&self, src: &VectorClock) -> Rc<VectorClock> {
        self.pool.alloc_with(|c| c.clone_from(src))
    }

    /// Parks a retired clock handle's storage for reuse if this was its
    /// sole owner; shared storage is simply released (its other owners
    /// keep it alive).
    pub fn reclaim(&self, clock: CowClock) {
        self.pool.recycle(clock.into_rc());
    }

    /// Whether `other` is a handle to this same arena.
    pub fn ptr_eq(&self, other: &ClockArena) -> bool {
        self.pool.ptr_eq(&other.pool)
    }

    /// Releases all parked storage back to the allocator (per-trial
    /// teardown). Counters survive, describing lifetime traffic.
    pub fn reset(&self) {
        self.pool.reset();
    }

    /// Recycling counters: fresh vs. reused allocations and the current
    /// free-list length.
    pub fn stats(&self) -> PoolStats {
        self.pool.stats()
    }
}

impl fmt::Debug for ClockArena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ClockArena({:?})", self.pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadId;

    #[test]
    fn alloc_copy_copies_and_reuses_storage() {
        let arena = ClockArena::new();
        let src = VectorClock::from_slice(&[3, 1]);
        let a = arena.alloc_copy(&src);
        assert_eq!(*a, src);
        let ptr = Rc::as_ptr(&a);
        arena.reclaim(CowClock::from_rc(a));
        let b = arena.alloc_copy(&VectorClock::from_slice(&[9]));
        assert_eq!(Rc::as_ptr(&b), ptr, "storage recycled");
        assert_eq!(b.get(ThreadId::new(0)), 9);
        assert_eq!(b.get(ThreadId::new(1)), 0, "old contents fully cleared");
    }

    #[test]
    fn handles_share_one_pool() {
        let arena = ClockArena::new();
        let other = arena.clone();
        assert!(arena.ptr_eq(&other));
        other.reclaim(CowClock::from_rc(arena.alloc_copy(&VectorClock::new())));
        assert_eq!(arena.stats().free, 1);
        arena.reset();
        assert_eq!(arena.stats().free, 0);
    }
}
