//! Vector clocks with the pointwise partial order and join.

use std::fmt;

use crate::{ClockOverflow, ClockValue, ThreadId, MAX_CLOCK};

/// A vector clock `C : Tid → Nat` (§A.1).
///
/// The clock is stored densely, indexed by [`ThreadId::index`]. Entries past
/// the end of the storage are implicitly zero, so clocks for programs with
/// thousands of threads only pay for the threads they have actually
/// communicated with.
///
/// Storage is kept *canonical* — no trailing zero slots — so the derived
/// `PartialEq`/`Eq` compare logical values: `set(t, 0)` on the last slot and
/// [`from_slice`](Self::from_slice) with trailing zeros truncate rather than
/// leaving observationally-equal clocks that compare unequal.
///
/// Components are bounded by [`MAX_CLOCK`] (`2^48 − 1`), the widest value
/// that still narrows losslessly into a packed [`Epoch`](crate::Epoch);
/// [`try_increment`](Self::try_increment) surfaces the boundary as a
/// [`ClockOverflow`] and [`set`](Self::set) saturates.
///
/// Following the paper, three operations are defined: `copy` (plain
/// [`Clone`]), [`increment`](Self::increment), and the least-upper-bound
/// [`join`](Self::join) `⊔`. The pointwise order `⊑` is
/// [`leq`](Self::leq).
///
/// # Examples
///
/// ```
/// use pacer_clock::{ThreadId, VectorClock};
///
/// let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
/// let mut c = VectorClock::new();
/// c.increment(t0);
/// c.increment(t0);
/// c.increment(t1);
/// assert_eq!(c.get(t0), 2);
/// assert_eq!(c.get(t1), 1);
/// assert_eq!(c.get(ThreadId::new(9)), 0, "absent entries are zero");
/// ```
#[derive(PartialEq, Eq, Default)]
pub struct VectorClock {
    slots: Vec<ClockValue>,
}

impl Clone for VectorClock {
    fn clone(&self) -> Self {
        VectorClock {
            slots: self.slots.clone(),
        }
    }

    /// Reuses the destination's storage — the arena's recycling path runs
    /// through here, so a deep copy into a parked buffer is a `memcpy`, not
    /// an allocation.
    fn clone_from(&mut self, source: &Self) {
        self.slots.clone_from(&source.slots);
    }
}

impl VectorClock {
    /// Creates the minimal clock `⊥_c` that maps every thread to zero.
    pub fn new() -> Self {
        VectorClock { slots: Vec::new() }
    }

    /// Creates a clock with capacity reserved for `threads` threads.
    pub fn with_capacity(threads: usize) -> Self {
        VectorClock {
            slots: Vec::with_capacity(threads),
        }
    }

    /// Creates a clock from explicit per-thread values.
    ///
    /// # Examples
    ///
    /// ```
    /// use pacer_clock::{ThreadId, VectorClock};
    ///
    /// let c = VectorClock::from_slice(&[3, 0, 1]);
    /// assert_eq!(c.get(ThreadId::new(0)), 3);
    /// assert_eq!(c.get(ThreadId::new(2)), 1);
    /// ```
    pub fn from_slice(values: &[ClockValue]) -> Self {
        let mut vc = VectorClock {
            slots: values.iter().map(|&v| v.min(MAX_CLOCK)).collect(),
        };
        vc.canonicalize();
        vc
    }

    /// Drops trailing zero slots so storage is canonical and the derived
    /// equality compares logical values.
    fn canonicalize(&mut self) {
        while self.slots.last() == Some(&0) {
            self.slots.pop();
        }
    }

    /// Empties the clock while keeping its backing capacity (arena
    /// recycling support).
    pub(crate) fn reset_storage(&mut self) {
        self.slots.clear();
    }

    /// Returns the clock value for thread `t` (zero if never set).
    pub fn get(&self, t: ThreadId) -> ClockValue {
        self.slots.get(t.index()).copied().unwrap_or(0)
    }

    /// Sets the clock value for thread `t`, growing storage as needed.
    /// Values above [`MAX_CLOCK`] saturate (see the type docs). Setting a
    /// trailing component to zero shrinks storage back to canonical form.
    pub fn set(&mut self, t: ThreadId, value: ClockValue) {
        let i = t.index();
        if i >= self.slots.len() {
            if value == 0 {
                return; // implicit zero; avoid growing
            }
            self.slots.resize(i + 1, 0);
        }
        self.slots[i] = value.min(MAX_CLOCK);
        if value == 0 && i + 1 == self.slots.len() {
            self.canonicalize();
        }
    }

    /// Increments thread `t`'s component: `inc_t(C)` (§A.1, eq. 2).
    ///
    /// This is the mechanism by which logical time passes. At the
    /// [`MAX_CLOCK`] boundary it debug-asserts (wrapping would silently
    /// reorder history) and saturates in release builds; use
    /// [`try_increment`](Self::try_increment) to observe the overflow as
    /// a typed error instead.
    pub fn increment(&mut self, t: ThreadId) {
        if let Err(overflow) = self.try_increment(t) {
            debug_assert!(false, "{overflow}");
            // Release builds saturate: time stops advancing for this
            // thread, which is conservative (may miss races) but never
            // unsound (never reorders recorded history).
        }
    }

    /// Increments thread `t`'s component, reporting [`ClockOverflow`]
    /// instead of advancing when the component is at [`MAX_CLOCK`] (the
    /// packed-epoch boundary — advancing past it could not be narrowed
    /// into an [`Epoch`](crate::Epoch) without loss).
    ///
    /// On success returns the new component value. On overflow the clock
    /// is left unchanged (saturated at the maximum).
    ///
    /// # Errors
    ///
    /// [`ClockOverflow`] when thread `t`'s component is already at the
    /// maximum representable clock value.
    pub fn try_increment(&mut self, t: ThreadId) -> Result<ClockValue, ClockOverflow> {
        let i = t.index();
        if i >= self.slots.len() {
            self.slots.resize(i + 1, 0);
        }
        if self.slots[i] >= MAX_CLOCK {
            return Err(ClockOverflow { thread: t });
        }
        self.slots[i] += 1;
        Ok(self.slots[i])
    }

    /// Joins `other` into `self`: `C ← C ⊔ other`, the pointwise maximum
    /// (§A.1, eq. 3). Takes `O(n)` time in the number of threads.
    pub fn join(&mut self, other: &VectorClock) {
        if other.slots.len() > self.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (mine, theirs) in self.slots.iter_mut().zip(other.slots.iter()) {
            if *theirs > *mine {
                *mine = *theirs;
            }
        }
    }

    /// Tests the pointwise order `self ⊑ other` (§A.1): every component of
    /// `self` is less than or equal to the corresponding component of
    /// `other`. Takes `O(n)` time.
    pub fn leq(&self, other: &VectorClock) -> bool {
        for (i, &mine) in self.slots.iter().enumerate() {
            if mine > other.slots.get(i).copied().unwrap_or(0) {
                return false;
            }
        }
        true
    }

    /// Returns `true` if this is the minimal clock `⊥_c` (all zeros).
    pub fn is_bottom(&self) -> bool {
        self.slots.iter().all(|&v| v == 0)
    }

    /// Number of storage slots currently materialized.
    ///
    /// This is what PACER's space accounting charges for a deep copy: one
    /// word per materialized slot.
    pub fn width(&self) -> usize {
        self.slots.len()
    }

    /// Iterates over `(thread, value)` pairs with nonzero values.
    pub fn iter(&self) -> impl Iterator<Item = (ThreadId, ClockValue)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0)
            .map(|(i, &v)| (ThreadId::new(i as u32), v))
    }

    /// Truncates the clock of a retired thread slot to zero (accordion-clock
    /// support: the slot may later be reassigned to a fresh thread). Clearing
    /// the last slot shrinks storage back to canonical form.
    pub fn clear_slot(&mut self, t: ThreadId) {
        if let Some(v) = self.slots.get_mut(t.index()) {
            *v = 0;
            self.canonicalize();
        }
    }
}

impl fmt::Debug for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VC{:?}", self.slots)
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.slots.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

impl FromIterator<(ThreadId, ClockValue)> for VectorClock {
    fn from_iter<I: IntoIterator<Item = (ThreadId, ClockValue)>>(iter: I) -> Self {
        let mut vc = VectorClock::new();
        for (t, v) in iter {
            vc.set(t, v);
        }
        vc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn new_is_bottom() {
        let c = VectorClock::new();
        assert!(c.is_bottom());
        assert_eq!(c.get(t(5)), 0);
    }

    #[test]
    fn increment_and_get() {
        let mut c = VectorClock::new();
        c.increment(t(2));
        c.increment(t(2));
        assert_eq!(c.get(t(2)), 2);
        assert_eq!(c.get(t(0)), 0);
        assert_eq!(c.width(), 3);
    }

    #[test]
    fn set_zero_does_not_grow() {
        let mut c = VectorClock::new();
        c.set(t(100), 0);
        assert_eq!(c.width(), 0);
    }

    #[test]
    fn join_takes_pointwise_max() {
        let mut a = VectorClock::from_slice(&[3, 0, 5]);
        let b = VectorClock::from_slice(&[1, 4]);
        a.join(&b);
        assert_eq!(a, VectorClock::from_slice(&[3, 4, 5]));
    }

    #[test]
    fn join_grows_to_longer_operand() {
        let mut a = VectorClock::from_slice(&[1]);
        let b = VectorClock::from_slice(&[0, 0, 7]);
        a.join(&b);
        assert_eq!(a.get(t(2)), 7);
    }

    #[test]
    fn leq_is_pointwise() {
        let a = VectorClock::from_slice(&[1, 2]);
        let b = VectorClock::from_slice(&[1, 3, 0]);
        let c = VectorClock::from_slice(&[2, 1]);
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
        assert!(!a.leq(&c) && !c.leq(&a), "a and c are concurrent");
    }

    #[test]
    fn leq_with_implicit_zeros() {
        let a = VectorClock::from_slice(&[0, 0, 1]);
        let b = VectorClock::from_slice(&[5]);
        assert!(!a.leq(&b));
        assert!(VectorClock::new().leq(&a), "⊥ ⊑ everything");
    }

    #[test]
    fn bottom_leq_everything_and_join_identity() {
        let a = VectorClock::from_slice(&[2, 9]);
        let mut b = a.clone();
        b.join(&VectorClock::new());
        assert_eq!(a, b);
    }

    #[test]
    fn iter_skips_zeros() {
        let c = VectorClock::from_slice(&[0, 3, 0, 1]);
        let pairs: Vec<_> = c.iter().collect();
        assert_eq!(pairs, vec![(t(1), 3), (t(3), 1)]);
    }

    #[test]
    fn collect_from_pairs() {
        let c: VectorClock = vec![(t(1), 4), (t(0), 2)].into_iter().collect();
        assert_eq!(c, VectorClock::from_slice(&[2, 4]));
    }

    #[test]
    fn clear_slot_zeroes_entry() {
        let mut c = VectorClock::from_slice(&[1, 2, 3]);
        c.clear_slot(t(1));
        assert_eq!(c.get(t(1)), 0);
        c.clear_slot(t(9)); // out of range: no-op
    }

    #[test]
    fn try_increment_reports_overflow_without_mutating() {
        let mut c = VectorClock::from_slice(&[MAX_CLOCK, 7]);
        assert_eq!(
            c.try_increment(t(0)),
            Err(ClockOverflow { thread: t(0) }),
            "saturated component overflows"
        );
        assert_eq!(c.get(t(0)), MAX_CLOCK, "clock left saturated");
        assert_eq!(c.try_increment(t(1)), Ok(8), "other threads still advance");
        // One step shy of the boundary succeeds, the next fails.
        c.set(t(1), MAX_CLOCK - 1);
        assert_eq!(c.try_increment(t(1)), Ok(MAX_CLOCK));
        assert!(c.try_increment(t(1)).is_err());
    }

    #[test]
    fn set_saturates_at_packed_boundary() {
        let mut c = VectorClock::new();
        c.set(t(0), ClockValue::MAX);
        assert_eq!(c.get(t(0)), MAX_CLOCK, "set clamps to the packed width");
        assert!(c.try_increment(t(0)).is_err());
        let d = VectorClock::from_slice(&[ClockValue::MAX]);
        assert_eq!(d.get(t(0)), MAX_CLOCK, "from_slice clamps too");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "clock overflow")]
    fn increment_at_boundary_debug_asserts() {
        let mut c = VectorClock::from_slice(&[MAX_CLOCK]);
        c.increment(t(0));
    }

    #[test]
    fn set_zero_on_last_slot_restores_canonical_form() {
        // Regression: set(t, 0) used to leave a trailing zero slot, so
        // observationally-equal clocks compared unequal under the derived
        // PartialEq.
        let mut a = VectorClock::from_slice(&[1, 2]);
        a.set(t(1), 0);
        assert_eq!(a, VectorClock::from_slice(&[1]));
        assert_eq!(a.width(), 1, "trailing zero truncated");
        // Interior zeros stay (they are not trailing).
        let mut b = VectorClock::from_slice(&[1, 2, 3]);
        b.set(t(1), 0);
        assert_eq!(b.width(), 3);
        // Clearing the tail cascades over interior zeros that become
        // trailing.
        b.set(t(2), 0);
        assert_eq!(b, VectorClock::from_slice(&[1]));
        assert_eq!(b.width(), 1);
    }

    #[test]
    fn from_slice_truncates_trailing_zeros() {
        // Regression: from_slice(&[1, 0]) used to compare unequal to
        // from_slice(&[1]) despite identical logical values.
        assert_eq!(
            VectorClock::from_slice(&[1, 0]),
            VectorClock::from_slice(&[1])
        );
        assert_eq!(VectorClock::from_slice(&[0, 0, 0]), VectorClock::new());
        assert_eq!(VectorClock::from_slice(&[1, 0, 2]).width(), 3);
    }

    #[test]
    fn clear_slot_restores_canonical_form() {
        let mut c = VectorClock::from_slice(&[1, 0, 3]);
        c.clear_slot(t(2));
        assert_eq!(c, VectorClock::from_slice(&[1]));
        assert_eq!(c.width(), 1);
    }

    #[test]
    fn display_formats() {
        let c = VectorClock::from_slice(&[1, 0, 2]);
        assert_eq!(c.to_string(), "⟨1,0,2⟩");
        assert_eq!(format!("{c:?}"), "VC[1, 0, 2]");
    }
}
