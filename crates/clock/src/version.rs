//! Version vectors and version epochs (§3.2, §A.2).
//!
//! PACER assigns a *version* to every distinct value a thread's vector clock
//! takes. During non-sampling ("timeless") periods clocks change rarely, so
//! redundant synchronization can be recognized — and its `O(n)` join
//! skipped — by comparing a synchronization object's [`VersionEpoch`]
//! against the acquiring thread's [`VersionVector`].
//!
//! These are *not* the version vectors used in distributed systems (the
//! paper's footnote 2).

use std::fmt;

use crate::{ClockValue, ThreadId};

/// A version vector `V : Tid → Nat` (§A.2).
///
/// `V(u)` is the most recent version of thread `u`'s vector clock that has
/// been joined into the owner's vector clock; that version and all earlier
/// versions of `u`'s clock are guaranteed pointwise-≤ the owner's clock
/// (Lemma 7).
///
/// # Examples
///
/// ```
/// use pacer_clock::{ThreadId, VersionEpoch, VersionVector};
///
/// let t1 = ThreadId::new(1);
/// let mut v = VersionVector::new();
/// v.set(t1, 3);
/// assert!(VersionEpoch::at(2, t1).leq(&v), "older versions are subsumed");
/// assert!(!VersionEpoch::at(4, t1).leq(&v));
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct VersionVector {
    slots: Vec<ClockValue>,
}

impl VersionVector {
    /// Creates the minimal version vector `⊥_v` (all zeros).
    pub fn new() -> Self {
        VersionVector { slots: Vec::new() }
    }

    /// Returns the version recorded for thread `t` (zero if none).
    pub fn get(&self, t: ThreadId) -> ClockValue {
        self.slots.get(t.index()).copied().unwrap_or(0)
    }

    /// Records version `v` for thread `t`.
    pub fn set(&mut self, t: ThreadId, v: ClockValue) {
        let i = t.index();
        if i >= self.slots.len() {
            if v == 0 {
                return;
            }
            self.slots.resize(i + 1, 0);
        }
        self.slots[i] = v;
    }

    /// Increments thread `t`'s version: `inc_t(V)` (§A.2, eq. 5). A thread
    /// increments its own slot whenever its vector clock changes.
    pub fn increment(&mut self, t: ThreadId) {
        let i = t.index();
        if i >= self.slots.len() {
            self.slots.resize(i + 1, 0);
        }
        self.slots[i] += 1;
    }

    /// Number of materialized slots (for space accounting).
    pub fn width(&self) -> usize {
        self.slots.len()
    }

    /// Zeroes a retired thread's slot (accordion-clock support).
    pub fn clear_slot(&mut self, t: ThreadId) {
        if let Some(v) = self.slots.get_mut(t.index()) {
            *v = 0;
        }
    }
}

impl fmt::Debug for VersionVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ver{:?}", self.slots)
    }
}

/// A version epoch `v@t` (§A.2): "the vector clock of this synchronization
/// object equals version `v` of thread `t`'s vector clock".
///
/// The minimal version epoch `⊥_ve = 0@t` satisfies `⊥_ve ≼ V` for every
/// version vector `V`; the maximal element `⊤_ve` (represented by `null` in
/// the paper, [`VersionEpoch::Top`] here) satisfies it for none. `⊤_ve`
/// marks a volatile variable whose clock is a join of several threads'
/// clocks and therefore no single thread's snapshot (Table 7, rule 9).
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum VersionEpoch {
    /// Version `v` of thread `t`'s vector clock.
    At {
        /// Version number.
        v: ClockValue,
        /// Owning thread.
        t: ThreadId,
    },
    /// `⊤_ve`: never subsumed by any version vector.
    Top,
}

impl VersionEpoch {
    /// The minimal version epoch `⊥_ve = 0@t0`.
    pub const BOTTOM: VersionEpoch = VersionEpoch::At {
        v: 0,
        t: ThreadId::new(0),
    };

    /// Creates the version epoch `v@t`.
    pub const fn at(v: ClockValue, t: ThreadId) -> Self {
        VersionEpoch::At { v, t }
    }

    /// The subsumption test `v@t ≼ V  iff  v ≤ V(t)` (§A.2, eq. 6);
    /// `⊤_ve ≼ V` is always false. Constant time — this is the fast path
    /// that lets PACER skip `O(n)` joins.
    pub fn leq(self, vv: &VersionVector) -> bool {
        match self {
            VersionEpoch::At { v, t } => v <= vv.get(t),
            VersionEpoch::Top => false,
        }
    }

    /// Returns `true` for `⊤_ve`.
    pub const fn is_top(self) -> bool {
        matches!(self, VersionEpoch::Top)
    }
}

impl Default for VersionEpoch {
    fn default() -> Self {
        VersionEpoch::BOTTOM
    }
}

impl fmt::Debug for VersionEpoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VersionEpoch::At { v, t } => write!(f, "v{v}@{t}"),
            VersionEpoch::Top => write!(f, "⊤ve"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn bottom_is_subsumed_by_everything() {
        assert!(VersionEpoch::BOTTOM.leq(&VersionVector::new()));
        assert!(VersionEpoch::at(0, t(9)).leq(&VersionVector::new()));
    }

    #[test]
    fn top_is_subsumed_by_nothing() {
        let mut vv = VersionVector::new();
        vv.set(t(0), ClockValue::MAX);
        assert!(!VersionEpoch::Top.leq(&vv));
        assert!(VersionEpoch::Top.is_top());
        assert!(!VersionEpoch::BOTTOM.is_top());
    }

    #[test]
    fn subsumption_compares_one_slot() {
        let mut vv = VersionVector::new();
        vv.set(t(2), 5);
        assert!(VersionEpoch::at(5, t(2)).leq(&vv));
        assert!(VersionEpoch::at(4, t(2)).leq(&vv));
        assert!(!VersionEpoch::at(6, t(2)).leq(&vv));
        assert!(!VersionEpoch::at(1, t(3)).leq(&vv));
    }

    #[test]
    fn increment_bumps_own_slot() {
        let mut vv = VersionVector::new();
        vv.increment(t(1));
        vv.increment(t(1));
        assert_eq!(vv.get(t(1)), 2);
        assert_eq!(vv.get(t(0)), 0);
    }

    #[test]
    fn set_zero_does_not_grow() {
        let mut vv = VersionVector::new();
        vv.set(t(50), 0);
        assert_eq!(vv.width(), 0);
        vv.set(t(2), 1);
        assert_eq!(vv.width(), 3);
        vv.clear_slot(t(2));
        assert_eq!(vv.get(t(2)), 0);
    }

    #[test]
    fn default_and_debug() {
        assert_eq!(VersionEpoch::default(), VersionEpoch::BOTTOM);
        assert_eq!(format!("{:?}", VersionEpoch::at(3, t(1))), "v3@t1");
        assert_eq!(format!("{:?}", VersionEpoch::Top), "⊤ve");
        let mut vv = VersionVector::new();
        vv.set(t(0), 2);
        assert_eq!(format!("{vv:?}"), "Ver[2]");
    }
}
