//! Thread identifiers.

use std::fmt;

/// A dense thread identifier used to index vector clocks.
///
/// Thread identifiers are assigned in order of thread creation, starting at
/// zero. The paper's prototype "does not reuse thread identifiers, so vector
/// clock sizes are proportional to *Total* [threads started]" (§5.1); the
/// optional accordion-clock extension in `pacer-core` reuses slots of joined
/// threads.
///
/// # Examples
///
/// ```
/// use pacer_clock::ThreadId;
///
/// let t = ThreadId::new(3);
/// assert_eq!(t.index(), 3);
/// assert_eq!(t.to_string(), "t3");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(u32);

impl ThreadId {
    /// Creates a thread identifier from its dense index.
    pub const fn new(index: u32) -> Self {
        ThreadId(index)
    }

    /// Returns the dense index of this thread, suitable for indexing
    /// vector-clock storage.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u32> for ThreadId {
    fn from(raw: u32) -> Self {
        ThreadId(raw)
    }
}

impl pacer_collections::DenseKey for ThreadId {
    fn index(&self) -> usize {
        self.0 as usize
    }

    fn from_index(index: usize) -> Self {
        ThreadId(u32::try_from(index).expect("index exceeds thread-id space"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for raw in [0u32, 1, 7, 1024] {
            let t = ThreadId::new(raw);
            assert_eq!(t.index(), raw as usize);
            assert_eq!(t.raw(), raw);
            assert_eq!(ThreadId::from(raw), t);
        }
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(ThreadId::new(42).to_string(), "t42");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ThreadId::new(1) < ThreadId::new(2));
    }
}
