//! Copy-on-write vector clocks: PACER's clock-sharing protocol.

use std::fmt;
use std::rc::Rc;

use crate::{ClockArena, VectorClock};

/// A reference-counted, copy-on-write vector clock.
///
/// PACER shares vector clocks between synchronization objects during
/// non-sampling periods: a lock release performs a *shallow* copy of the
/// thread's clock (Algorithm 9) and any later mutation first *clones* a
/// shared clock (Algorithms 10 and 11). The paper implements this with an
/// explicit `isShared` bit plus `setShared`/`clone` operations; `CowClock`
/// realizes the same protocol with an [`Rc`] reference count —
/// `strong_count > 1` is exactly `isShared`, and [`CowClock::make_mut`]
/// clones on demand ("Whenever PACER creates a shallow copy, it marks the
/// object shared", §A.4).
///
/// A `CowClock` is exactly one pointer wide and has no drop glue, so the
/// shallow-copy path — the only clock operation non-sampling periods pay —
/// is a single refcount bump. Arena recycling is *opt-in per operation*:
/// [`deep_copy_in`](CowClock::deep_copy_in) and
/// [`make_mut_in`](CowClock::make_mut_in) draw recycled storage from a
/// [`ClockArena`], and [`ClockArena::reclaim`] parks a retired handle's
/// storage for reuse. Arena wiring is plumbing, not analysis state: results
/// are identical with or without it.
///
/// The caller is responsible for counting deep vs. shallow copies (Table 3);
/// [`CowClock::is_shared`] lets it observe whether a `make_mut` will clone.
///
/// # Examples
///
/// ```
/// use pacer_clock::{CowClock, ThreadId, VectorClock};
///
/// let t0 = ThreadId::new(0);
/// let mut a = CowClock::new(VectorClock::from_slice(&[1, 2]));
/// let b = a.shallow_copy();           // lock release outside sampling
/// assert!(a.is_shared() && b.is_shared());
/// assert!(CowClock::ptr_eq(&a, &b));
///
/// a.make_mut().increment(t0);          // clone-on-write
/// assert!(!CowClock::ptr_eq(&a, &b));
/// assert_eq!(a.clock().get(t0), 2);
/// assert_eq!(b.clock().get(t0), 1, "the shared snapshot is unchanged");
/// ```
pub struct CowClock {
    inner: Rc<VectorClock>,
}

impl CowClock {
    /// Wraps a vector clock in an unshared copy-on-write cell.
    pub fn new(clock: VectorClock) -> Self {
        CowClock {
            inner: Rc::new(clock),
        }
    }

    /// Creates an unshared minimal clock `⊥_c`.
    pub fn bottom() -> Self {
        CowClock::new(VectorClock::new())
    }

    /// Wraps already-counted storage (arena allocations).
    pub(crate) fn from_rc(inner: Rc<VectorClock>) -> Self {
        CowClock { inner }
    }

    /// Surrenders the storage handle (for [`ClockArena::reclaim`]).
    pub(crate) fn into_rc(self) -> Rc<VectorClock> {
        self.inner
    }

    /// Borrows the underlying clock for reading.
    pub fn clock(&self) -> &VectorClock {
        &self.inner
    }

    /// `isShared`: whether another synchronization object currently holds
    /// this same clock storage.
    pub fn is_shared(&self) -> bool {
        Rc::strong_count(&self.inner) > 1
    }

    /// Shallow copy: shares the underlying storage (`clock_m ←shallow
    /// clock_t` plus `setShared(..., true)`, Algorithm 9). `O(1)` — one
    /// refcount bump.
    pub fn shallow_copy(&self) -> CowClock {
        CowClock {
            inner: Rc::clone(&self.inner),
        }
    }

    /// Deep copy: element-by-element copy into fresh, unshared storage.
    /// `O(n)`.
    pub fn deep_copy(&self) -> CowClock {
        CowClock::new((*self.inner).clone())
    }

    /// Deep copy drawing recycled storage from `arena` when one is given
    /// (the steady-state cost is then the element copy alone), falling
    /// back to [`deep_copy`](Self::deep_copy) otherwise.
    pub fn deep_copy_in(&self, arena: Option<&ClockArena>) -> CowClock {
        match arena {
            Some(arena) => CowClock::from_rc(arena.alloc_copy(&self.inner)),
            None => self.deep_copy(),
        }
    }

    /// Mutable access, cloning first if the storage is shared (`clone()` in
    /// Algorithms 10, 11, and 16). Check [`is_shared`](Self::is_shared)
    /// beforehand to account for the clone.
    pub fn make_mut(&mut self) -> &mut VectorClock {
        Rc::make_mut(&mut self.inner)
    }

    /// Like [`make_mut`](Self::make_mut), but a clone-on-write draws
    /// recycled storage from `arena` when one is given.
    pub fn make_mut_in(&mut self, arena: Option<&ClockArena>) -> &mut VectorClock {
        if Rc::strong_count(&self.inner) > 1 {
            if let Some(arena) = arena {
                self.inner = arena.alloc_copy(&self.inner);
            }
        }
        // Unshared after the arena path; clones on the fallback path.
        Rc::make_mut(&mut self.inner)
    }

    /// Returns `true` if both handles point at the same storage.
    pub fn ptr_eq(a: &CowClock, b: &CowClock) -> bool {
        Rc::ptr_eq(&a.inner, &b.inner)
    }

    /// An opaque identity for the underlying storage, equal for handles
    /// that share. Space accounting uses it to charge each shared clock
    /// buffer once. Identities are only meaningful within one snapshot:
    /// arena recycling reuses storage (and therefore identities) over time.
    pub fn storage_id(&self) -> usize {
        Rc::as_ptr(&self.inner) as usize
    }
}

impl Clone for CowClock {
    /// Cloning is a [`shallow_copy`](CowClock::shallow_copy): handles
    /// share storage, exactly the paper's sharing protocol.
    fn clone(&self) -> Self {
        self.shallow_copy()
    }
}

impl Default for CowClock {
    fn default() -> Self {
        CowClock::bottom()
    }
}

impl fmt::Debug for CowClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cow({:?}, rc={})",
            self.inner,
            Rc::strong_count(&self.inner)
        )
    }
}

impl PartialEq for CowClock {
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner
    }
}

impl Eq for CowClock {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadId;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn fresh_clock_is_unshared() {
        let c = CowClock::bottom();
        assert!(!c.is_shared());
        assert!(c.clock().is_bottom());
    }

    #[test]
    fn cow_clock_is_one_pointer_wide() {
        assert_eq!(
            std::mem::size_of::<CowClock>(),
            std::mem::size_of::<usize>()
        );
    }

    #[test]
    fn shallow_copy_shares_storage() {
        let a = CowClock::new(VectorClock::from_slice(&[1]));
        let b = a.shallow_copy();
        assert!(a.is_shared());
        assert!(b.is_shared());
        assert!(CowClock::ptr_eq(&a, &b));
        assert_eq!(a, b);
    }

    #[test]
    fn deep_copy_does_not_share() {
        let a = CowClock::new(VectorClock::from_slice(&[1]));
        let b = a.deep_copy();
        assert!(!a.is_shared());
        assert!(!b.is_shared());
        assert!(!CowClock::ptr_eq(&a, &b));
        assert_eq!(a, b, "deep copies are equal by value");
    }

    #[test]
    fn make_mut_clones_only_when_shared() {
        let mut a = CowClock::new(VectorClock::from_slice(&[1]));
        let before = a.storage_id();
        a.make_mut().increment(t(0));
        assert_eq!(a.storage_id(), before, "unshared: mutated in place");

        let b = a.shallow_copy();
        a.make_mut().increment(t(0));
        assert!(!CowClock::ptr_eq(&a, &b), "shared: cloned before mutating");
        assert_eq!(a.clock().get(t(0)), 3);
        assert_eq!(b.clock().get(t(0)), 2);
        assert!(!b.is_shared(), "the snapshot holder became sole owner");
    }

    #[test]
    fn dropping_a_sharer_unshares() {
        let a = CowClock::bottom();
        let b = a.shallow_copy();
        assert!(a.is_shared());
        drop(b);
        assert!(!a.is_shared());
    }

    #[test]
    fn debug_mentions_refcount() {
        let a = CowClock::bottom();
        let _b = a.shallow_copy();
        assert!(format!("{a:?}").contains("rc=2"));
    }

    #[test]
    fn deep_copy_in_draws_from_and_reclaim_feeds_the_arena() {
        let arena = ClockArena::new();
        let a = CowClock::new(VectorClock::from_slice(&[1, 2, 3]));
        let b = a.deep_copy_in(Some(&arena));
        assert_eq!(a, b);
        assert!(!CowClock::ptr_eq(&a, &b));
        let freed = b.storage_id();
        arena.reclaim(b);
        assert_eq!(arena.stats().free, 1, "sole-owner storage parked");
        let c = a.deep_copy_in(Some(&arena));
        assert_eq!(c.storage_id(), freed, "parked storage reused");
        assert_eq!(c.clock().get(t(2)), 3);
    }

    #[test]
    fn deep_copy_in_without_arena_is_plain() {
        let a = CowClock::new(VectorClock::from_slice(&[4]));
        let b = a.deep_copy_in(None);
        assert_eq!(a, b);
        assert!(!CowClock::ptr_eq(&a, &b));
    }

    #[test]
    fn reclaiming_a_shared_handle_leaves_storage_alive() {
        let arena = ClockArena::new();
        let a = CowClock::new(VectorClock::from_slice(&[7]));
        let b = a.shallow_copy();
        arena.reclaim(b);
        assert_eq!(arena.stats().free, 0, "a still owns the storage");
        assert_eq!(a.clock().get(t(0)), 7, "storage untouched");
        arena.reclaim(a);
        assert_eq!(arena.stats().free, 1, "last handle parks it");
    }

    #[test]
    fn clone_is_shallow() {
        let a = CowClock::new(VectorClock::from_slice(&[4]));
        #[allow(clippy::redundant_clone)]
        let b = a.clone();
        assert!(CowClock::ptr_eq(&a, &b));
    }

    #[test]
    fn make_mut_in_on_shared_clock_draws_from_pool() {
        let arena = ClockArena::new();
        // Park one buffer.
        arena.reclaim(CowClock::new(VectorClock::from_slice(&[9, 9])));
        assert_eq!(arena.stats().free, 1);
        let mut a = CowClock::new(VectorClock::from_slice(&[5]));
        let b = a.shallow_copy();
        a.make_mut_in(Some(&arena)).increment(t(0));
        assert_eq!(arena.stats().free, 0, "clone-on-write reused the buffer");
        assert_eq!(a.clock().get(t(0)), 6);
        assert_eq!(b.clock().get(t(0)), 5);
    }

    #[test]
    fn make_mut_in_unshared_mutates_in_place() {
        let arena = ClockArena::new();
        let mut a = CowClock::new(VectorClock::from_slice(&[5]));
        let before = a.storage_id();
        a.make_mut_in(Some(&arena)).increment(t(0));
        assert_eq!(a.storage_id(), before);
        assert_eq!(arena.stats().fresh, 0, "arena untouched");
    }
}
