//! Copy-on-write vector clocks: PACER's clock-sharing protocol.

use std::fmt;
use std::rc::Rc;

use crate::VectorClock;

/// A reference-counted, copy-on-write vector clock.
///
/// PACER shares vector clocks between synchronization objects during
/// non-sampling periods: a lock release performs a *shallow* copy of the
/// thread's clock (Algorithm 9) and any later mutation first *clones* a
/// shared clock (Algorithms 10 and 11). The paper implements this with an
/// explicit `isShared` bit plus `setShared`/`clone` operations; `CowClock`
/// realizes the same protocol with an [`Rc`] reference count —
/// `strong_count > 1` is exactly `isShared`, and [`CowClock::make_mut`]
/// clones on demand ("Whenever PACER creates a shallow copy, it marks the
/// object shared", §A.4).
///
/// The caller is responsible for counting deep vs. shallow copies (Table 3);
/// [`CowClock::is_shared`] lets it observe whether a `make_mut` will clone.
///
/// # Examples
///
/// ```
/// use pacer_clock::{CowClock, ThreadId, VectorClock};
///
/// let t0 = ThreadId::new(0);
/// let mut a = CowClock::new(VectorClock::from_slice(&[1, 2]));
/// let b = a.shallow_copy();           // lock release outside sampling
/// assert!(a.is_shared() && b.is_shared());
/// assert!(CowClock::ptr_eq(&a, &b));
///
/// a.make_mut().increment(t0);          // clone-on-write
/// assert!(!CowClock::ptr_eq(&a, &b));
/// assert_eq!(a.clock().get(t0), 2);
/// assert_eq!(b.clock().get(t0), 1, "the shared snapshot is unchanged");
/// ```
#[derive(Clone)]
pub struct CowClock(Rc<VectorClock>);

impl CowClock {
    /// Wraps a vector clock in an unshared copy-on-write cell.
    pub fn new(clock: VectorClock) -> Self {
        CowClock(Rc::new(clock))
    }

    /// Creates an unshared minimal clock `⊥_c`.
    pub fn bottom() -> Self {
        CowClock::new(VectorClock::new())
    }

    /// Borrows the underlying clock for reading.
    pub fn clock(&self) -> &VectorClock {
        &self.0
    }

    /// `isShared`: whether another synchronization object currently holds
    /// this same clock storage.
    pub fn is_shared(&self) -> bool {
        Rc::strong_count(&self.0) > 1
    }

    /// Shallow copy: shares the underlying storage (`clock_m ←shallow
    /// clock_t` plus `setShared(..., true)`, Algorithm 9). `O(1)`.
    pub fn shallow_copy(&self) -> CowClock {
        CowClock(Rc::clone(&self.0))
    }

    /// Deep copy: element-by-element copy into fresh, unshared storage.
    /// `O(n)`.
    pub fn deep_copy(&self) -> CowClock {
        CowClock(Rc::new((*self.0).clone()))
    }

    /// Mutable access, cloning first if the storage is shared (`clone()` in
    /// Algorithms 10, 11, and 16). Check [`is_shared`](Self::is_shared)
    /// beforehand to account for the clone.
    pub fn make_mut(&mut self) -> &mut VectorClock {
        Rc::make_mut(&mut self.0)
    }

    /// Returns `true` if both handles point at the same storage.
    pub fn ptr_eq(a: &CowClock, b: &CowClock) -> bool {
        Rc::ptr_eq(&a.0, &b.0)
    }

    /// An opaque identity for the underlying storage, equal for handles
    /// that share. Space accounting uses it to charge each shared clock
    /// buffer once.
    pub fn storage_id(&self) -> usize {
        Rc::as_ptr(&self.0) as usize
    }
}

impl Default for CowClock {
    fn default() -> Self {
        CowClock::bottom()
    }
}

impl fmt::Debug for CowClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cow({:?}, rc={})", self.0, Rc::strong_count(&self.0))
    }
}

impl PartialEq for CowClock {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl Eq for CowClock {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadId;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn fresh_clock_is_unshared() {
        let c = CowClock::bottom();
        assert!(!c.is_shared());
        assert!(c.clock().is_bottom());
    }

    #[test]
    fn shallow_copy_shares_storage() {
        let a = CowClock::new(VectorClock::from_slice(&[1]));
        let b = a.shallow_copy();
        assert!(a.is_shared());
        assert!(b.is_shared());
        assert!(CowClock::ptr_eq(&a, &b));
        assert_eq!(a, b);
    }

    #[test]
    fn deep_copy_does_not_share() {
        let a = CowClock::new(VectorClock::from_slice(&[1]));
        let b = a.deep_copy();
        assert!(!a.is_shared());
        assert!(!b.is_shared());
        assert!(!CowClock::ptr_eq(&a, &b));
        assert_eq!(a, b, "deep copies are equal by value");
    }

    #[test]
    fn make_mut_clones_only_when_shared() {
        let mut a = CowClock::new(VectorClock::from_slice(&[1]));
        let before = Rc::as_ptr(&a.0);
        a.make_mut().increment(t(0));
        assert_eq!(Rc::as_ptr(&a.0), before, "unshared: mutated in place");

        let b = a.shallow_copy();
        a.make_mut().increment(t(0));
        assert!(!CowClock::ptr_eq(&a, &b), "shared: cloned before mutating");
        assert_eq!(a.clock().get(t(0)), 3);
        assert_eq!(b.clock().get(t(0)), 2);
        assert!(!b.is_shared(), "the snapshot holder became sole owner");
    }

    #[test]
    fn dropping_a_sharer_unshares() {
        let a = CowClock::bottom();
        let b = a.shallow_copy();
        assert!(a.is_shared());
        drop(b);
        assert!(!a.is_shared());
    }

    #[test]
    fn debug_mentions_refcount() {
        let a = CowClock::bottom();
        let _b = a.shallow_copy();
        assert!(format!("{a:?}").contains("rc=2"));
    }
}
