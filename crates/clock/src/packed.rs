//! Single-word epoch packing.
//!
//! The real FASTTRACK/PACER implementations store an epoch `c@t` in **one
//! machine word** so metadata can be read and compare-and-swapped
//! atomically (§4 uses CAS on metadata words). [`PackedEpoch`] reproduces
//! that layout: the thread id in the low bits, the clock in the high bits.
//! The analysis in this repository uses the struct form ([`Epoch`]) for
//! clarity; this type exists for fidelity, for space-layout tests, and as
//! the natural representation if the detectors were made lock-free.

use std::fmt;

use crate::{ClockValue, Epoch, ThreadId};

/// Bits reserved for the thread id (16 M threads — far beyond the paper's
/// 403).
pub const TID_BITS: u32 = 24;

/// Maximum clock value a packed epoch can carry (`2^40 − 1`).
pub const MAX_PACKED_CLOCK: ClockValue = (1 << (64 - TID_BITS)) - 1;

/// An [`Epoch`] packed into a single `u64`: `clock << 24 | tid`.
///
/// # Examples
///
/// ```
/// use pacer_clock::{Epoch, PackedEpoch, ThreadId, VectorClock};
///
/// let epoch = Epoch::new(7, ThreadId::new(3));
/// let packed = PackedEpoch::pack(epoch).unwrap();
/// assert_eq!(packed.unpack(), epoch);
///
/// let clock = VectorClock::from_slice(&[0, 0, 0, 9]);
/// assert!(packed.leq_clock(&clock));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PackedEpoch(u64);

impl PackedEpoch {
    /// The minimal epoch `0@t0` packed.
    pub const MIN: PackedEpoch = PackedEpoch(0);

    /// Packs an epoch. Returns `None` if the clock exceeds
    /// [`MAX_PACKED_CLOCK`] or the thread id does not fit in
    /// [`TID_BITS`].
    pub fn pack(epoch: Epoch) -> Option<PackedEpoch> {
        let tid = u64::from(epoch.tid().raw());
        if epoch.clock() > MAX_PACKED_CLOCK || tid >= (1 << TID_BITS) {
            return None;
        }
        Some(PackedEpoch((epoch.clock() << TID_BITS) | tid))
    }

    /// Unpacks back into the struct form.
    pub fn unpack(self) -> Epoch {
        Epoch::new(
            self.0 >> TID_BITS,
            ThreadId::new((self.0 & ((1 << TID_BITS) - 1)) as u32),
        )
    }

    /// The raw word (what a lock-free implementation would CAS).
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs from a raw word.
    pub const fn from_raw(raw: u64) -> PackedEpoch {
        PackedEpoch(raw)
    }

    /// The constant-time `≼` against a vector clock, without unpacking the
    /// struct form first.
    pub fn leq_clock(self, clock: &crate::VectorClock) -> bool {
        let tid = ThreadId::new((self.0 & ((1 << TID_BITS) - 1)) as u32);
        (self.0 >> TID_BITS) <= clock.get(tid)
    }

    /// Same-epoch test against a thread's current epoch — the "no action"
    /// gate of Algorithms 7/8, one integer comparison on the packed form.
    pub fn is_epoch_of(self, t: ThreadId, clock: &crate::VectorClock) -> bool {
        Self::pack(Epoch::of_thread(t, clock)) == Some(self)
    }
}

impl Default for PackedEpoch {
    fn default() -> Self {
        PackedEpoch::MIN
    }
}

impl fmt::Debug for PackedEpoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "packed:{:?}", self.unpack())
    }
}

impl TryFrom<Epoch> for PackedEpoch {
    type Error = Epoch;

    fn try_from(epoch: Epoch) -> Result<Self, Epoch> {
        PackedEpoch::pack(epoch).ok_or(epoch)
    }
}

impl From<PackedEpoch> for Epoch {
    fn from(packed: PackedEpoch) -> Epoch {
        packed.unpack()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VectorClock;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn round_trips() {
        for (c, tid) in [
            (0u64, 0u32),
            (1, 0),
            (0, 1),
            (12345, 402),
            (MAX_PACKED_CLOCK, 99),
        ] {
            let e = Epoch::new(c, t(tid));
            let p = PackedEpoch::pack(e).unwrap();
            assert_eq!(p.unpack(), e);
            assert_eq!(Epoch::from(p), e);
            assert_eq!(PackedEpoch::from_raw(p.raw()), p);
        }
    }

    #[test]
    fn min_is_zero_word() {
        assert_eq!(PackedEpoch::MIN.raw(), 0);
        assert_eq!(PackedEpoch::MIN.unpack(), Epoch::MIN);
        assert_eq!(PackedEpoch::default(), PackedEpoch::MIN);
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(PackedEpoch::pack(Epoch::new(MAX_PACKED_CLOCK + 1, t(0))).is_none());
        assert!(PackedEpoch::pack(Epoch::new(0, t(1 << TID_BITS))).is_none());
        let e = Epoch::new(MAX_PACKED_CLOCK + 1, t(0));
        assert_eq!(PackedEpoch::try_from(e), Err(e));
    }

    #[test]
    fn leq_clock_matches_struct_form() {
        let clock = VectorClock::from_slice(&[3, 7, 0]);
        for (c, tid) in [(0u64, 0u32), (3, 0), (4, 0), (7, 1), (8, 1), (1, 2)] {
            let e = Epoch::new(c, t(tid));
            let p = PackedEpoch::pack(e).unwrap();
            assert_eq!(p.leq_clock(&clock), e.leq_clock(&clock), "{e}");
        }
    }

    #[test]
    fn same_epoch_gate() {
        let mut clock = VectorClock::new();
        clock.increment(t(2));
        let p = PackedEpoch::pack(Epoch::of_thread(t(2), &clock)).unwrap();
        assert!(p.is_epoch_of(t(2), &clock));
        clock.increment(t(2));
        assert!(!p.is_epoch_of(t(2), &clock));
    }

    #[test]
    fn debug_shows_epoch() {
        let p = PackedEpoch::pack(Epoch::new(5, t(1))).unwrap();
        assert_eq!(format!("{p:?}"), "packed:5@t1");
    }
}
