//! The copy-on-write sharing protocol, observed from outside the crate:
//! shallow copies share storage until the first write promotes (clones)
//! the writer, and space accounting charges a shared buffer exactly once
//! however many owners point at it (the rule `pacer-core`'s
//! `space_breakdown` applies via [`CowClock::storage_id`]).

use std::collections::HashSet;

use pacer_clock::{CowClock, ThreadId, VectorClock};

/// The space-accounting rule: each distinct storage buffer is charged its
/// width once, no matter how many handles reach it.
fn charged_words(handles: &[&CowClock]) -> usize {
    let mut seen = HashSet::new();
    handles
        .iter()
        .filter(|c| seen.insert(c.storage_id()))
        .map(|c| c.clock().width())
        .sum()
}

#[test]
fn shallow_copy_promotes_on_first_write() {
    let t0 = ThreadId::new(0);
    let mut a = CowClock::new(VectorClock::from_slice(&[5, 3]));
    let b = a.shallow_copy();
    let c = b.shallow_copy();
    assert!(a.is_shared() && b.is_shared() && c.is_shared());
    assert_eq!(a.storage_id(), c.storage_id(), "one buffer, three owners");

    // First write through `a` promotes it to a private copy; the other
    // owners keep sharing the untouched snapshot.
    a.make_mut().increment(t0);
    assert_ne!(a.storage_id(), b.storage_id(), "writer got fresh storage");
    assert_eq!(b.storage_id(), c.storage_id(), "readers still share");
    assert_eq!(a.clock().get(t0), 6);
    assert_eq!(b.clock().get(t0), 5, "the shared snapshot is unchanged");

    // Later writes mutate the now-private buffer in place.
    let promoted = a.storage_id();
    a.make_mut().increment(t0);
    assert_eq!(a.storage_id(), promoted, "promotion happens once");
    assert_eq!(a.clock().get(t0), 7);
}

#[test]
fn shared_words_are_charged_once() {
    let t1 = ThreadId::new(1);
    let mut a = CowClock::new(VectorClock::from_slice(&[1, 2, 3, 4]));
    let b = a.shallow_copy();
    let c = a.shallow_copy();
    assert_eq!(
        charged_words(&[&a, &b, &c]),
        4,
        "three owners of one 4-word buffer cost 4 words"
    );

    // Promoting one owner materializes a second buffer: 8 words total.
    a.make_mut().increment(t1);
    assert_eq!(charged_words(&[&a, &b, &c]), 8);

    // A deep copy never shares, so it is charged separately up front.
    let d = b.deep_copy();
    assert_eq!(charged_words(&[&a, &b, &c, &d]), 12);
    assert_eq!(b.clock(), d.clock(), "equal by value, distinct storage");
}
