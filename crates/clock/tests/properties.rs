//! Property tests for the clock primitives: lattice laws, epoch/clock
//! consistency, and copy-on-write equivalence with eager clocks.

// Compiled only with the non-default `proptest` feature (restore the
// `proptest` dev-dependency first; the workspace is offline by default).
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use pacer_clock::{CowClock, Epoch, ReadMap, ThreadId, VectorClock, VersionEpoch, VersionVector};

const MAX_THREADS: u32 = 12;

fn arb_clock() -> impl Strategy<Value = VectorClock> {
    prop::collection::vec(0u64..50, 0..MAX_THREADS as usize)
        .prop_map(|v| VectorClock::from_slice(&v))
}

fn arb_tid() -> impl Strategy<Value = ThreadId> {
    (0..MAX_THREADS).prop_map(ThreadId::new)
}

proptest! {
    // ---- Partial-order laws for ⊑ ----

    #[test]
    fn leq_is_reflexive(a in arb_clock()) {
        prop_assert!(a.leq(&a));
    }

    #[test]
    fn leq_is_transitive(a in arb_clock(), b in arb_clock(), c in arb_clock()) {
        if a.leq(&b) && b.leq(&c) {
            prop_assert!(a.leq(&c));
        }
    }

    #[test]
    fn leq_is_antisymmetric_up_to_padding(a in arb_clock(), b in arb_clock()) {
        // a ⊑ b ∧ b ⊑ a ⇒ equal values (trailing zeros may differ in
        // storage, so compare through `get`).
        if a.leq(&b) && b.leq(&a) {
            for i in 0..MAX_THREADS {
                let t = ThreadId::new(i);
                prop_assert_eq!(a.get(t), b.get(t));
            }
        }
    }

    // ---- Join is the least upper bound ----

    #[test]
    fn join_is_an_upper_bound(a in arb_clock(), b in arb_clock()) {
        let mut j = a.clone();
        j.join(&b);
        prop_assert!(a.leq(&j));
        prop_assert!(b.leq(&j));
    }

    #[test]
    fn join_is_least(a in arb_clock(), b in arb_clock(), c in arb_clock()) {
        // Any common upper bound dominates the join.
        if a.leq(&c) && b.leq(&c) {
            let mut j = a.clone();
            j.join(&b);
            prop_assert!(j.leq(&c));
        }
    }

    #[test]
    fn join_is_commutative(a in arb_clock(), b in arb_clock()) {
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        for i in 0..MAX_THREADS {
            let t = ThreadId::new(i);
            prop_assert_eq!(ab.get(t), ba.get(t));
        }
    }

    #[test]
    fn join_is_associative(a in arb_clock(), b in arb_clock(), c in arb_clock()) {
        let mut left = a.clone();
        left.join(&b);
        left.join(&c);
        let mut bc = b.clone();
        bc.join(&c);
        let mut right = a.clone();
        right.join(&bc);
        for i in 0..MAX_THREADS {
            let t = ThreadId::new(i);
            prop_assert_eq!(left.get(t), right.get(t));
        }
    }

    #[test]
    fn join_is_idempotent(a in arb_clock()) {
        let mut j = a.clone();
        j.join(&a);
        prop_assert!(j.leq(&a) && a.leq(&j));
    }

    #[test]
    fn bottom_is_identity(a in arb_clock()) {
        let mut j = a.clone();
        j.join(&VectorClock::new());
        prop_assert!(j.leq(&a) && a.leq(&j));
        prop_assert!(VectorClock::new().leq(&a));
    }

    // ---- Increment ----

    #[test]
    fn increment_strictly_grows_own_component(a in arb_clock(), t in arb_tid()) {
        let mut b = a.clone();
        b.increment(t);
        prop_assert!(a.leq(&b));
        prop_assert!(!b.leq(&a));
        prop_assert_eq!(b.get(t), a.get(t) + 1);
    }

    // ---- Epochs agree with one-component clocks ----

    #[test]
    fn epoch_leq_iff_component_leq(c in 0u64..50, t in arb_tid(), clock in arb_clock()) {
        let e = Epoch::new(c, t);
        prop_assert_eq!(e.leq_clock(&clock), c <= clock.get(t));
    }

    #[test]
    fn own_epoch_always_leq_own_clock(clock in arb_clock(), t in arb_tid()) {
        prop_assert!(Epoch::of_thread(t, &clock).leq_clock(&clock));
    }

    // ---- Version epochs ----

    #[test]
    fn version_epoch_leq_matches_slot(v in 0u64..50, t in arb_tid(), slots in prop::collection::vec(0u64..50, 0..MAX_THREADS as usize)) {
        let mut vv = VersionVector::new();
        for (i, &s) in slots.iter().enumerate() {
            vv.set(ThreadId::new(i as u32), s);
        }
        prop_assert_eq!(VersionEpoch::at(v, t).leq(&vv), v <= vv.get(t));
        prop_assert!(!VersionEpoch::Top.leq(&vv));
    }

    // ---- Copy-on-write clocks behave like eager copies ----

    #[test]
    fn cow_matches_eager_under_random_ops(
        base in arb_clock(),
        ops in prop::collection::vec((0..3u8, arb_tid(), arb_clock()), 0..20),
    ) {
        // Model: an eagerly copied clock. Subject: a CowClock sharing
        // storage with a snapshot holder. The snapshot must never change.
        let snapshot_expected = base.clone();
        let mut eager = base.clone();
        let mut cow = CowClock::new(base);
        let snapshot = cow.shallow_copy();

        for (op, t, other) in ops {
            match op {
                0 => {
                    eager.increment(t);
                    cow.make_mut().increment(t);
                }
                1 => {
                    eager.join(&other);
                    cow.make_mut().join(&other);
                }
                _ => {
                    let c = eager.get(t);
                    eager.set(t, c + 1);
                    let c = cow.clock().get(t);
                    cow.make_mut().set(t, c + 1);
                }
            }
        }
        for i in 0..MAX_THREADS {
            let t = ThreadId::new(i);
            prop_assert_eq!(cow.clock().get(t), eager.get(t));
            prop_assert_eq!(snapshot.clock().get(t), snapshot_expected.get(t));
        }
    }

    // ---- Read maps ----

    #[test]
    fn read_map_agrees_with_reference_map(
        ops in prop::collection::vec((arb_tid(), 1u64..40, 0u32..100, prop::bool::ANY), 0..30),
    ) {
        use std::collections::HashMap;
        let mut subject = ReadMap::empty();
        let mut reference: HashMap<ThreadId, (u64, u32)> = HashMap::new();
        for (t, c, site, remove) in ops {
            if remove {
                subject.remove(t);
                reference.remove(&t);
            } else {
                subject.insert(t, c, site);
                reference.insert(t, (c, site));
            }
            prop_assert_eq!(subject.len(), reference.len());
            for (&t, &(c, site)) in &reference {
                let entry = subject.get(t).expect("entry present");
                prop_assert_eq!(entry.clock, c);
                prop_assert_eq!(entry.site, site);
            }
        }
    }

    #[test]
    fn read_map_leq_means_every_entry_leq(
        entries in prop::collection::vec((arb_tid(), 1u64..40), 0..8),
        clock in arb_clock(),
    ) {
        let mut rm = ReadMap::empty();
        let mut dedup: std::collections::HashMap<ThreadId, u64> = Default::default();
        for (t, c) in entries {
            rm.insert(t, c, 0);
            dedup.insert(t, c);
        }
        let expected = dedup.iter().all(|(&t, &c)| c <= clock.get(t));
        prop_assert_eq!(rm.leq_clock(&clock), expected);
        let racing = rm.entries_racing_with(&clock);
        prop_assert_eq!(racing.is_empty(), expected);
        for e in racing {
            prop_assert!(e.clock > clock.get(e.tid));
        }
    }
}

proptest! {
    /// Packed epochs agree with the struct form on every operation.
    #[test]
    fn packed_epoch_equivalence(
        c in 0u64..pacer_clock::MAX_PACKED_CLOCK,
        tid in 0u32..1000,
        clock in arb_clock(),
    ) {
        use pacer_clock::PackedEpoch;
        let e = Epoch::new(c, ThreadId::new(tid));
        let p = PackedEpoch::pack(e).expect("in range");
        prop_assert_eq!(p.unpack(), e);
        prop_assert_eq!(p.leq_clock(&clock), e.leq_clock(&clock));
    }
}
