//! Property tests for the clock primitives: lattice laws, epoch/clock
//! consistency, and copy-on-write equivalence with eager clocks.

// Compiled only with the non-default `proptest` feature (restore the
// `proptest` dev-dependency first; the workspace is offline by default).
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use pacer_clock::{CowClock, Epoch, ReadMap, ThreadId, VectorClock, VersionEpoch, VersionVector};

const MAX_THREADS: u32 = 12;

fn arb_clock() -> impl Strategy<Value = VectorClock> {
    prop::collection::vec(0u64..50, 0..MAX_THREADS as usize)
        .prop_map(|v| VectorClock::from_slice(&v))
}

fn arb_tid() -> impl Strategy<Value = ThreadId> {
    (0..MAX_THREADS).prop_map(ThreadId::new)
}

proptest! {
    // ---- Partial-order laws for ⊑ ----

    #[test]
    fn leq_is_reflexive(a in arb_clock()) {
        prop_assert!(a.leq(&a));
    }

    #[test]
    fn leq_is_transitive(a in arb_clock(), b in arb_clock(), c in arb_clock()) {
        if a.leq(&b) && b.leq(&c) {
            prop_assert!(a.leq(&c));
        }
    }

    #[test]
    fn leq_is_antisymmetric_up_to_padding(a in arb_clock(), b in arb_clock()) {
        // a ⊑ b ∧ b ⊑ a ⇒ equal values (trailing zeros may differ in
        // storage, so compare through `get`).
        if a.leq(&b) && b.leq(&a) {
            for i in 0..MAX_THREADS {
                let t = ThreadId::new(i);
                prop_assert_eq!(a.get(t), b.get(t));
            }
        }
    }

    // ---- Join is the least upper bound ----

    #[test]
    fn join_is_an_upper_bound(a in arb_clock(), b in arb_clock()) {
        let mut j = a.clone();
        j.join(&b);
        prop_assert!(a.leq(&j));
        prop_assert!(b.leq(&j));
    }

    #[test]
    fn join_is_least(a in arb_clock(), b in arb_clock(), c in arb_clock()) {
        // Any common upper bound dominates the join.
        if a.leq(&c) && b.leq(&c) {
            let mut j = a.clone();
            j.join(&b);
            prop_assert!(j.leq(&c));
        }
    }

    #[test]
    fn join_is_commutative(a in arb_clock(), b in arb_clock()) {
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        for i in 0..MAX_THREADS {
            let t = ThreadId::new(i);
            prop_assert_eq!(ab.get(t), ba.get(t));
        }
    }

    #[test]
    fn join_is_associative(a in arb_clock(), b in arb_clock(), c in arb_clock()) {
        let mut left = a.clone();
        left.join(&b);
        left.join(&c);
        let mut bc = b.clone();
        bc.join(&c);
        let mut right = a.clone();
        right.join(&bc);
        for i in 0..MAX_THREADS {
            let t = ThreadId::new(i);
            prop_assert_eq!(left.get(t), right.get(t));
        }
    }

    #[test]
    fn join_is_idempotent(a in arb_clock()) {
        let mut j = a.clone();
        j.join(&a);
        prop_assert!(j.leq(&a) && a.leq(&j));
    }

    #[test]
    fn bottom_is_identity(a in arb_clock()) {
        let mut j = a.clone();
        j.join(&VectorClock::new());
        prop_assert!(j.leq(&a) && a.leq(&j));
        prop_assert!(VectorClock::new().leq(&a));
    }

    // ---- Increment ----

    #[test]
    fn increment_strictly_grows_own_component(a in arb_clock(), t in arb_tid()) {
        let mut b = a.clone();
        b.increment(t);
        prop_assert!(a.leq(&b));
        prop_assert!(!b.leq(&a));
        prop_assert_eq!(b.get(t), a.get(t) + 1);
    }

    // ---- Epochs agree with one-component clocks ----

    #[test]
    fn epoch_leq_iff_component_leq(c in 0u64..50, t in arb_tid(), clock in arb_clock()) {
        let e = Epoch::new(c, t);
        prop_assert_eq!(e.leq_clock(&clock), c <= clock.get(t));
    }

    #[test]
    fn own_epoch_always_leq_own_clock(clock in arb_clock(), t in arb_tid()) {
        prop_assert!(Epoch::of_thread(t, &clock).leq_clock(&clock));
    }

    // ---- Version epochs ----

    #[test]
    fn version_epoch_leq_matches_slot(v in 0u64..50, t in arb_tid(), slots in prop::collection::vec(0u64..50, 0..MAX_THREADS as usize)) {
        let mut vv = VersionVector::new();
        for (i, &s) in slots.iter().enumerate() {
            vv.set(ThreadId::new(i as u32), s);
        }
        prop_assert_eq!(VersionEpoch::at(v, t).leq(&vv), v <= vv.get(t));
        prop_assert!(!VersionEpoch::Top.leq(&vv));
    }

    // ---- Copy-on-write clocks behave like eager copies ----

    #[test]
    fn cow_matches_eager_under_random_ops(
        base in arb_clock(),
        ops in prop::collection::vec((0..3u8, arb_tid(), arb_clock()), 0..20),
    ) {
        // Model: an eagerly copied clock. Subject: a CowClock sharing
        // storage with a snapshot holder. The snapshot must never change.
        let snapshot_expected = base.clone();
        let mut eager = base.clone();
        let mut cow = CowClock::new(base);
        let snapshot = cow.shallow_copy();

        for (op, t, other) in ops {
            match op {
                0 => {
                    eager.increment(t);
                    cow.make_mut().increment(t);
                }
                1 => {
                    eager.join(&other);
                    cow.make_mut().join(&other);
                }
                _ => {
                    let c = eager.get(t);
                    eager.set(t, c + 1);
                    let c = cow.clock().get(t);
                    cow.make_mut().set(t, c + 1);
                }
            }
        }
        for i in 0..MAX_THREADS {
            let t = ThreadId::new(i);
            prop_assert_eq!(cow.clock().get(t), eager.get(t));
            prop_assert_eq!(snapshot.clock().get(t), snapshot_expected.get(t));
        }
    }

    // ---- Read maps ----

    #[test]
    fn read_map_agrees_with_reference_map(
        ops in prop::collection::vec((arb_tid(), 1u64..40, 0u32..100, prop::bool::ANY), 0..30),
    ) {
        use std::collections::HashMap;
        let mut subject = ReadMap::empty();
        let mut reference: HashMap<ThreadId, (u64, u32)> = HashMap::new();
        for (t, c, site, remove) in ops {
            if remove {
                subject.remove(t);
                reference.remove(&t);
            } else {
                subject.insert(t, c, site);
                reference.insert(t, (c, site));
            }
            prop_assert_eq!(subject.len(), reference.len());
            for (&t, &(c, site)) in &reference {
                let entry = subject.get(t).expect("entry present");
                prop_assert_eq!(entry.clock, c);
                prop_assert_eq!(entry.site, site);
            }
        }
    }

    #[test]
    fn read_map_leq_means_every_entry_leq(
        entries in prop::collection::vec((arb_tid(), 1u64..40), 0..8),
        clock in arb_clock(),
    ) {
        let mut rm = ReadMap::empty();
        let mut dedup: std::collections::HashMap<ThreadId, u64> = Default::default();
        for (t, c) in entries {
            rm.insert(t, c, 0);
            dedup.insert(t, c);
        }
        let expected = dedup.iter().all(|(&t, &c)| c <= clock.get(t));
        prop_assert_eq!(rm.leq_clock(&clock), expected);
        let racing = rm.entries_racing_with(&clock);
        prop_assert_eq!(racing.is_empty(), expected);
        for e in racing {
            prop_assert!(e.clock > clock.get(e.tid));
        }
    }
}

proptest! {
    /// The packed single-word epoch representation preserves both fields
    /// and the raw word round-trips.
    #[test]
    fn packed_epoch_round_trips(
        c in 0u64..=pacer_clock::MAX_CLOCK,
        tid in 0u32..1000,
    ) {
        let e = Epoch::new(c, ThreadId::new(tid));
        prop_assert_eq!(e.clock(), c);
        prop_assert_eq!(e.tid(), ThreadId::new(tid));
        prop_assert_eq!(Epoch::from_raw(e.raw()), e);
        prop_assert_eq!(
            e.raw(),
            (u64::from(tid) << pacer_clock::CLOCK_BITS) | c,
            "tid in the high bits, clock in the low bits"
        );
    }

    /// Packed equality is value equality: two epochs compare equal exactly
    /// when both components match, via one word comparison.
    #[test]
    fn packed_epoch_equality_is_componentwise(
        c1 in 0u64..=pacer_clock::MAX_CLOCK,
        c2 in 0u64..=pacer_clock::MAX_CLOCK,
        t1 in 0u32..1000,
        t2 in 0u32..1000,
    ) {
        let a = Epoch::new(c1, ThreadId::new(t1));
        let b = Epoch::new(c2, ThreadId::new(t2));
        prop_assert_eq!(a == b, c1 == c2 && t1 == t2);
    }

    /// Checked narrowing at the packed-clock boundary: values in range
    /// construct, values past it surface `ClockOverflow`, and the clock
    /// machinery cannot produce an out-of-range component in the first
    /// place.
    #[test]
    fn clock_overflow_at_packed_boundary(
        over in pacer_clock::MAX_CLOCK + 1..u64::MAX,
        tid in 0u32..1000,
    ) {
        let t = ThreadId::new(tid);
        prop_assert!(Epoch::try_new(pacer_clock::MAX_CLOCK, t).is_ok());
        prop_assert_eq!(
            Epoch::try_new(over, t),
            Err(pacer_clock::ClockOverflow { thread: t })
        );
        // set() saturates at the boundary, so of_thread always narrows
        // losslessly, and the next increment reports the overflow.
        let mut c = VectorClock::new();
        c.set(t, over);
        prop_assert_eq!(c.get(t), pacer_clock::MAX_CLOCK);
        prop_assert_eq!(Epoch::of_thread(t, &c).clock(), pacer_clock::MAX_CLOCK);
        prop_assert_eq!(
            c.try_increment(t),
            Err(pacer_clock::ClockOverflow { thread: t })
        );
    }

    /// An arena-backed CowClock is observationally identical to an eager
    /// Vec-backed VectorClock (and to an unbound CowClock) under random
    /// op sequences, and shared snapshots never change.
    #[test]
    fn arena_backed_cow_matches_eager_under_random_ops(
        base in arb_clock(),
        ops in prop::collection::vec((0..5u8, arb_tid(), arb_clock()), 0..24),
    ) {
        use pacer_clock::ClockArena;
        let arena = ClockArena::new();
        let snapshot_expected = base.clone();
        let mut eager = base.clone();
        let mut plain = CowClock::new(base.clone());
        let mut arena_cow = CowClock::new(base);
        let snapshot = arena_cow.shallow_copy();
        // Park spare storage so reuse paths actually run mid-sequence.
        arena.reclaim(arena_cow.deep_copy_in(Some(&arena)));

        for (op, t, other) in ops {
            match op {
                0 => {
                    eager.increment(t);
                    plain.make_mut().increment(t);
                    arena_cow.make_mut_in(Some(&arena)).increment(t);
                }
                1 => {
                    eager.join(&other);
                    plain.make_mut().join(&other);
                    arena_cow.make_mut_in(Some(&arena)).join(&other);
                }
                2 => {
                    let v = eager.get(t) + 1;
                    eager.set(t, v);
                    plain.make_mut().set(t, v);
                    arena_cow.make_mut_in(Some(&arena)).set(t, v);
                }
                3 => {
                    // Deep copies recycle through the arena; the copy must
                    // equal the source at the instant it is taken.
                    let copy = arena_cow.deep_copy_in(Some(&arena));
                    prop_assert!(copy.clock().leq(arena_cow.clock()));
                    prop_assert!(arena_cow.clock().leq(copy.clock()));
                    arena.reclaim(copy);
                }
                _ => {
                    // Re-share, forcing the next mutation to clone-on-write
                    // out of the arena.
                    let holder = arena_cow.shallow_copy();
                    prop_assert!(arena_cow.is_shared());
                    drop(holder);
                }
            }
            prop_assert_eq!(arena_cow.clock().leq(&eager), true);
            prop_assert_eq!(eager.leq(arena_cow.clock()), true);
        }
        for i in 0..MAX_THREADS {
            let t = ThreadId::new(i);
            prop_assert_eq!(arena_cow.clock().get(t), eager.get(t));
            prop_assert_eq!(plain.clock().get(t), eager.get(t));
            prop_assert_eq!(snapshot.clock().get(t), snapshot_expected.get(t));
        }
    }
}
