//! Micro-benchmarks of the clock primitives: the `O(1)` vs `O(n)`
//! distinction everything else rests on. Emits `BENCH_clock_ops.json`.

use std::hint::black_box;

use pacer_bench::Bench;
use pacer_clock::{CowClock, Epoch, ThreadId, VectorClock, VersionEpoch, VersionVector};

fn clock_of_width(n: u32) -> VectorClock {
    let mut c = VectorClock::new();
    for i in 0..n {
        c.set(ThreadId::new(i), u64::from(i) + 1);
    }
    c
}

fn main() {
    let mut bench = Bench::from_args("clock_ops", std::env::args().skip(1));

    for &n in &[8u32, 64, 512] {
        let clock = clock_of_width(n);
        let other = clock_of_width(n);
        let epoch = Epoch::new(3, ThreadId::new(n / 2));
        bench.measure(&format!("compare/epoch_leq_clock/{n}"), None, || {
            black_box(black_box(epoch).leq_clock(black_box(&clock)));
        });
        bench.measure(&format!("compare/vector_leq_vector/{n}"), None, || {
            black_box(black_box(&other).leq(black_box(&clock)));
        });
    }

    for &n in &[8u32, 64, 512] {
        let src = clock_of_width(n);
        let mut dst = clock_of_width(n);
        bench.measure(&format!("join_copy/join/{n}"), None, || {
            dst.join(black_box(&src));
        });
        let cow = CowClock::new(clock_of_width(n));
        bench.measure(&format!("join_copy/shallow_copy/{n}"), None, || {
            black_box(cow.shallow_copy());
        });
        bench.measure(&format!("join_copy/deep_copy/{n}"), None, || {
            black_box(cow.deep_copy());
        });

        // Clone-on-write then join: the rule-6 slow path on a shared clock
        // (a lock acquire joining into a thread clock some sync object
        // still snapshots). Dominated by the clone; the snapshot handle is
        // rebuilt each iteration so every make_mut pays it.
        let src = clock_of_width(n);
        let mut shared = CowClock::new(clock_of_width(n));
        bench.measure(&format!("join_copy/make_mut_join_shared/{n}"), None, || {
            let snapshot = shared.shallow_copy();
            shared.make_mut().join(black_box(&src));
            black_box(snapshot);
        });

        // Re-joining a clock that is already subsumed: the redundant-join
        // cost the monotone-join stamp cache exists to avoid. An O(n) scan
        // that discovers there is nothing to do.
        let unchanged = clock_of_width(n);
        let mut dst = clock_of_width(n);
        dst.join(&unchanged);
        bench.measure(&format!("join_copy/rejoin_unchanged/{n}"), None, || {
            dst.join(black_box(&unchanged));
        });
    }

    // The fast path PACER buys with versions: a single slot compare,
    // independent of thread count.
    let mut vv = VersionVector::new();
    vv.set(ThreadId::new(400), 9);
    let ve = VersionEpoch::at(5, ThreadId::new(400));
    bench.measure("version_epoch_leq", None, || {
        black_box(black_box(ve).leq(black_box(&vv)));
    });

    // Companion snapshot: the operation mix a detector actually drives
    // these primitives with, from an untimed observed replay.
    let trace = pacer_trace::gen::insert_sampling_periods(
        &pacer_trace::gen::GenConfig::small(7).generate(),
        0.03,
        200,
        1,
    );
    let mut obs = pacer_obs::Observed::new(
        pacer_core::PacerDetector::new(),
        pacer_obs::Registry::enabled(pacer_obs::RegistryConfig::default()),
    );
    pacer_trace::Detector::run(&mut obs, &trace);
    let (_, registry) = obs.finish();
    bench.write_metrics_snapshot(&registry.metrics().to_json());

    bench.finish();
}
