//! Micro-benchmarks of the clock primitives: the `O(1)` vs `O(n)`
//! distinction everything else rests on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pacer_clock::{CowClock, Epoch, ThreadId, VectorClock, VersionEpoch, VersionVector};

fn clock_of_width(n: u32) -> VectorClock {
    let mut c = VectorClock::new();
    for i in 0..n {
        c.set(ThreadId::new(i), u64::from(i) + 1);
    }
    c
}

fn bench_epoch_vs_vector_compare(c: &mut Criterion) {
    let mut group = c.benchmark_group("compare");
    for &n in &[8u32, 64, 512] {
        let clock = clock_of_width(n);
        let other = clock_of_width(n);
        let epoch = Epoch::new(3, ThreadId::new(n / 2));
        group.bench_with_input(BenchmarkId::new("epoch_leq_clock", n), &n, |b, _| {
            b.iter(|| black_box(epoch).leq_clock(black_box(&clock)));
        });
        group.bench_with_input(BenchmarkId::new("vector_leq_vector", n), &n, |b, _| {
            b.iter(|| black_box(&other).leq(black_box(&clock)));
        });
    }
    group.finish();
}

fn bench_join_and_copy(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_copy");
    for &n in &[8u32, 64, 512] {
        let src = clock_of_width(n);
        group.bench_with_input(BenchmarkId::new("join", n), &n, |b, _| {
            let mut dst = clock_of_width(n);
            b.iter(|| dst.join(black_box(&src)));
        });
        let cow = CowClock::new(clock_of_width(n));
        group.bench_with_input(BenchmarkId::new("shallow_copy", n), &n, |b, _| {
            b.iter(|| black_box(cow.shallow_copy()));
        });
        group.bench_with_input(BenchmarkId::new("deep_copy", n), &n, |b, _| {
            b.iter(|| black_box(cow.deep_copy()));
        });
    }
    group.finish();
}

fn bench_version_check(c: &mut Criterion) {
    // The fast path PACER buys with versions: a single slot compare,
    // independent of thread count.
    let mut vv = VersionVector::new();
    vv.set(ThreadId::new(400), 9);
    let ve = VersionEpoch::at(5, ThreadId::new(400));
    c.bench_function("version_epoch_leq", |b| {
        b.iter(|| black_box(ve).leq(black_box(&vv)));
    });
}

criterion_group!(
    benches,
    bench_epoch_vs_vector_compare,
    bench_join_and_copy,
    bench_version_check
);
criterion_main!(benches);
