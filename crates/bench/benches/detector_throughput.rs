//! Trace-replay throughput of each detector (events/second).
//!
//! Generic ≪ FastTrack is the FASTTRACK paper's headline; PACER below a
//! few percent should sit near its r = 0 floor, far under FASTTRACK.
//!
//! Emits `BENCH_detector_throughput.json`. The `context` section carries
//! the pre-`IdMap` baseline (HashMap-keyed metadata, same workload, same
//! machine class) so the slab migration's speedup is recorded next to the
//! current numbers.

use std::hint::black_box;

use pacer_bench::Bench;
use pacer_core::PacerDetector;
use pacer_fasttrack::{FastTrackDetector, GenericDetector};
use pacer_trace::gen::{insert_sampling_periods, GenConfig};
use pacer_trace::{Detector, Trace};

/// events/sec measured on this workload immediately before the
/// HashMap → IdMap state migration (same harness, same seed).
const PRE_IDMAP_BASELINE: &[(&str, f64)] = &[
    ("replay/generic", 14_620_544.0),
    ("replay/fasttrack", 17_691_004.0),
    ("replay/pacer@0%", 57_561_270.0),
    ("replay/pacer@3%", 50_307_745.0),
    ("replay/pacer@100%", 12_579_983.0),
];

fn replay_trace() -> Trace {
    GenConfig::small(7)
        .with_threads(12)
        .with_ops_per_thread(2_000)
        .with_lock_discipline(0.85)
        .generate()
}

fn main() {
    let mut bench = Bench::from_args("detector_throughput", std::env::args().skip(1));

    let base = replay_trace();
    let sampled_3 = insert_sampling_periods(&base, 0.03, 200, 1);
    let sampled_100 = insert_sampling_periods(&base, 1.0, 200, 1);
    let events = base.len() as u64;

    bench.measure("replay/generic", Some(events), || {
        let mut d = GenericDetector::new();
        d.run(black_box(&base));
        black_box(d.races().len());
    });
    bench.measure("replay/fasttrack", Some(events), || {
        let mut d = FastTrackDetector::new();
        d.run(black_box(&base));
        black_box(d.races().len());
    });
    bench.measure("replay/pacer@0%", Some(events), || {
        let mut d = PacerDetector::new();
        d.run(black_box(&base));
        black_box(d.races().len());
    });
    bench.measure("replay/pacer@3%", Some(events), || {
        let mut d = PacerDetector::new();
        d.run(black_box(&sampled_3));
        black_box(d.races().len());
    });
    bench.measure("replay/pacer@100%", Some(events), || {
        let mut d = PacerDetector::new();
        d.run(black_box(&sampled_100));
        black_box(d.races().len());
    });

    // Untimed observed pass over the 3% workload: the snapshot documents
    // what the timed replays actually did (operation mix, space).
    let mut obs = pacer_obs::Observed::new(
        PacerDetector::new(),
        pacer_obs::Registry::enabled(pacer_obs::RegistryConfig::default()),
    );
    obs.run(&sampled_3);
    let (_, registry) = obs.finish();
    bench.write_metrics_snapshot(&registry.metrics().to_json());

    let baseline = PRE_IDMAP_BASELINE
        .iter()
        .map(|(id, eps)| format!("\"{id}\": {eps}"))
        .collect::<Vec<_>>()
        .join(", ");
    bench.context_json("baseline_events_per_sec", format!("{{ {baseline} }}"));
    for m in bench.results().to_vec() {
        if let (Some(eps), Some((_, base_eps))) = (
            m.events_per_sec,
            PRE_IDMAP_BASELINE.iter().find(|(id, _)| *id == m.id),
        ) {
            eprintln!(
                "{:<40} {:>6.2}x vs pre-IdMap baseline",
                m.id,
                eps / base_eps
            );
        }
    }
    bench.finish();
}
