//! Trace-replay throughput of each detector (events/second).
//!
//! Generic ≪ FastTrack is the FASTTRACK paper's headline; PACER below a
//! few percent should sit near its r = 0 floor, far under FASTTRACK.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use pacer_core::PacerDetector;
use pacer_fasttrack::{FastTrackDetector, GenericDetector};
use pacer_trace::gen::{insert_sampling_periods, GenConfig};
use pacer_trace::{Detector, Trace};

fn replay_trace() -> Trace {
    GenConfig::small(7)
        .with_threads(12)
        .with_ops_per_thread(2_000)
        .with_lock_discipline(0.85)
        .generate()
}

fn bench_detectors(c: &mut Criterion) {
    let base = replay_trace();
    let sampled_3 = insert_sampling_periods(&base, 0.03, 200, 1);
    let sampled_100 = insert_sampling_periods(&base, 1.0, 200, 1);
    let events = base.len() as u64;

    let mut group = c.benchmark_group("replay");
    group.throughput(Throughput::Elements(events));
    group.sample_size(20);

    group.bench_with_input(BenchmarkId::new("generic", events), &base, |b, t| {
        b.iter(|| {
            let mut d = GenericDetector::new();
            d.run(black_box(t));
            black_box(d.races().len())
        });
    });
    group.bench_with_input(BenchmarkId::new("fasttrack", events), &base, |b, t| {
        b.iter(|| {
            let mut d = FastTrackDetector::new();
            d.run(black_box(t));
            black_box(d.races().len())
        });
    });
    group.bench_with_input(BenchmarkId::new("pacer@0%", events), &base, |b, t| {
        b.iter(|| {
            let mut d = PacerDetector::new();
            d.run(black_box(t));
            black_box(d.races().len())
        });
    });
    group.bench_with_input(
        BenchmarkId::new("pacer@3%", events),
        &sampled_3,
        |b, t| {
            b.iter(|| {
                let mut d = PacerDetector::new();
                d.run(black_box(t));
                black_box(d.races().len())
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("pacer@100%", events),
        &sampled_100,
        |b, t| {
            b.iter(|| {
                let mut d = PacerDetector::new();
                d.run(black_box(t));
                black_box(d.races().len())
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_detectors);
criterion_main!(benches);
