//! Ablation: PACER with and without the version-epoch fast path (§3.2).
//!
//! Measures *pure analysis time* by replaying pre-recorded event streams
//! (no interpreter in the loop — end-to-end numbers would bury the join
//! cost under instruction dispatch). The fast path pays in proportion to
//! thread count: with 9 threads an O(n) join is nanoseconds and the
//! version bookkeeping roughly breaks even; with ~100 threads skipping
//! O(n) joins wins clearly — the paper's scalability argument (§2.4).
//! Emits `BENCH_version_ablation.json`.

use std::hint::black_box;

use pacer_bench::Bench;
use pacer_core::PacerDetector;
use pacer_runtime::{Vm, VmConfig};
use pacer_trace::{Detector, RecordingDetector, Trace};
use pacer_workloads::{adversarial, hsqldb, xalan, Scale, Workload};

fn record(workload: &Workload, rate: f64) -> Trace {
    let compiled = workload.compiled();
    let mut rec = RecordingDetector::new();
    let cfg = VmConfig::new(3).with_sampling_rate(rate);
    Vm::run(&compiled, &mut rec, &cfg).expect("workload runs");
    rec.into_trace()
}

/// A pure synchronization workload: `threads` workers take turns on one
/// lock for `rounds` rounds, outside any sampling period. After the clocks
/// converge, every acquire is redundant — the version fast path turns each
/// into an O(1) check, while without it every acquire pays an O(threads)
/// comparison. This is Table 3's "non-sampling fast joins" column in
/// isolation.
fn lock_convergence_trace(threads: u32, rounds: u32) -> Trace {
    use pacer_clock::ThreadId;
    use pacer_trace::{Action, LockId};
    let mut trace = Trace::new();
    let main = ThreadId::new(0);
    for t in 1..=threads {
        trace.push(Action::Fork {
            t: main,
            u: ThreadId::new(t),
        });
    }
    let m = LockId::new(0);
    for _ in 0..rounds {
        for t in 1..=threads {
            trace.push(Action::Acquire {
                t: ThreadId::new(t),
                m,
            });
            trace.push(Action::Release {
                t: ThreadId::new(t),
                m,
            });
        }
    }
    for t in 1..=threads {
        trace.push(Action::Join {
            t: main,
            u: ThreadId::new(t),
        });
    }
    trace
}

fn main() {
    let mut bench = Bench::from_args("version_ablation", std::env::args().skip(1));

    for (name, workload) in [
        ("xalan-9threads", xalan(Scale::Test)),
        ("hsqldb-103threads", hsqldb(Scale::Small)),
        ("adversarial-churn", adversarial(Scale::Test)),
    ] {
        let trace = record(&workload, 0.03);
        let events = trace.len() as u64;
        for (label, enabled) in [("with-versions", true), ("no-versions", false)] {
            bench.measure(&format!("versions/{name}/{label}"), Some(events), || {
                let mut det = PacerDetector::new().with_version_fast_path(enabled);
                det.run(black_box(&trace));
                black_box(det.races().len());
            });
        }
    }

    for threads in [8u32, 64, 256] {
        let trace = lock_convergence_trace(threads, 40);
        let events = trace.len() as u64;
        for (label, enabled) in [("with-versions", true), ("no-versions", false)] {
            bench.measure(
                &format!("converged-joins/{threads}threads/{label}"),
                Some(events),
                || {
                    let mut det = PacerDetector::new().with_version_fast_path(enabled);
                    det.run(black_box(&trace));
                    black_box(det.stats().joins.non_sampling_fast);
                },
            );
        }
    }

    // Untimed observed pass over one recorded workload trace: the snapshot
    // records the join/copy mix the ablation is about.
    let trace = record(&xalan(Scale::Test), 0.03);
    let mut obs = pacer_obs::Observed::new(
        PacerDetector::new(),
        pacer_obs::Registry::enabled(pacer_obs::RegistryConfig::default()),
    );
    obs.run(&trace);
    let (_, registry) = obs.finish();
    bench.write_metrics_snapshot(&registry.metrics().to_json());

    bench.finish();
}
