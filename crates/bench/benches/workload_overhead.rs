//! End-to-end workload overhead per instrumentation configuration — the
//! Criterion counterpart of Figures 7–9.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pacer_core::PacerDetector;
use pacer_runtime::{InstrumentMode, NullDetector, Vm, VmConfig};
use pacer_workloads::{all, Scale};

fn bench_workloads(c: &mut Criterion) {
    for w in all(Scale::Test) {
        let program = w.compiled();
        let mut group = c.benchmark_group(format!("workload/{}", w.name));
        group.sample_size(20);

        group.bench_function(BenchmarkId::from_parameter("base"), |b| {
            let cfg = VmConfig::new(1).with_instrument(InstrumentMode::Off);
            b.iter(|| {
                let mut det = NullDetector;
                black_box(Vm::run(&program, &mut det, &cfg).expect("runs"))
            });
        });
        group.bench_function(BenchmarkId::from_parameter("om+sync"), |b| {
            let cfg = VmConfig::new(1).with_instrument(InstrumentMode::SyncOnly);
            b.iter(|| {
                let mut det = PacerDetector::new();
                black_box(Vm::run(&program, &mut det, &cfg).expect("runs"))
            });
        });
        for rate in [0.0, 0.01, 0.03, 0.25, 1.0] {
            let label = format!("pacer@{}%", rate * 100.0);
            group.bench_function(BenchmarkId::from_parameter(label), |b| {
                let cfg = VmConfig::new(1).with_sampling_rate(rate);
                b.iter(|| {
                    let mut det = PacerDetector::new();
                    black_box(Vm::run(&program, &mut det, &cfg).expect("runs"))
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
