//! End-to-end workload overhead per instrumentation configuration — the
//! bench counterpart of Figures 7–9. Emits `BENCH_workload_overhead.json`.

use std::hint::black_box;

use pacer_bench::Bench;
use pacer_core::PacerDetector;
use pacer_runtime::{InstrumentMode, NullDetector, Vm, VmConfig};
use pacer_workloads::{all, Scale};

fn main() {
    let mut bench = Bench::from_args("workload_overhead", std::env::args().skip(1));

    for w in all(Scale::Test) {
        let program = w.compiled();

        let cfg = VmConfig::new(1).with_instrument(InstrumentMode::Off);
        bench.measure(&format!("workload/{}/base", w.name), None, || {
            let mut det = NullDetector;
            black_box(Vm::run(&program, &mut det, &cfg).expect("runs"));
        });

        let cfg = VmConfig::new(1).with_instrument(InstrumentMode::SyncOnly);
        bench.measure(&format!("workload/{}/om+sync", w.name), None, || {
            let mut det = PacerDetector::new();
            black_box(Vm::run(&program, &mut det, &cfg).expect("runs"));
        });

        for rate in [0.0, 0.01, 0.03, 0.25, 1.0] {
            let cfg = VmConfig::new(1).with_sampling_rate(rate);
            let label = format!("workload/{}/pacer@{}%", w.name, rate * 100.0);
            bench.measure(&label, None, || {
                let mut det = PacerDetector::new();
                black_box(Vm::run(&program, &mut det, &cfg).expect("runs"));
            });
        }
    }

    // Untimed observed trials (one per workload, pacer@3%) merged into the
    // companion snapshot; the timed loops above stay on bare detectors.
    let mut metrics = pacer_obs::Metrics::default();
    for w in all(Scale::Test) {
        let trial = pacer_harness::observed::run_observed_trial(
            &w.compiled(),
            pacer_harness::DetectorKind::Pacer { rate: 0.03 },
            1,
            65_536,
        )
        .expect("workload runs");
        metrics.merge(&trial.metrics);
    }
    bench.write_metrics_snapshot(&metrics.to_json());

    bench.finish();
}
