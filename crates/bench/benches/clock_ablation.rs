//! Ablation: the clock-representation layers, toggled one at a time.
//!
//! The storage overhaul has three layers. Packed epochs are a type-level
//! change (an `Epoch` *is* one `u64`) and cannot be toggled at runtime —
//! `clock_ops` measures those primitives directly. The other two are
//! runtime-switchable plumbing, which this bench stacks up on the
//! full-rate replay where clock traffic dominates:
//!
//! - `baseline`     — no arena, no join cache: every deep copy and
//!   clone-on-write hits the global allocator, every redundant join that
//!   misses the version fast path pays O(n).
//! - `+arena`       — deep copies and clone-on-writes draw recycled
//!   storage from the trial's [`pacer_clock::ClockArena`].
//! - `+join-cache`  — additionally, the monotone-join stamp cache turns
//!   re-joins of unchanged sync-object clocks into O(1) stamp compares.
//!
//! In PACER the version fast path already absorbs most redundant joins,
//! so the cache rides on top of rule 4; its isolated value shows in the
//! FASTTRACK rows, where no version machinery exists and every re-read
//! of a hot volatile otherwise pays an O(threads) join.
//!
//! Emits `BENCH_clock_ablation.json`. `ci.sh` replays this bench in
//! `--quick` mode and fails if any stacked layer falls more than 10%
//! behind the in-run baseline — the layers must pay for themselves.

use std::hint::black_box;

use pacer_bench::Bench;
use pacer_clock::ThreadId;
use pacer_core::PacerDetector;
use pacer_fasttrack::FastTrackDetector;
use pacer_trace::gen::{insert_sampling_periods, GenConfig};
use pacer_trace::{Action, Detector, LockId, Trace, VolatileId};

fn replay_trace() -> Trace {
    GenConfig::small(7)
        .with_threads(12)
        .with_ops_per_thread(2_000)
        .with_lock_discipline(0.85)
        .generate()
}

/// A hot read-mostly volatile: one writer publishes once, then every
/// worker re-reads it for `rounds` rounds. After the first read per
/// worker the volatile's clock is unchanged and already subsumed, so
/// each re-read is a redundant O(threads) join — unless the join cache
/// collapses it to a stamp compare. (A lock round-robin would not show
/// this: every release re-stamps the lock, so every acquire misses.)
fn read_mostly_volatile_trace(threads: u32, rounds: u32) -> Trace {
    let mut trace = Trace::new();
    let main = ThreadId::new(0);
    for t in 1..=threads {
        trace.push(Action::Fork {
            t: main,
            u: ThreadId::new(t),
        });
    }
    // One warm-up round on a lock so every worker's clock has full width.
    let m = LockId::new(0);
    for t in 1..=threads {
        trace.push(Action::Acquire {
            t: ThreadId::new(t),
            m,
        });
        trace.push(Action::Release {
            t: ThreadId::new(t),
            m,
        });
    }
    let v = VolatileId::new(0);
    trace.push(Action::VolWrite { t: main, v });
    for _ in 0..rounds {
        for t in 1..=threads {
            trace.push(Action::VolRead {
                t: ThreadId::new(t),
                v,
            });
        }
    }
    trace
}

fn main() {
    let mut bench = Bench::from_args("clock_ablation", std::env::args().skip(1));

    // Committed pre-overhaul full-rate cost, for the speedup record
    // (BENCH_detector_throughput.json at the previous change).
    bench.context_json(
        "pre_overhaul_pacer_full_rate_ns_per_event",
        "56.0".to_string(),
    );

    let base = replay_trace();
    let sampled_100 = insert_sampling_periods(&base, 1.0, 200, 1);
    let events = base.len() as u64;

    type Layer = (&'static str, bool, bool); // (label, arena, join cache)
    const LAYERS: &[Layer] = &[
        ("baseline", false, false),
        ("+arena", true, false),
        ("+join-cache", true, true),
    ];

    for &(label, arena, cache) in LAYERS {
        bench.measure(&format!("pacer@100%/{label}"), Some(events), || {
            let mut d = PacerDetector::new()
                .with_clock_arena(arena)
                .with_join_cache(cache);
            d.run(black_box(&sampled_100));
            black_box(d.races().len());
        });
    }

    // The same stack under FASTTRACK on read-mostly volatile traffic,
    // where the cache is the only thing standing between a re-read and an
    // O(threads) join.
    for threads in [8u32, 64] {
        let trace = read_mostly_volatile_trace(threads, 40);
        let ft_events = trace.len() as u64;
        for &(label, arena, cache) in LAYERS {
            bench.measure(
                &format!("fasttrack-hot-volatile/{threads}threads/{label}"),
                Some(ft_events),
                || {
                    let mut d = FastTrackDetector::new()
                        .with_clock_arena(arena)
                        .with_join_cache(cache);
                    d.run(black_box(&trace));
                    black_box(d.races().len());
                },
            );
        }
    }

    // Untimed identity check doubling as the metrics snapshot: the layers
    // are plumbing, so every stack must report the same analysis.
    let mut reference: Option<(usize, String)> = None;
    for &(label, arena, cache) in LAYERS {
        let mut obs = pacer_obs::Observed::new(
            PacerDetector::new()
                .with_clock_arena(arena)
                .with_join_cache(cache),
            pacer_obs::Registry::enabled(pacer_obs::RegistryConfig::default()),
        );
        obs.run(&sampled_100);
        let (det, registry) = obs.finish();
        let fingerprint = (det.races().len(), format!("{:?}", det.stats()));
        match &reference {
            None => {
                reference = Some(fingerprint);
                bench.write_metrics_snapshot(&registry.metrics().to_json());
            }
            Some(expected) => assert_eq!(
                *expected, fingerprint,
                "clock layer `{label}` changed analysis results"
            ),
        }
    }

    bench.finish();
}
