//! Encode/decode throughput and size of the binary trace codec vs the
//! text format (`TRACE_FORMAT.md`).
//!
//! Emits `BENCH_trace_codec.json`. The context section records bytes/event
//! for both encodings and the compression ratio — the format spec promises
//! binary at least 3x smaller than text on realistic traces.

use std::hint::black_box;

use pacer_bench::Bench;
use pacer_trace::binary::{decode_trace, encode_trace};
use pacer_trace::gen::{insert_sampling_periods, GenConfig};
use pacer_trace::{Trace, TraceReader};

fn main() {
    let mut bench = Bench::from_args("trace_codec", std::env::args().skip(1));

    let base = GenConfig::small(7)
        .with_threads(12)
        .with_ops_per_thread(2_000)
        .with_lock_discipline(0.85)
        .generate();
    let trace = insert_sampling_periods(&base, 0.03, 200, 1);
    let events = trace.len() as u64;
    let binary = encode_trace(&trace);
    let text = trace.to_text();

    bench.measure("encode/binary", Some(events), || {
        black_box(encode_trace(black_box(&trace)).len());
    });
    bench.measure("encode/text", Some(events), || {
        black_box(trace.to_text().len());
    });
    bench.measure("decode/binary", Some(events), || {
        black_box(decode_trace(black_box(&binary)).unwrap().len());
    });
    bench.measure("decode/binary-streaming", Some(events), || {
        // The bounded-memory path `pacer replay` uses: no trace vector.
        let reader = TraceReader::new(std::io::Cursor::new(black_box(&binary[..]))).unwrap();
        let mut n = 0u64;
        for item in reader {
            item.unwrap();
            n += 1;
        }
        black_box(n);
    });
    bench.measure("decode/text", Some(events), || {
        black_box(Trace::parse(black_box(&text)).unwrap().len());
    });

    let bin_bpe = binary.len() as f64 / events as f64;
    let text_bpe = text.len() as f64 / events as f64;
    bench.context_json(
        "bytes_per_event",
        format!("{{ \"binary\": {bin_bpe:.4}, \"text\": {text_bpe:.4} }}"),
    );
    bench.context_json(
        "compression_ratio_text_over_binary",
        format!("{:.4}", text_bpe / bin_bpe),
    );
    bench.context_json("events", format!("{events}"));
    eprintln!(
        "binary {bin_bpe:.2} B/event vs text {text_bpe:.2} B/event ({:.2}x smaller)",
        text_bpe / bin_bpe
    );
    bench.finish();
}
