//! Tables 1–3.

use std::fmt::Write as _;

use pacer_harness::census::{effective_rates, operation_counts, threads_and_races};
use pacer_harness::detection::RaceCensus;
use pacer_harness::render;
use pacer_runtime::VmError;
use pacer_workloads::all;

use super::{ExpConfig, ACCURACY_RATES};

/// Table 1: effective sampling rates (± one standard deviation) for
/// specified PACER sampling rates.
///
/// # Errors
///
/// Propagates the first VM error.
pub fn table1(cfg: &ExpConfig) -> Result<String, VmError> {
    let trials = (10 / cfg.trial_divisor).max(5);
    let mut rows = Vec::new();
    for w in all(cfg.scale) {
        let program = w.compiled();
        let mut row = vec![w.name.to_string()];
        for &rate in ACCURACY_RATES {
            let r = effective_rates(&program, rate, trials, cfg.base_seed)?;
            row.push(format!("{:.1}±{:.1}", r.mean * 100.0, r.std_dev * 100.0));
        }
        rows.push(row);
    }
    let mut out = String::from(
        "Table 1: effective sampling rates (%) for specified rates\n\
         (paper: effective tracks specified closely at every rate)\n\n",
    );
    let headers: Vec<String> = std::iter::once("program".to_string())
        .chain(ACCURACY_RATES.iter().map(|r| format!("r={}%", r * 100.0)))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    out.push_str(&render::table(&headers_ref, &rows));
    Ok(out)
}

/// Table 2: thread counts and race counts.
///
/// The "∀r" column unions the distinct races seen across additional
/// *sampled* trials (the paper's 1,234-sampled-trials column): sampling
/// different slices of different schedules keeps turning up races the
/// fully sampled census missed.
///
/// # Errors
///
/// Propagates the first VM error.
pub fn table2(cfg: &ExpConfig) -> Result<String, VmError> {
    let trials = cfg.full_rate_trials();
    let mut rows = Vec::new();
    for w in all(cfg.scale) {
        let program = w.compiled();
        let census = RaceCensus::collect(&program, trials, cfg.base_seed)?;
        let row = threads_and_races(&program, &census, cfg.base_seed)?;
        // Union with sampled trials across several rates (the ∀r column).
        let mut all_races: std::collections::BTreeSet<_> =
            census.races_with_at_least(1).into_iter().collect();
        let mut sampled_trials = 0u32;
        for &rate in &[0.01, 0.10, 0.25] {
            let n = (cfg.trials_at(rate) / 2).max(4);
            sampled_trials += n;
            let results = pacer_harness::parallel::try_run_indexed(n as usize, |i| {
                pacer_harness::trials::run_trial(
                    &program,
                    pacer_harness::DetectorKind::Pacer { rate },
                    cfg.base_seed + 7907 * (i as u64) + (rate * 1e4) as u64,
                )
            })?;
            for r in &results {
                all_races.extend(r.distinct_races.iter().copied());
            }
        }
        rows.push(vec![
            w.name.to_string(),
            row.threads_total.to_string(),
            row.max_live.to_string(),
            all_races.len().to_string(),
            row.races_ge1.to_string(),
            row.races_ge5.to_string(),
            row.races_ge_half.to_string(),
        ]);
        let _ = sampled_trials;
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2: thread counts and distinct race counts ({trials} fully sampled trials;\n\
         the ∀r column adds sampled trials at r = 1/10/25%)"
    );
    let _ = writeln!(
        out,
        "(races in ≥ half the full trials are the evaluation races; gaps to ∀r/≥1 show rare races)\n"
    );
    out.push_str(&render::table(
        &[
            "program",
            "total",
            "max live",
            "∀r ≥1",
            "full ≥1",
            "≥5",
            "≥half",
        ],
        &rows,
    ));
    Ok(out)
}

/// Table 3: counts of vector-clock joins and copies, and read/write
/// operations, for PACER at a 3% sampling rate (per-trial averages).
///
/// # Errors
///
/// Propagates the first VM error.
pub fn table3(cfg: &ExpConfig) -> Result<String, VmError> {
    let trials = (10 / cfg.trial_divisor).max(3);
    let mut join_rows = Vec::new();
    let mut copy_rows = Vec::new();
    let mut read_rows = Vec::new();
    let mut write_rows = Vec::new();
    for w in all(cfg.scale) {
        let program = w.compiled();
        let s = operation_counts(&program, 0.03, trials, cfg.base_seed)?;
        join_rows.push(vec![
            w.name.to_string(),
            s.joins.sampling_slow.to_string(),
            s.joins.sampling_fast.to_string(),
            s.joins.non_sampling_slow.to_string(),
            s.joins.non_sampling_fast.to_string(),
        ]);
        copy_rows.push(vec![
            w.name.to_string(),
            s.copies.sampling_deep.to_string(),
            s.copies.sampling_shallow.to_string(),
            s.copies.non_sampling_deep.to_string(),
            s.copies.non_sampling_shallow.to_string(),
        ]);
        read_rows.push(vec![
            w.name.to_string(),
            s.reads.sampling_slow.to_string(),
            s.reads.non_sampling_slow.to_string(),
            s.reads.non_sampling_fast.to_string(),
        ]);
        write_rows.push(vec![
            w.name.to_string(),
            s.writes.sampling_slow.to_string(),
            s.writes.non_sampling_slow.to_string(),
            s.writes.non_sampling_fast.to_string(),
        ]);
    }
    let mut out = String::from(
        "Table 3: operation counts for PACER at r = 3% (per-trial averages)\n\
         (paper: non-sampling joins almost all fast; non-sampling copies all shallow;\n\
          non-sampling accesses almost all fast-path)\n\n",
    );
    out.push_str("VC joins:\n");
    out.push_str(&render::table(
        &[
            "program",
            "samp slow",
            "samp fast",
            "non-samp slow",
            "non-samp fast",
        ],
        &join_rows,
    ));
    out.push_str("\nVC copies:\n");
    out.push_str(&render::table(
        &[
            "program",
            "samp deep",
            "samp shallow",
            "non-samp deep",
            "non-samp shallow",
        ],
        &copy_rows,
    ));
    out.push_str("\nReads:\n");
    out.push_str(&render::table(
        &["program", "samp slow", "non-samp slow", "non-samp fast"],
        &read_rows,
    ));
    out.push_str("\nWrites:\n");
    out.push_str(&render::table(
        &["program", "samp slow", "non-samp slow", "non-samp fast"],
        &write_rows,
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_renders_all_workloads() {
        let out = table1(&ExpConfig::quick()).unwrap();
        for name in ["eclipse", "hsqldb", "xalan", "pseudojbb"] {
            assert!(out.contains(name), "missing {name}:\n{out}");
        }
        assert!(out.contains("r=1%"));
    }

    #[test]
    fn table3_shows_shallow_non_sampling_copies() {
        let out = table3(&ExpConfig::quick()).unwrap();
        assert!(out.contains("VC joins"));
        assert!(out.contains("VC copies"));
        // Every workload row's non-sampling deep-copy column should be 0;
        // cheap sanity: the word "shallow" header exists and output parses.
        assert!(out.contains("non-samp shallow"));
    }
}
