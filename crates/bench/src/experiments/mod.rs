//! One function per table and figure of the evaluation.

mod extras;
mod figures;
mod tables;

pub use extras::{ablation, fleet};
pub use figures::{fig10, fig3, fig4, fig5, fig6, fig7, fig8, fig9};
pub use tables::{table1, table2, table3};

use pacer_workloads::Scale;

/// The sampling rates the paper's accuracy experiments sweep.
pub const ACCURACY_RATES: &[f64] = &[0.01, 0.03, 0.05, 0.10, 0.25];

/// Experiment sizing.
#[derive(Clone, Copy, Debug)]
pub struct ExpConfig {
    /// Workload scale.
    pub scale: Scale,
    /// Divides the paper's trial counts (1 = the full §5.1 formula).
    pub trial_divisor: u32,
    /// Base RNG seed; change it to re-run with fresh schedules.
    pub base_seed: u64,
}

impl ExpConfig {
    /// Fast smoke configuration (seconds per experiment).
    pub fn quick() -> Self {
        ExpConfig {
            scale: Scale::Test,
            trial_divisor: 25,
            base_seed: 20_100_601,
        }
    }

    /// Default reproduction configuration (tens of seconds per
    /// experiment).
    pub fn small() -> Self {
        ExpConfig {
            scale: Scale::Small,
            trial_divisor: 10,
            base_seed: 20_100_601,
        }
    }

    /// The paper's full trial counts (minutes per experiment).
    pub fn full() -> Self {
        ExpConfig {
            scale: Scale::Small,
            trial_divisor: 1,
            base_seed: 20_100_601,
        }
    }

    /// Trials for a sampled run at `rate`, after dividing the §5.1
    /// formula (never below 6).
    pub fn trials_at(&self, rate: f64) -> u32 {
        (pacer_harness::num_trials(rate) / self.trial_divisor).max(6)
    }

    /// Trials for fully sampled censuses (the paper's 50).
    pub fn full_rate_trials(&self) -> u32 {
        (50 / self.trial_divisor).max(6)
    }
}

/// The experiments the `reproduce` binary can run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Experiment {
    /// Table 1: effective vs specified sampling rates.
    Table1,
    /// Table 2: thread counts and race counts.
    Table2,
    /// Table 3: operation counts at r = 3%.
    Table3,
    /// Figure 3: dynamic detection rate vs sampling rate.
    Fig3,
    /// Figure 4: distinct detection rate vs sampling rate.
    Fig4,
    /// Figure 5: per-race detection rates.
    Fig5,
    /// Figure 6: LITERACE per-race detection on eclipse.
    Fig6,
    /// Figure 7: overhead breakdown r = 0–3%.
    Fig7,
    /// Figure 8: slowdown vs r = 0–100%.
    Fig8,
    /// Figure 9: slowdown vs r = 0–10%.
    Fig9,
    /// Figure 10: space over normalized time.
    Fig10,
    /// Extension: distributed-debugging fleet simulation.
    Fleet,
    /// Extension: version fast path + accordion ablations.
    Ablation,
}

impl Experiment {
    /// Every experiment, in presentation order.
    pub const ALL: &'static [Experiment] = &[
        Experiment::Table1,
        Experiment::Table2,
        Experiment::Table3,
        Experiment::Fig3,
        Experiment::Fig4,
        Experiment::Fig5,
        Experiment::Fig6,
        Experiment::Fig7,
        Experiment::Fig8,
        Experiment::Fig9,
        Experiment::Fig10,
        Experiment::Fleet,
        Experiment::Ablation,
    ];

    /// Parses a command-line name (`"table1"`, `"fig10"`, …).
    pub fn parse(name: &str) -> Option<Experiment> {
        Some(match name.to_ascii_lowercase().as_str() {
            "table1" => Experiment::Table1,
            "table2" => Experiment::Table2,
            "table3" => Experiment::Table3,
            "fig3" => Experiment::Fig3,
            "fig4" => Experiment::Fig4,
            "fig5" => Experiment::Fig5,
            "fig6" => Experiment::Fig6,
            "fig7" => Experiment::Fig7,
            "fig8" => Experiment::Fig8,
            "fig9" => Experiment::Fig9,
            "fig10" => Experiment::Fig10,
            "fleet" => Experiment::Fleet,
            "ablation" => Experiment::Ablation,
            _ => return None,
        })
    }

    /// The command-line name.
    pub fn name(&self) -> &'static str {
        match self {
            Experiment::Table1 => "table1",
            Experiment::Table2 => "table2",
            Experiment::Table3 => "table3",
            Experiment::Fig3 => "fig3",
            Experiment::Fig4 => "fig4",
            Experiment::Fig5 => "fig5",
            Experiment::Fig6 => "fig6",
            Experiment::Fig7 => "fig7",
            Experiment::Fig8 => "fig8",
            Experiment::Fig9 => "fig9",
            Experiment::Fig10 => "fig10",
            Experiment::Fleet => "fleet",
            Experiment::Ablation => "ablation",
        }
    }

    /// Runs the experiment, returning its rendered text.
    ///
    /// # Errors
    ///
    /// Returns the error text of the first failed VM run.
    pub fn run(&self, cfg: &ExpConfig) -> Result<String, String> {
        let go = |r: Result<String, pacer_runtime::VmError>| r.map_err(|e| e.to_string());
        match self {
            Experiment::Table1 => go(table1(cfg)),
            Experiment::Table2 => go(table2(cfg)),
            Experiment::Table3 => go(table3(cfg)),
            Experiment::Fig3 => go(fig3(cfg)),
            Experiment::Fig4 => go(fig4(cfg)),
            Experiment::Fig5 => go(fig5(cfg)),
            Experiment::Fig6 => go(fig6(cfg)),
            Experiment::Fig7 => go(fig7(cfg)),
            Experiment::Fig8 => go(fig8(cfg)),
            Experiment::Fig9 => go(fig9(cfg)),
            Experiment::Fig10 => go(fig10(cfg)),
            Experiment::Fleet => go(fleet(cfg)),
            Experiment::Ablation => go(ablation(cfg)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_names_round_trip() {
        for &e in Experiment::ALL {
            assert_eq!(Experiment::parse(e.name()), Some(e));
        }
        assert_eq!(Experiment::parse("TABLE1"), Some(Experiment::Table1));
        assert_eq!(Experiment::parse("nope"), None);
    }

    #[test]
    fn trial_counts_scale_down() {
        let quick = ExpConfig::quick();
        let full = ExpConfig::full();
        assert_eq!(full.trials_at(0.01), 500);
        assert!(quick.trials_at(0.01) < 50);
        assert!(quick.trials_at(0.01) >= 6);
        assert_eq!(full.full_rate_trials(), 50);
    }
}
