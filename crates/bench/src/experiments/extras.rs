//! Extension experiments: fleet deployment and design-choice ablations.

use std::fmt::Write as _;

use pacer_core::PacerDetector;
use pacer_harness::detection::RaceCensus;
use pacer_harness::fleet::simulate_fleet;
use pacer_harness::render;
use pacer_harness::trials::{run_trial, DetectorKind};
use pacer_runtime::{Vm, VmConfig, VmError};
use pacer_trace::Detector;
use pacer_workloads::{adversarial, eclipse, hsqldb, xalan};

use super::ExpConfig;

/// Fleet simulation: many deployed instances, each sampling at a low rate,
/// with reports aggregated centrally (§1's distributed-debugging vision).
///
/// # Errors
///
/// Propagates the first VM error.
pub fn fleet(cfg: &ExpConfig) -> Result<String, VmError> {
    let mut out = String::from(
        "Fleet simulation: distinct evaluation races found by N deployed instances\n\
         (claim: with enough instances the odds of finding every race become high)\n\n",
    );
    let sizes = [5u32, 20, 80];
    for w in [eclipse(cfg.scale), hsqldb(cfg.scale)] {
        let program = w.compiled();
        let census = RaceCensus::collect(&program, cfg.full_rate_trials(), cfg.base_seed)?;
        let eval = census.evaluation_races();
        for rate in [0.01, 0.03] {
            let mut row_pts = Vec::new();
            for &n in &sizes {
                let report = simulate_fleet(&program, n, rate, cfg.base_seed)?;
                row_pts.push((n as f64, report.coverage(&eval)));
            }
            out.push_str(&render::series(
                &format!("fleet {} r={}% coverage", w.name, rate * 100.0),
                &row_pts,
            ));
        }
    }
    Ok(out)
}

/// Ablations of PACER's design choices:
///
/// 1. **Version fast path off** — every join pays `O(n)`; detection is
///    unchanged but slow-join counts explode (§3.2's key optimization).
/// 2. **Accordion clocks** — thread-slot reuse shrinks clock width on the
///    thread-churning hsqldb workload (§5.1's suggested production fix).
/// 3. **Adversarial churn** — the workload §3.2 worries about: constant
///    thread creation defeats version caching even with it enabled.
///
/// # Errors
///
/// Propagates the first VM error.
pub fn ablation(cfg: &ExpConfig) -> Result<String, VmError> {
    let mut out = String::from("Ablations\n\n");

    // 1. Version fast path.
    let program = xalan(cfg.scale).compiled();
    let mut with = PacerDetector::new();
    let mut without = PacerDetector::new().with_version_fast_path(false);
    let vm_cfg = VmConfig::new(cfg.base_seed).with_sampling_rate(0.03);
    Vm::run(&program, &mut with, &vm_cfg)?;
    Vm::run(&program, &mut without, &vm_cfg)?;
    let _ = writeln!(
        out,
        "1. version fast path (xalan, r=3%):\n\
         \x20  with:    non-sampling joins slow={} fast={}  races={}\n\
         \x20  without: non-sampling joins slow={} fast={}  races={}\n\
         \x20  (detection identical; without versions every join is O(n))\n",
        with.stats().joins.non_sampling_slow,
        with.stats().joins.non_sampling_fast,
        with.races().len(),
        without.stats().joins.non_sampling_slow,
        without.stats().joins.non_sampling_fast,
        without.races().len(),
    );

    // 2. Accordion clocks on the thread-churning workload.
    let w = hsqldb(cfg.scale);
    let program = w.compiled();
    let plain = run_trial(&program, DetectorKind::Pacer { rate: 0.03 }, cfg.base_seed)?;
    let mut accordion = pacer_core::AccordionPacerDetector::new();
    let vm_cfg = VmConfig::new(cfg.base_seed).with_sampling_rate(0.03);
    Vm::run(&program, &mut accordion, &vm_cfg)?;
    let _ = writeln!(
        out,
        "2. accordion clocks (hsqldb, r=3%):\n\
         \x20  threads started:      {}\n\
         \x20  accordion slots used: {}\n\
         \x20  races: plain={} accordion={}\n",
        plain.outcome.threads_started,
        accordion.slots_in_use(),
        plain.dynamic_races.len(),
        accordion.races().len(),
    );

    // 3. Adversarial churn.
    let program = adversarial(cfg.scale).compiled();
    let mut det = PacerDetector::new();
    Vm::run(
        &program,
        &mut det,
        &VmConfig::new(cfg.base_seed).with_sampling_rate(0.03),
    )?;
    let frac = det.stats().non_sampling_fast_join_fraction().unwrap_or(0.0);
    let _ = writeln!(
        out,
        "3. adversarial thread churn (r=3%):\n\
         \x20  non-sampling fast-join fraction: {}\n\
         \x20  (steady workloads sit near 100%; churn keeps delivering new versions)",
        render::pct(frac),
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_reports_all_three_sections() {
        let out = ablation(&ExpConfig::quick()).unwrap();
        assert!(out.contains("version fast path"));
        assert!(out.contains("accordion clocks"));
        assert!(out.contains("adversarial"));
    }

    #[test]
    fn fleet_coverage_series_render() {
        let out = fleet(&ExpConfig::quick()).unwrap();
        assert!(out.contains("fleet eclipse"));
        assert!(out.contains("fleet hsqldb"));
    }
}
