//! Figures 3–10.

use std::fmt::Write as _;

use pacer_harness::detection::{measure_detection, RaceCensus};
use pacer_harness::overhead::measure_overhead;
use pacer_harness::render;
use pacer_harness::space::{measure_space, SpaceConfig};
use pacer_harness::trials::{run_trial, DetectorKind};
use pacer_runtime::VmError;
use pacer_workloads::{all, eclipse};

use super::{ExpConfig, ACCURACY_RATES};

struct DetectionSweep {
    name: &'static str,
    /// (rate, dynamic detection rate, distinct detection rate)
    points: Vec<(f64, f64, f64)>,
    /// Per-race distinct rates at each sampled rate, sorted descending.
    per_race_sorted: Vec<(f64, Vec<f64>)>,
}

fn detection_sweep(cfg: &ExpConfig) -> Result<Vec<DetectionSweep>, VmError> {
    let mut sweeps = Vec::new();
    for w in all(cfg.scale) {
        let program = w.compiled();
        let census = RaceCensus::collect(&program, cfg.full_rate_trials(), cfg.base_seed)?;
        let eval = census.evaluation_races();
        if eval.is_empty() {
            continue;
        }
        let mut points = Vec::new();
        let mut per_race_sorted = Vec::new();
        for &rate in ACCURACY_RATES {
            let result = measure_detection(
                &program,
                DetectorKind::Pacer { rate },
                rate,
                &census,
                &eval,
                cfg.trials_at(rate),
                cfg.base_seed + (rate * 10_000.0) as u64,
            )?;
            points.push((rate, result.dynamic_rate, result.distinct_rate));
            let mut rates: Vec<f64> = result.per_race.values().copied().collect();
            rates.sort_by(|a, b| b.partial_cmp(a).expect("rates are finite"));
            per_race_sorted.push((rate, rates));
        }
        sweeps.push(DetectionSweep {
            name: w.name,
            points,
            per_race_sorted,
        });
    }
    Ok(sweeps)
}

/// Figure 3: PACER's accuracy on *dynamic* races — detection rate vs
/// sampling rate, per benchmark.
///
/// # Errors
///
/// Propagates the first VM error.
pub fn fig3(cfg: &ExpConfig) -> Result<String, VmError> {
    let sweeps = detection_sweep(cfg)?;
    let mut out = String::from(
        "Figure 3: dynamic-race detection rate vs specified sampling rate\n\
         (paper: points lie near the diagonal y = x)\n\n",
    );
    for s in &sweeps {
        let pts: Vec<(f64, f64)> = s.points.iter().map(|&(r, d, _)| (r, d)).collect();
        out.push_str(&render::series(&format!("fig3 {}", s.name), &pts));
    }
    Ok(out)
}

/// Figure 4: PACER's accuracy on *distinct* races.
///
/// # Errors
///
/// Propagates the first VM error.
pub fn fig4(cfg: &ExpConfig) -> Result<String, VmError> {
    let sweeps = detection_sweep(cfg)?;
    let mut out = String::from(
        "Figure 4: distinct-race detection rate vs specified sampling rate\n\
         (paper: slightly above the diagonal — repeated dynamic occurrences help)\n\n",
    );
    for s in &sweeps {
        let pts: Vec<(f64, f64)> = s.points.iter().map(|&(r, _, d)| (r, d)).collect();
        out.push_str(&render::series(&format!("fig4 {}", s.name), &pts));
    }
    Ok(out)
}

/// Figure 5: per-distinct-race detection rate, races sorted by rate, one
/// series per sampling rate, per benchmark.
///
/// # Errors
///
/// Propagates the first VM error.
pub fn fig5(cfg: &ExpConfig) -> Result<String, VmError> {
    let sweeps = detection_sweep(cfg)?;
    let mut out = String::from(
        "Figure 5: per-distinct-race detection rates (sorted per rate)\n\
         (paper: nearly every race detected at least once at every rate;\n\
          average per-race rate tracks the sampling rate)\n\n",
    );
    for s in &sweeps {
        for (rate, rates) in &s.per_race_sorted {
            let pts: Vec<(f64, f64)> = rates
                .iter()
                .enumerate()
                .map(|(i, &y)| (i as f64, y))
                .collect();
            out.push_str(&render::series(
                &format!("fig5 {} r={}%", s.name, rate * 100.0),
                &pts,
            ));
        }
    }
    Ok(out)
}

/// Figure 6: LITERACE's per-distinct-race detection rate for eclipse.
///
/// # Errors
///
/// Propagates the first VM error.
pub fn fig6(cfg: &ExpConfig) -> Result<String, VmError> {
    let w = eclipse(cfg.scale);
    let program = w.compiled();
    let census = RaceCensus::collect(&program, cfg.full_rate_trials(), cfg.base_seed)?;
    let eval = census.evaluation_races();
    let trials = cfg.trials_at(0.01);
    let mut detected: std::collections::BTreeMap<_, u32> = eval.iter().map(|&k| (k, 0)).collect();
    let mut eff_sum = 0.0;
    // The paper's burst of 1,000 is proportioned to eclipse's billions of
    // accesses; our scaled workloads execute 10⁴–10⁶, so the burst scales
    // down with them to keep the same bursts-per-region ratio.
    let burst = match cfg.scale {
        pacer_workloads::Scale::Test | pacer_workloads::Scale::Small => 10,
        pacer_workloads::Scale::Paper => 50,
    };
    let results = pacer_harness::parallel::try_run_indexed(trials as usize, |i| {
        run_trial(
            &program,
            DetectorKind::LiteRace { burst },
            cfg.base_seed + 13 * i as u64,
        )
    })?;
    for r in &results {
        eff_sum += r.effective_rate.unwrap_or(0.0);
        for key in &r.distinct_races {
            if let Some(c) = detected.get_mut(key) {
                *c += 1;
            }
        }
    }
    let mut rates: Vec<f64> = detected
        .values()
        .map(|&c| c as f64 / trials as f64)
        .collect();
    rates.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    let never = rates.iter().filter(|&&r| r == 0.0).count();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 6: LITERACE per-distinct-race detection for eclipse\n\
         (paper: finds some races often but never reports several hot–hot races)\n"
    );
    let _ = writeln!(
        out,
        "trials={trials}  effective-rate={}  eval-races={}  never-detected={never}\n",
        render::pct(eff_sum / trials as f64),
        rates.len()
    );
    let pts: Vec<(f64, f64)> = rates
        .iter()
        .enumerate()
        .map(|(i, &y)| (i as f64, y))
        .collect();
    out.push_str(&render::series(
        &format!("fig6 eclipse literace(b={burst})"),
        &pts,
    ));
    Ok(out)
}

const FIG7_RATES: [f64; 2] = [0.01, 0.03];

/// Figure 7: PACER overhead breakdown for r = 0–3%.
///
/// # Errors
///
/// Propagates the first VM error.
pub fn fig7(cfg: &ExpConfig) -> Result<String, VmError> {
    let trials = (20 / cfg.trial_divisor).max(5);
    let mut rows = Vec::new();
    for w in all(cfg.scale) {
        let program = w.compiled();
        let kinds = [
            DetectorKind::SyncOnly,
            DetectorKind::Pacer { rate: 0.0 },
            DetectorKind::Pacer {
                rate: FIG7_RATES[0],
            },
            DetectorKind::Pacer {
                rate: FIG7_RATES[1],
            },
        ];
        let profile = measure_overhead(&program, &kinds, trials, cfg.base_seed)?;
        let mut row = vec![
            w.name.to_string(),
            format!("{:.1}ms", profile.base.as_secs_f64() * 1000.0),
        ];
        row.extend(profile.points.iter().map(|p| render::slowdown(p.slowdown)));
        rows.push(row);
    }
    let mut out = String::from(
        "Figure 7: overhead breakdown (slowdown vs uninstrumented; median of trials)\n\
         (paper: OM+sync ≈1.15x, PACER r=0 ≈1.33x, r=1% ≈1.52x, r=3% ≈1.86x)\n\n",
    );
    out.push_str(&render::table(
        &[
            "program",
            "base",
            "om+sync",
            "pacer r=0%",
            "pacer r=1%",
            "pacer r=3%",
        ],
        &rows,
    ));
    Ok(out)
}

fn slowdown_sweep(cfg: &ExpConfig, rates: &[f64], title: &str) -> Result<String, VmError> {
    let trials = (20 / cfg.trial_divisor).max(5);
    let mut out = format!("{title}\n\n");
    for w in all(cfg.scale) {
        let program = w.compiled();
        let kinds: Vec<DetectorKind> = rates
            .iter()
            .map(|&rate| DetectorKind::Pacer { rate })
            .collect();
        let profile = measure_overhead(&program, &kinds, trials, cfg.base_seed)?;
        let pts: Vec<(f64, f64)> = rates
            .iter()
            .zip(&profile.points)
            .map(|(&r, p)| (r, p.slowdown))
            .collect();
        out.push_str(&render::series(&format!("slowdown {}", w.name), &pts));
    }
    Ok(out)
}

/// Figure 8: slowdown vs sampling rate, r = 0–100%.
///
/// # Errors
///
/// Propagates the first VM error.
pub fn fig8(cfg: &ExpConfig) -> Result<String, VmError> {
    slowdown_sweep(
        cfg,
        &[0.0, 0.01, 0.03, 0.05, 0.10, 0.25, 0.50, 0.75, 1.0],
        "Figure 8: slowdown vs sampling rate (0–100%)\n\
         (paper: roughly linear; 12x at 100% in their implementation)",
    )
}

/// Figure 9: slowdown vs sampling rate, zoomed to r = 0–10%.
///
/// # Errors
///
/// Propagates the first VM error.
pub fn fig9(cfg: &ExpConfig) -> Result<String, VmError> {
    slowdown_sweep(
        cfg,
        &[0.0, 0.01, 0.02, 0.03, 0.05, 0.07, 0.10],
        "Figure 9: slowdown vs sampling rate (0–10% zoom)\n\
         (paper: overhead grows smoothly from 1.33x at r=0)",
    )
}

/// Figure 10: total live space over normalized time for eclipse.
///
/// # Errors
///
/// Propagates the first VM error.
pub fn fig10(cfg: &ExpConfig) -> Result<String, VmError> {
    let program = eclipse(cfg.scale).compiled();
    let configs = [
        SpaceConfig::Base,
        SpaceConfig::ObjectMetadataOnly,
        SpaceConfig::Pacer { rate: 0.01 },
        SpaceConfig::Pacer { rate: 0.03 },
        SpaceConfig::Pacer { rate: 0.10 },
        SpaceConfig::Pacer { rate: 1.0 },
        SpaceConfig::FastTrack,
        SpaceConfig::LiteRace { burst: 1000 },
    ];
    let mut out = String::from(
        "Figure 10: live space over normalized time (eclipse, single trial each)\n\
         (paper: PACER's space scales with the rate; LITERACE's stays near 100%)\n\n",
    );
    for config in configs {
        let points = measure_space(&program, config, cfg.base_seed)?;
        let last_step = points.last().map_or(1, |p| p.steps).max(1);
        let pts: Vec<(f64, f64)> = points
            .iter()
            .map(|p| (p.steps as f64 / last_step as f64, p.total() as f64 / 1024.0))
            .collect();
        out.push_str(&render::series(
            &format!("fig10 eclipse {} (KB)", config.label()),
            &pts,
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_series_lie_near_the_diagonal_direction() {
        // With quick settings just assert the output renders and detection
        // grows with the rate on at least one workload.
        let out = fig3(&ExpConfig::quick()).unwrap();
        assert!(out.contains("fig3"));
    }

    #[test]
    fn fig7_renders_all_columns() {
        let out = fig7(&ExpConfig::quick()).unwrap();
        assert!(out.contains("om+sync"));
        assert!(out.contains("pacer r=3%"));
    }

    #[test]
    fn fig10_has_every_curve() {
        let out = fig10(&ExpConfig::quick()).unwrap();
        for label in ["base", "om-only", "pacer@1%", "fasttrack", "literace"] {
            assert!(out.contains(label), "missing {label}");
        }
    }
}
