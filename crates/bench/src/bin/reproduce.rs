//! Regenerates the paper's tables and figures.
//!
//! ```text
//! reproduce [EXPERIMENT..] [--quick|--small|--full] [--seed N] [--jobs N]
//!           [--metrics-out PATH] [--trace-out PATH]
//!
//! EXPERIMENT: table1 table2 table3 fig3 fig4 fig5 fig6 fig7 fig8 fig9
//!             fig10 fleet ablation all      (default: all)
//! --quick : tiny workloads, few trials (smoke test, seconds)
//! --small : default — small workloads, paper trial counts ÷ 10
//! --full  : the §5.1 trial counts (slow)
//! --jobs N: worker threads for the trial engine (default 1; results are
//!           bit-identical at any value — overhead timing stays sequential)
//! --metrics-out PATH: after the experiments, run one observed PACER trial
//!           per workload at r = 3% and write the merged metrics snapshot
//!           (JSON; schema in OBSERVABILITY.md)
//! --trace-out PATH: write those trials' structured event traces (JSONL)
//! ```

use std::process::ExitCode;

use pacer_bench::{ExpConfig, Experiment};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ExpConfig::small();
    let mut chosen: Vec<Experiment> = Vec::new();
    let mut run_all = false;
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--metrics-out" => {
                i += 1;
                match args.get(i) {
                    Some(path) => metrics_out = Some(path.clone()),
                    None => {
                        eprintln!("--metrics-out requires a path");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--trace-out" => {
                i += 1;
                match args.get(i) {
                    Some(path) => trace_out = Some(path.clone()),
                    None => {
                        eprintln!("--trace-out requires a path");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--quick" => cfg = ExpConfig::quick(),
            "--small" => cfg = ExpConfig::small(),
            "--full" => cfg = ExpConfig::full(),
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(seed) => cfg.base_seed = seed,
                    None => {
                        eprintln!("--seed requires an integer");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--jobs" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(jobs) if jobs > 0 => pacer_harness::parallel::set_jobs(jobs),
                    _ => {
                        eprintln!("--jobs requires a positive integer");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "all" => run_all = true,
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            name => match Experiment::parse(name) {
                Some(e) => chosen.push(e),
                None => {
                    eprintln!("unknown experiment `{name}`");
                    print_usage();
                    return ExitCode::FAILURE;
                }
            },
        }
        i += 1;
    }
    if chosen.is_empty() || run_all {
        chosen = Experiment::ALL.to_vec();
    }

    for e in chosen {
        let started = std::time::Instant::now();
        eprintln!("== running {} ...", e.name());
        match e.run(&cfg) {
            Ok(text) => {
                println!("================ {} ================", e.name());
                println!("{text}");
                eprintln!(
                    "== {} done in {:.1}s",
                    e.name(),
                    started.elapsed().as_secs_f64()
                );
            }
            Err(msg) => {
                eprintln!("experiment {} failed: {msg}", e.name());
                return ExitCode::FAILURE;
            }
        }
    }

    if metrics_out.is_some() || trace_out.is_some() {
        if let Err(msg) = write_observability(&cfg, metrics_out.as_deref(), trace_out.as_deref()) {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// One observed PACER trial per workload at the paper's r = 3%, metrics
/// merged (and traces concatenated) in workload order — deterministic for
/// a given seed and scale.
fn write_observability(
    cfg: &ExpConfig,
    metrics_out: Option<&str>,
    trace_out: Option<&str>,
) -> Result<(), String> {
    let mut metrics = pacer_obs::Metrics::default();
    let mut jsonl = String::new();
    for w in pacer_workloads::all(cfg.scale) {
        let trial = pacer_harness::observed::run_observed_trial(
            &w.compiled(),
            pacer_harness::DetectorKind::Pacer { rate: 0.03 },
            cfg.base_seed,
            65_536,
        )
        .map_err(|e| format!("observed trial of {} failed: {e}", w.name))?;
        metrics.merge(&trial.metrics);
        jsonl.push_str(&trial.events_jsonl);
    }
    if let Some(path) = metrics_out {
        std::fs::write(path, metrics.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = trace_out {
        std::fs::write(path, &jsonl).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn print_usage() {
    eprintln!(
        "usage: reproduce [EXPERIMENT..] [--quick|--small|--full] [--seed N] [--jobs N]\n\
         \x20                [--metrics-out PATH] [--trace-out PATH]\n\
         experiments: {} all",
        Experiment::ALL
            .iter()
            .map(|e| e.name())
            .collect::<Vec<_>>()
            .join(" ")
    );
}
