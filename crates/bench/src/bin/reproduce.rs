//! Regenerates the paper's tables and figures.
//!
//! ```text
//! reproduce [EXPERIMENT..] [--quick|--small|--full] [--seed N] [--jobs N]
//!           [--metrics-out PATH] [--trace-out PATH]
//!           [--checkpoint JOURNAL] [--resume JOURNAL]
//!           [--mem-budget BYTES] [--deadline-events N]
//!           [--rate-ladder-governor R,R,...]
//!
//! EXPERIMENT: table1 table2 table3 fig3 fig4 fig5 fig6 fig7 fig8 fig9
//!             fig10 fleet ablation all      (default: all)
//! --quick : tiny workloads, few trials (smoke test, seconds)
//! --small : default — small workloads, paper trial counts ÷ 10
//! --full  : the §5.1 trial counts (slow)
//! --jobs N: worker threads for the trial engine (default 1; results are
//!           bit-identical at any value — overhead timing stays sequential)
//! --metrics-out PATH: after the experiments, run one observed PACER trial
//!           per workload at r = 3% and write the merged metrics snapshot
//!           (JSON; schema in OBSERVABILITY.md)
//! --trace-out PATH: write those trials' structured event traces (JSONL)
//! --checkpoint JOURNAL: append each finished experiment's output to a
//!           crash-safe journal as it completes (RESILIENCE.md)
//! --resume JOURNAL: reprint finished experiments from the journal and
//!           run only the missing ones; keeps checkpointing to the same
//!           journal unless --checkpoint names another path
//! --mem-budget / --deadline-events: arm the resource governor for the
//!           observability pass (RESILIENCE.md, 'Graceful degradation'):
//!           hard budgets on detector metadata bytes / executed steps,
//!           enforced by stepping the sampling rate down a ladder at GC
//!           boundaries (--rate-ladder-governor overrides the default
//!           halving ladder)
//! ```

use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

use pacer_bench::{ExpConfig, Experiment};
use pacer_collections::JsonValue;
use pacer_harness::journal::{read_journal, rewrite_valid_prefix, JournalWriter};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ExpConfig::small();
    let mut chosen: Vec<Experiment> = Vec::new();
    let mut run_all = false;
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut checkpoint: Option<String> = None;
    let mut resume: Option<String> = None;
    let mut mem_budget: Option<u64> = None;
    let mut deadline_events: Option<u64> = None;
    let mut governor_ladder: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--metrics-out" => {
                i += 1;
                match args.get(i) {
                    Some(path) => metrics_out = Some(path.clone()),
                    None => {
                        eprintln!("--metrics-out requires a path");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--trace-out" => {
                i += 1;
                match args.get(i) {
                    Some(path) => trace_out = Some(path.clone()),
                    None => {
                        eprintln!("--trace-out requires a path");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--checkpoint" => {
                i += 1;
                match args.get(i) {
                    Some(path) => checkpoint = Some(path.clone()),
                    None => {
                        eprintln!("--checkpoint requires a path");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--resume" => {
                i += 1;
                match args.get(i) {
                    Some(path) => resume = Some(path.clone()),
                    None => {
                        eprintln!("--resume requires a path");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--mem-budget" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(bytes) if bytes > 0 => mem_budget = Some(bytes),
                    _ => {
                        eprintln!("--mem-budget requires a positive byte count");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--deadline-events" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(steps) if steps > 0 => deadline_events = Some(steps),
                    _ => {
                        eprintln!("--deadline-events requires a positive step count");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--rate-ladder-governor" => {
                i += 1;
                match args.get(i) {
                    Some(spec) => governor_ladder = Some(spec.clone()),
                    None => {
                        eprintln!("--rate-ladder-governor requires a comma-separated list");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--quick" => cfg = ExpConfig::quick(),
            "--small" => cfg = ExpConfig::small(),
            "--full" => cfg = ExpConfig::full(),
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(seed) => cfg.base_seed = seed,
                    None => {
                        eprintln!("--seed requires an integer");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--jobs" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(jobs) if jobs > 0 => pacer_harness::parallel::set_jobs(jobs),
                    _ => {
                        eprintln!("--jobs requires a positive integer");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "all" => run_all = true,
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            name => match Experiment::parse(name) {
                Some(e) => chosen.push(e),
                None => {
                    eprintln!("unknown experiment `{name}`");
                    print_usage();
                    return ExitCode::FAILURE;
                }
            },
        }
        i += 1;
    }
    if chosen.is_empty() || run_all {
        chosen = Experiment::ALL.to_vec();
    }

    // --resume keeps checkpointing to the same journal unless --checkpoint
    // names another path (same contract as `pacer fleet`).
    let journal_path = checkpoint.or_else(|| resume.clone());
    let mut cached: BTreeMap<String, String> = BTreeMap::new();
    if let Some(path) = &resume {
        match load_experiment_journal(path, &cfg) {
            Ok(entries) => cached = entries,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut writer = match &journal_path {
        None => None,
        Some(path) => match open_experiment_journal(path, &cfg, &cached) {
            Ok(w) => Some(w),
            Err(e) => {
                eprintln!("cannot open checkpoint journal {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    for e in chosen {
        if let Some(text) = cached.get(e.name()) {
            eprintln!("== {} resumed from the journal", e.name());
            println!("================ {} ================", e.name());
            println!("{text}");
            continue;
        }
        let started = std::time::Instant::now();
        eprintln!("== running {} ...", e.name());
        match e.run(&cfg) {
            Ok(text) => {
                println!("================ {} ================", e.name());
                println!("{text}");
                eprintln!(
                    "== {} done in {:.1}s",
                    e.name(),
                    started.elapsed().as_secs_f64()
                );
                if let Some(w) = writer.as_mut() {
                    if let Err(io) = w.write_line(&encode_entry(e.name(), &cfg, &text)) {
                        eprintln!("cannot checkpoint {}: {io}", e.name());
                        return ExitCode::FAILURE;
                    }
                }
            }
            Err(msg) => {
                eprintln!("experiment {} failed: {msg}", e.name());
                return ExitCode::FAILURE;
            }
        }
    }

    // The governor arms the observability pass: budgets only make sense
    // where a detector is running under the metrics layer.
    let governor = if mem_budget.is_some() || deadline_events.is_some() {
        let mut g = pacer_governor::GovernorConfig::for_rate(0.03);
        g.mem_budget_bytes = mem_budget;
        g.deadline_events = deadline_events;
        if let Some(spec) = &governor_ladder {
            match pacer_governor::parse_ladder(spec) {
                Ok(ladder) => g.ladder = ladder,
                Err(e) => {
                    eprintln!("--rate-ladder-governor: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Err(e) = g.validate() {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        Some(g)
    } else {
        if governor_ladder.is_some() {
            eprintln!("--rate-ladder-governor requires --mem-budget or --deadline-events");
            return ExitCode::FAILURE;
        }
        None
    };

    if metrics_out.is_some() || trace_out.is_some() {
        if let Err(msg) = write_observability(
            &cfg,
            metrics_out.as_deref(),
            trace_out.as_deref(),
            governor.as_ref(),
        ) {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// The configuration fingerprint recorded with every journal entry; an
/// entry only resumes under the exact configuration that produced it.
fn config_tag(cfg: &ExpConfig) -> String {
    format!(
        "scale={:?} divisor={} seed={}",
        cfg.scale, cfg.trial_divisor, cfg.base_seed
    )
}

fn encode_entry(name: &str, cfg: &ExpConfig, text: &str) -> String {
    format!(
        "{{\"experiment\":{},\"config\":{},\"text\":{}}}",
        json_string(name),
        json_string(&config_tag(cfg)),
        json_string(text)
    )
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Reads a resume journal into `experiment name → output text`, dropping
/// only an unterminated partial tail (a crash mid-append). Corrupt
/// entries mid-file and configuration mismatches are hard errors.
fn load_experiment_journal(
    path: &str,
    cfg: &ExpConfig,
) -> Result<BTreeMap<String, String>, String> {
    let mut cached = BTreeMap::new();
    if !Path::new(path).exists() {
        return Ok(cached); // a missing journal is a fresh start
    }
    let contents =
        read_journal(Path::new(path)).map_err(|e| format!("cannot resume from {path}: {e}"))?;
    for (i, line) in contents.lines.iter().enumerate() {
        let v =
            JsonValue::parse(line).map_err(|e| format!("{path}: journal entry {}: {e}", i + 1))?;
        let name = v
            .get("experiment")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{path}: journal entry {}: missing experiment", i + 1))?;
        let tag = v
            .get("config")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{path}: journal entry {}: missing config", i + 1))?;
        if tag != config_tag(cfg) {
            return Err(format!(
                "{path}: journal entry for {name} was recorded with `{tag}` but this run is \
                 `{}`; wrong journal for this configuration",
                config_tag(cfg)
            ));
        }
        let text = v
            .get("text")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{path}: journal entry {}: missing text", i + 1))?;
        cached.insert(name.to_string(), text.to_string());
    }
    Ok(cached)
}

/// Opens the checkpoint journal for appending. When resuming, the file is
/// first rewritten to exactly the valid entries — appending after a
/// partial tail left by a crash would corrupt the next line.
fn open_experiment_journal(
    path: &str,
    cfg: &ExpConfig,
    cached: &BTreeMap<String, String>,
) -> std::io::Result<JournalWriter> {
    if cached.is_empty() {
        JournalWriter::create(Path::new(path))
    } else {
        let lines: Vec<String> = cached
            .iter()
            .map(|(name, text)| encode_entry(name, cfg, text))
            .collect();
        rewrite_valid_prefix(Path::new(path), &lines)?;
        JournalWriter::append(Path::new(path))
    }
}

/// One observed PACER trial per workload at the paper's r = 3%, metrics
/// merged (and traces concatenated) in workload order — deterministic for
/// a given seed and scale.
fn write_observability(
    cfg: &ExpConfig,
    metrics_out: Option<&str>,
    trace_out: Option<&str>,
    governor: Option<&pacer_governor::GovernorConfig>,
) -> Result<(), String> {
    let mut metrics = pacer_obs::Metrics::default();
    let mut jsonl = String::new();
    let mut counters = pacer_obs::GovernorCounters::default();
    for w in pacer_workloads::all(cfg.scale) {
        let trial = pacer_harness::observed::run_observed_trial_governed(
            &w.compiled(),
            pacer_harness::DetectorKind::Pacer { rate: 0.03 },
            cfg.base_seed,
            65_536,
            pacer_faults::TrialFaults::default(),
            governor,
        )
        .map_err(|e| format!("observed trial of {} failed: {e}", w.name))?;
        metrics.merge(&trial.metrics);
        jsonl.push_str(&trial.events_jsonl);
        if let Some(g) = &trial.governor {
            counters.steps_down += g.steps_down;
            counters.steps_up += g.steps_up;
            counters.breaches += g.breaches;
            if g.degraded() {
                counters.degraded += 1;
            }
            if g.cancelled.is_some() {
                counters.cancelled += 1;
                eprintln!(
                    "governor cancelled the {} trial at floor rate {} millionths",
                    w.name, g.final_rate_millionths
                );
            }
        }
    }
    // Governor activity is a campaign-level roll-up, mirroring the fleet
    // engine's merge.
    metrics.governor = counters;
    if let Some(path) = metrics_out {
        pacer_collections::atomic_write(path, metrics.to_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = trace_out {
        pacer_collections::atomic_write(path, &jsonl)
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn print_usage() {
    eprintln!(
        "usage: reproduce [EXPERIMENT..] [--quick|--small|--full] [--seed N] [--jobs N]\n\
         \x20                [--metrics-out PATH] [--trace-out PATH]\n\
         \x20                [--checkpoint JOURNAL] [--resume JOURNAL]\n\
         \x20                [--mem-budget BYTES] [--deadline-events N]\n\
         \x20                [--rate-ladder-governor R,R,...]\n\
         experiments: {} all",
        Experiment::ALL
            .iter()
            .map(|e| e.name())
            .collect::<Vec<_>>()
            .join(" ")
    );
}
