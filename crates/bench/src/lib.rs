//! Benchmarks and the `reproduce` binary: regenerates every table and
//! figure of the paper's evaluation (§5).
//!
//! The [`experiments`] module has one function per table/figure; the
//! `reproduce` binary dispatches on a name (`table1`, `fig3`, …, or `all`)
//! and prints the rendered result. The bench targets under `benches/` run
//! on the in-tree [`timing`] harness (no external deps, fully offline) and
//! emit machine-readable `BENCH_*.json` files at the workspace root:
//! detector throughput, clock micro-operations, end-to-end workload
//! overhead, and the version-fast-path ablation.
//!
//! Absolute numbers differ from the paper (the substrate is an interpreter,
//! not Jikes RVM on a 2009 Core 2 Quad); the *shapes* — who wins, linearity
//! in the sampling rate, where LITERACE fails — are the reproduction
//! targets. See EXPERIMENTS.md for paper-vs-measured notes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod timing;

pub use experiments::{ExpConfig, Experiment};
pub use timing::{Bench, Measurement};
