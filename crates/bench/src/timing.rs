//! A dependency-free benchmark harness: warmup, batch calibration,
//! median-of-N sampling, and machine-readable `BENCH_*.json` output.
//!
//! Replaces the external criterion dependency so the perf trajectory can
//! be measured fully offline. Each bench target builds a [`Bench`], calls
//! [`Bench::measure`] per case, prints the human-readable table, and
//! writes `BENCH_<name>.json` at the workspace root:
//!
//! ```json
//! {
//!   "bench": "detector_throughput",
//!   "schema": 1,
//!   "results": [
//!     { "id": "replay/fasttrack", "batch": 1, "samples": 11,
//!       "median_ns": 1.2e7, "min_ns": 1.1e7, "mean_ns": 1.25e7,
//!       "events": 24000, "ns_per_event": 500.0,
//!       "events_per_sec": 2.0e6 }
//!   ],
//!   "context": { "baseline_events_per_sec": { "replay/fasttrack": 1.4e6 } }
//! }
//! ```
//!
//! Timing methodology: a case is first run repeatedly to calibrate a batch
//! size whose wall time exceeds a floor (amortizing timer resolution and
//! warming caches/branch predictors), then `samples` batches are timed and
//! the per-iteration **median** is reported — robust to scheduler noise in
//! a way a mean is not. `min_ns` and `mean_ns` are recorded too so the
//! JSON consumer can judge dispersion.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// One measured case.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Case identifier, e.g. `"replay/fasttrack"`.
    pub id: String,
    /// Iterations per timed batch (calibrated).
    pub batch: u64,
    /// Timed batches.
    pub samples: usize,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Fastest per-iteration time observed.
    pub min_ns: f64,
    /// Mean per-iteration time.
    pub mean_ns: f64,
    /// Work items (events) processed per iteration, when meaningful.
    pub events: Option<u64>,
    /// `median_ns / events`.
    pub ns_per_event: Option<f64>,
    /// `events / median_seconds`.
    pub events_per_sec: Option<f64>,
}

/// A benchmark run: a named collection of measurements plus free-form
/// context entries, serializable to `BENCH_<name>.json`.
#[derive(Debug)]
pub struct Bench {
    name: String,
    samples: usize,
    min_batch_time: Duration,
    results: Vec<Measurement>,
    context: Vec<(String, String)>,
}

impl Bench {
    /// Creates a harness for bench target `name`, honoring `--quick` and
    /// `--samples N` from `args` (pass `std::env::args().skip(1)`).
    pub fn from_args(name: &str, args: impl Iterator<Item = String>) -> Self {
        let mut bench = Bench::new(name);
        let args: Vec<String> = args.collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => {
                    bench.samples = 5;
                    bench.min_batch_time = Duration::from_millis(1);
                }
                "--samples" => {
                    i += 1;
                    if let Some(n) = args.get(i).and_then(|s| s.parse().ok()) {
                        bench.samples = n;
                    }
                }
                // `cargo bench` forwards its own flags (e.g. --bench); ignore.
                _ => {}
            }
            i += 1;
        }
        bench
    }

    /// Creates a harness with default sampling (11 samples, ≥ 5 ms
    /// batches).
    #[must_use]
    pub fn new(name: &str) -> Self {
        Bench {
            name: name.to_string(),
            samples: 11,
            min_batch_time: Duration::from_millis(5),
            results: Vec::new(),
            context: Vec::new(),
        }
    }

    /// Overrides the number of timed batches.
    #[must_use]
    pub fn with_samples(mut self, samples: usize) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Records a free-form context entry emitted under `"context"` in the
    /// JSON. `value` must already be valid JSON (a number, string, or
    /// object).
    pub fn context_json(&mut self, key: &str, value: String) {
        self.context.push((key.to_string(), value));
    }

    /// Times `f`, reporting per-iteration statistics; `events` is the
    /// number of work items one `f()` call processes (enables ns/event
    /// and events/sec).
    pub fn measure(&mut self, id: &str, events: Option<u64>, mut f: impl FnMut()) {
        // Calibrate: grow the batch until one batch exceeds the time
        // floor. This doubles as warmup.
        let mut batch: u64 = 1;
        let mut last;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            last = t.elapsed();
            if last >= self.min_batch_time || batch >= 1 << 28 {
                break;
            }
            // Aim ~2× past the floor to converge in few rounds.
            let scale = (2.0 * self.min_batch_time.as_secs_f64() / last.as_secs_f64().max(1e-9))
                .ceil() as u64;
            batch = batch.saturating_mul(scale.clamp(2, 64));
        }

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;

        let m = Measurement {
            id: id.to_string(),
            batch,
            samples: self.samples,
            median_ns: median,
            min_ns: min,
            mean_ns: mean,
            events,
            ns_per_event: events.map(|e| median / e as f64),
            events_per_sec: events.map(|e| e as f64 / (median * 1e-9)),
        };
        eprintln!("{}", render_row(&m));
        self.results.push(m);
    }

    /// Measurements recorded so far.
    #[must_use]
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Renders the human-readable result table.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.name);
        for m in &self.results {
            let _ = writeln!(out, "{}", render_row(m));
        }
        out
    }

    /// Serializes the run to JSON (schema above).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"bench\": {},", json_string(&self.name));
        out.push_str("  \"schema\": 1,\n");
        out.push_str("  \"results\": [\n");
        for (i, m) in self.results.iter().enumerate() {
            let _ = write!(
                out,
                "    {{ \"id\": {}, \"batch\": {}, \"samples\": {}, \
                 \"median_ns\": {}, \"min_ns\": {}, \"mean_ns\": {}",
                json_string(&m.id),
                m.batch,
                m.samples,
                json_f64(m.median_ns),
                json_f64(m.min_ns),
                json_f64(m.mean_ns),
            );
            if let Some(e) = m.events {
                let _ = write!(
                    out,
                    ", \"events\": {}, \"ns_per_event\": {}, \"events_per_sec\": {}",
                    e,
                    json_f64(m.ns_per_event.unwrap_or(0.0)),
                    json_f64(m.events_per_sec.unwrap_or(0.0)),
                );
            }
            out.push_str(" }");
            if i + 1 < self.results.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");
        out.push_str("  \"context\": {");
        for (i, (k, v)) in self.context.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, " {}: {}", json_string(k), v);
        }
        out.push_str(" }\n}\n");
        out
    }

    /// Writes `BENCH_<name>.json` into `dir`, returning the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.name));
        pacer_collections::atomic_write(&path, self.to_json())?;
        Ok(path)
    }

    /// Writes a companion observability snapshot,
    /// `BENCH_<name>.metrics.json`, next to the `BENCH_<name>.json` this
    /// bench produces, and prints where.
    ///
    /// `metrics_json` is the serialized `pacer_obs::Metrics::to_json()`
    /// output of an **untimed** observed pass over the bench workload —
    /// timed loops stay on bare detectors, so observability costs the
    /// measured path nothing.
    ///
    /// # Panics
    ///
    /// Panics on filesystem errors (bench targets have no caller to
    /// propagate to).
    pub fn write_metrics_snapshot(&self, metrics_json: &str) {
        let path = workspace_root().join(format!("BENCH_{}.metrics.json", self.name));
        pacer_collections::atomic_write(&path, metrics_json).expect("write BENCH metrics json");
        println!("wrote {}", path.display());
    }

    /// Writes `BENCH_<name>.json` at the workspace root and prints where.
    ///
    /// # Panics
    ///
    /// Panics on filesystem errors (bench targets have no caller to
    /// propagate to).
    pub fn finish(&self) {
        let path = self
            .write_json(&workspace_root())
            .expect("write BENCH json");
        println!("{}", self.render_text());
        println!("wrote {}", path.display());
    }
}

/// The workspace root (two levels above this crate's manifest).
#[must_use]
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn render_row(m: &Measurement) -> String {
    let mut row = format!(
        "{:<40} median {:>12} (min {:>12})",
        m.id,
        fmt_ns(m.median_ns),
        fmt_ns(m.min_ns)
    );
    if let (Some(npe), Some(eps)) = (m.ns_per_event, m.events_per_sec) {
        let _ = write!(row, "  {npe:>8.1} ns/event  {:>10.0} events/s", eps);
    }
    row
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_sane_statistics() {
        let mut b = Bench::new("selftest").with_samples(3);
        b.min_batch_time = Duration::from_micros(200);
        let mut acc = 0u64;
        b.measure("spin", Some(100), || {
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc);
        });
        let m = &b.results()[0];
        assert!(m.median_ns > 0.0);
        assert!(m.min_ns <= m.median_ns);
        assert_eq!(m.events, Some(100));
        assert!(m.events_per_sec.unwrap() > 0.0);
        assert!(m.batch >= 1);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mut b = Bench::new("jsontest").with_samples(1);
        b.min_batch_time = Duration::from_micros(10);
        b.measure("noop\"quoted\"", None, || {
            std::hint::black_box(1 + 1);
        });
        b.context_json("note", "\"hello\"".to_string());
        let json = b.to_json();
        assert!(json.contains("\"bench\": \"jsontest\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"note\": \"hello\""));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        // Balanced braces/brackets (no nested strings with braces here).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn quick_flag_reduces_samples() {
        let b = Bench::from_args("argtest", ["--quick".to_string()].into_iter());
        assert_eq!(b.samples, 5);
        let b = Bench::from_args(
            "argtest",
            ["--samples".to_string(), "7".to_string()].into_iter(),
        );
        assert_eq!(b.samples, 7);
    }
}
