//! Async-signal-safe drain coordination for `pacer serve`.
//!
//! The standard library exposes no signal API and the workspace takes no
//! external dependencies, so this module carries the suite's only
//! `unsafe`: two raw libc bindings — `signal(2)` to install the handler
//! and `_exit(2)` for the hard-stop path. The handler body touches only
//! an `AtomicU32` and `_exit`, both async-signal-safe, so it can never
//! deadlock against the interrupted thread.
//!
//! Lifecycle (SERVICE.md, "Drain and shutdown"):
//!
//! * first SIGINT/SIGTERM — sets the drain flag; the accept loop stops
//!   admitting, in-flight sessions finish and checkpoint, and the
//!   process exits through the normal transcript path (exit 0 when no
//!   session was rejected);
//! * second SIGINT/SIGTERM — the run is taking too long to drain:
//!   hard-stop immediately with exit code 2. The checksummed journal
//!   tolerates the torn final write (`--resume` drops it).

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU32, Ordering};

/// POSIX signal numbers (stable across the unix targets we build for).
const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

type SigHandler = extern "C" fn(i32);

extern "C" {
    fn signal(signum: i32, handler: SigHandler) -> usize;
    fn _exit(code: i32) -> !;
}

/// 0 = running; nonzero = drain requested by a signal.
static DRAIN: AtomicU32 = AtomicU32::new(0);

extern "C" fn on_signal(_signum: i32) {
    if DRAIN.swap(1, Ordering::SeqCst) != 0 {
        // Second signal: hard stop. `_exit` skips destructors and
        // buffered output by design — the journal line framing makes a
        // torn final write recoverable.
        unsafe { _exit(2) };
    }
}

/// Installs the drain handler for SIGINT and SIGTERM. Idempotent; call
/// once before entering a serve transport loop.
pub fn arm_drain() {
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// True once a drain has been requested. Transports poll this between
/// accepts (daemon) or frames (framed stdin) and stop admitting.
pub fn drain_requested() -> bool {
    DRAIN.load(Ordering::SeqCst) != 0
}
