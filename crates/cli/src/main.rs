//! The `pacer` binary: see [`pacer_cli::run`] for the command reference.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match pacer_cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            // 0 = clean, 2 = completed with quarantined trials.
            ExitCode::from(output.code)
        }
        Err(e) => {
            eprintln!("pacer: {e}");
            ExitCode::FAILURE
        }
    }
}
