//! Implementation of the `pacer` command-line tool.
//!
//! Subcommands (see [`run`] for dispatch):
//!
//! ```text
//! pacer run <file> [--rate R] [--seed N] [--detector D] [--trace OUT]
//!     Compile and execute a mini-language program under a race detector.
//!     D ∈ {pacer, pacer-accordion, fasttrack, generic, literace, none}.
//! pacer record <file> [--rate R] [--seed N] [--out PATH] [--format F]
//!     Execute once and capture the event stream to a trace file —
//!     binary `.ptrace` by default (spec in TRACE_FORMAT.md), text with
//!     --format text — without running any detector. The capture half
//!     of the record/replay split.
//! pacer replay <file> [--detector D] [--metrics-out PATH] [--resample R]
//!     Re-analyze a recorded trace offline. Binary and text inputs are
//!     auto-detected by content; binary traces stream through the
//!     detector frame by frame (bounded memory), a truncated binary
//!     tail is reported and the complete prefix analyzed, and any
//!     corrupt frame is a hard error. --resample R overlays fresh
//!     sampling periods (mean length --resample-period, seeded by
//!     --seed) before detection, so one recorded workload can be
//!     replayed at many rates.
//! pacer check <file>
//!     Parse, analyze, and compile only; print instrumentation summary.
//! pacer fmt <file>
//!     Pretty-print the program in canonical form.
//! pacer fold <file>
//!     Constant-fold, then pretty-print.
//! pacer lint <file>
//!     Static lockset discipline check (imprecise by design: §6.2).
//! pacer fleet <file> [--instances N] [--rate R] [--seed N] [--jobs N]
//!     Simulate a deployed fleet: N instances each run the program once
//!     under PACER at rate R, race reports aggregated centrally (§1).
//!     --jobs parallelizes the instances; output is identical at any
//!     job count. With --metrics-out / --trace-out the instances run
//!     under the observability layer and the merged artifacts are
//!     written out (still byte-identical at any job count).
//!     The fleet runs on the crash-resilient engine (RESILIENCE.md):
//!     --max-retries N bounds per-trial retries, --fault-plan FILE arms
//!     a deterministic fault-injection campaign, --checkpoint JOURNAL
//!     appends each completed trial to a journal, and --resume JOURNAL
//!     restores completed trials from one (an interrupted-then-resumed
//!     run is byte-identical to an uninterrupted one). --mem-budget /
//!     --deadline-events arm the resource governor: hard budgets on
//!     detector metadata bytes and executed steps, enforced at GC
//!     boundaries by stepping the sampling rate down a ladder
//!     (--rate-ladder-governor overrides the default halving ladder),
//!     with cooperative cancellation only at the floor. Exit code 0 is
//!     a clean campaign (including rate-degraded trials), 2 is
//!     completed-with-quarantines-or-cancellations, 1 a hard error.
//! pacer serve [--socket PATH | --stdin FILE|-] [--shards N] ...
//!     Long-running streaming detection service: many concurrent trace
//!     sessions (unix-socket connections or length-framed input), each
//!     speaking the `.ptrace` stream format, demultiplexed onto a fleet
//!     of per-variable shard workers. Each session's reply is
//!     byte-identical to `pacer replay` of the same bytes; the merged
//!     transcript is byte-identical at any --shards count or arrival
//!     interleaving. --checkpoint/--resume journal completed sessions
//!     (a killed-and-resumed service reproduces the uninterrupted
//!     transcript); --mem-budget arms governor-driven admission
//!     shedding (new sessions sample at reduced rates under pressure —
//!     work is shed, never connections). `--send TRACE --socket PATH`
//!     is the client: it prints the daemon's reply verbatim. Protocol
//!     and routing rules in SERVICE.md. Exit 2 if any session was
//!     rejected.
//! pacer stats <file> [--rate R] [--seed N] [--detector D]
//!     Run once under the observability layer and print the Table 3-style
//!     operation breakdown, space accounting, and escape-analysis
//!     decisions; --metrics-out / --trace-out write the JSON snapshot
//!     and JSONL event trace (schemas in OBSERVABILITY.md).
//! pacer fuzz [--seed N] [--iters N] [--jobs N] [--rate-ladder R,R,..]
//!     Differential race-oracle fuzzing campaign: generate seeded
//!     programs, cross-check every detector against the HB oracle, and
//!     shrink any failure to a minimal reproducer (see FUZZING.md).
//!     Output is byte-identical at any --jobs count; a campaign with
//!     violations exits nonzero with the full report on stderr.
//! ```
//!
//! The library form exists so the behavior is unit-testable; `main.rs` is a
//! thin wrapper.

// `deny` rather than `forbid`: the signal module carries the suite's
// only `unsafe` (raw `signal(2)`/`_exit(2)` bindings for graceful
// drain) behind an explicit module-level allow.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod signal;

use std::fmt::Write as _;
use std::path::Path;

use pacer_core::{AccordionPacerDetector, PacerDetector};
use pacer_fasttrack::{FastTrackDetector, GenericDetector};
use pacer_faults::{FaultPlan, INJECTED_PREFIX};
use pacer_lang::ir::CompiledProgram;
use pacer_literace::{LiteRaceConfig, LiteRaceDetector};
use pacer_runtime::{InstrumentMode, NullDetector, RunOutcome, Vm, VmConfig};
use pacer_trace::{Detector, RaceReport, RecordingDetector};

/// A CLI failure: message plus suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

fn err(message: impl Into<String>) -> CliError {
    CliError {
        message: message.into(),
    }
}

/// A command's successful output: the text to print plus the process
/// exit code the wrapper should use.
///
/// Exit codes: `0` is a clean run; `2` means the command completed but
/// quarantined trials along the way (`pacer fleet` under faults); hard
/// failures surface as [`CliError`] and exit `1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CmdOutput {
    /// The text to print to stdout.
    pub text: String,
    /// Suggested process exit code.
    pub code: u8,
}

impl From<String> for CmdOutput {
    fn from(text: String) -> Self {
        CmdOutput { text, code: 0 }
    }
}

impl std::ops::Deref for CmdOutput {
    type Target = str;
    fn deref(&self) -> &str {
        &self.text
    }
}

impl std::fmt::Display for CmdOutput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Parsed command-line options.
#[derive(Clone, Debug)]
struct Options {
    rate: f64,
    seed: u64,
    detector: String,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    events_out: Option<String>,
    instances: u32,
    jobs: usize,
    iters: u64,
    schedule_seeds: u32,
    rate_ladder: Option<Vec<f64>>,
    fault_plan: Option<String>,
    max_retries: u32,
    checkpoint: Option<String>,
    resume: Option<String>,
    mem_budget: Option<u64>,
    deadline_events: Option<u64>,
    governor_ladder: Option<String>,
    out: Option<String>,
    format: Option<String>,
    record_traces: Option<String>,
    trace_dir: Option<String>,
    resample: Option<f64>,
    resample_period: usize,
    socket: Option<String>,
    send: Option<String>,
    session: Option<String>,
    stdin_frames: Option<String>,
    shards: usize,
    max_sessions: Option<u64>,
    session_deadline_events: Option<u64>,
    idle_timeout: Option<u32>,
    tcp: Option<String>,
    wal: Option<String>,
    addr_file: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            rate: 0.03,
            seed: 42,
            detector: "pacer".into(),
            trace_out: None,
            metrics_out: None,
            events_out: None,
            instances: 20,
            jobs: 1,
            iters: 100,
            schedule_seeds: 3,
            rate_ladder: None,
            fault_plan: None,
            max_retries: 1,
            checkpoint: None,
            resume: None,
            mem_budget: None,
            deadline_events: None,
            governor_ladder: None,
            out: None,
            format: None,
            record_traces: None,
            trace_dir: None,
            resample: None,
            resample_period: 50,
            socket: None,
            send: None,
            session: None,
            stdin_frames: None,
            shards: 4,
            max_sessions: None,
            session_deadline_events: None,
            idle_timeout: None,
            tcp: None,
            wal: None,
            addr_file: None,
        }
    }
}

const USAGE: &str = "\
usage: pacer <command> [args]

commands:
  run <file>     compile + execute under a detector
                 [--rate R] [--seed N] [--detector D] [--trace OUT]
  record <file>  execute once, capturing the event stream to a trace
                 file instead of running a detector (TRACE_FORMAT.md)
                 [--rate R] [--seed N] [--out PATH]
                 [--format binary|text]   (default: binary, .ptrace)
  replay <file>  re-analyze a recorded trace offline; binary (.ptrace)
                 and text traces are auto-detected by content
                 [--detector D] [--metrics-out PATH]
                 [--resample R [--resample-period N] [--seed N]]
  check <file>   compile only; print the instrumentation summary
  fmt <file>     pretty-print canonical source
  fold <file>    constant-fold, then pretty-print
  lint <file>    static lockset check (may report false positives)
  fleet <file>   simulate a deployed fleet of sampling instances
                 [--instances N] [--rate R] [--seed N] [--jobs N]
                 [--metrics-out PATH] [--trace-out PATH]
                 [--fault-plan FILE] [--max-retries N]
                 [--checkpoint JOURNAL] [--resume JOURNAL]
                 [--mem-budget BYTES] [--deadline-events N]
                 [--rate-ladder-governor R,R,...]
                 [--record-traces DIR [--format binary|text]]
  serve          long-running detection service over the .ptrace stream
                 format (protocol in SERVICE.md); sessions demultiplex
                 onto shard workers and the merged transcript is
                 byte-identical at any shard count or interleaving
                 [--socket PATH [--max-sessions N]]  (unix-socket daemon)
                 [--tcp HOST:PORT [--wal DIR] [--addr-file PATH]]
                     (TCP daemon with durable, reconnectable sessions:
                      acked-offset resume via `RESUME <name> <offset>`,
                      per-session write-ahead segments under --wal)
                 [--stdin FILE|-]                    (length-framed input)
                 [--send TRACE --socket PATH [--session NAME]]  (client)
                 [--send TRACE --tcp HOST:PORT [--session NAME]]
                     (reconnecting client: resumes from the last acked
                      frame offset after a connection drop)
                 [--shards N] [--detector D] [--seed N]
                 [--checkpoint JOURNAL] [--resume JOURNAL]
                 [--mem-budget BYTES] [--metrics-out PATH]
                 [--session-deadline-events N] [--idle-timeout TICKS]
                 [--fault-plan FILE]   (chaos drills, RESILIENCE.md)
                 SIGINT/SIGTERM drain gracefully: admission stops,
                 in-flight sessions finish and checkpoint, exit 0; a
                 second signal hard-stops with exit 2 (SERVICE.md)
  stats <file>   run once under the observability layer; print the
                 Table 3-style operation breakdown and space accounting
                 [--rate R] [--seed N] [--detector D]
                 [--metrics-out PATH] [--trace-out PATH]
  fuzz           differential race-oracle fuzzing campaign (FUZZING.md)
                 [--seed N] [--iters N] [--jobs N]
                 [--rate-ladder R,R,...] [--schedule-seeds N]
                 [--metrics-out PATH] [--trace-dir DIR]

detectors: pacer (default), pacer-accordion, fasttrack, generic,
           literace, none

record/replay splits capture from detection: `record` writes the
length-prefixed, checksummed binary trace format (spec in
TRACE_FORMAT.md; ~3-4 bytes/event vs ~11 for text), `replay`
streams it back through any detector without materializing the
trace, `--resample R` overlays fresh sampling periods on the fly,
and `fleet --record-traces` / `fuzz --trace-dir` capture
per-instance and per-program truth traces (deterministic at any
--jobs count).

--metrics-out writes the unified metrics snapshot as JSON;
--trace-out writes the structured event trace as JSONL (see
OBSERVABILITY.md for both schemas).

fleet runs on the crash-resilient engine (RESILIENCE.md):
--fault-plan arms a deterministic fault-injection campaign,
--max-retries bounds per-trial retries (default 1),
--checkpoint journals each completed trial, --resume restores
completed trials from a journal (and keeps checkpointing to it
unless --checkpoint names another path).

--mem-budget / --deadline-events arm the resource governor
(RESILIENCE.md, 'Graceful degradation'): when detector metadata
bytes or executed steps breach a budget at a GC boundary, the
sampling rate steps down a ladder (default: the starting rate
halved per rung; override with --rate-ladder-governor), steps
back up once pressure clears, and cancels the trial cleanly only
when the floor rate still breaches. Exit codes: 0 clean (rate-
degraded trials included), 2 completed with quarantined or
cancelled trials, 1 hard failure.
";

/// Entry point: dispatches on `args` (without the program name), returning
/// the text to print plus the exit code to use.
///
/// # Errors
///
/// Returns a [`CliError`] with a user-facing message on any failure.
pub fn run(args: &[String]) -> Result<CmdOutput, CliError> {
    let Some(command) = args.first() else {
        return Err(err(USAGE));
    };
    match command.as_str() {
        "run" => cmd_run(&args[1..]).map(CmdOutput::from),
        "record" => cmd_record(&args[1..]).map(CmdOutput::from),
        "replay" => cmd_replay(&args[1..]).map(CmdOutput::from),
        "check" => cmd_check(&args[1..]).map(CmdOutput::from),
        "fmt" => cmd_fmt(&args[1..], false).map(CmdOutput::from),
        "fold" => cmd_fmt(&args[1..], true).map(CmdOutput::from),
        "lint" => cmd_lint(&args[1..]).map(CmdOutput::from),
        "fleet" => cmd_fleet(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "stats" => cmd_stats(&args[1..]).map(CmdOutput::from),
        "fuzz" => cmd_fuzz(&args[1..]).map(CmdOutput::from),
        "--help" | "-h" | "help" => Ok(CmdOutput::from(USAGE.to_string())),
        other => Err(err(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
}

fn parse_options(args: &[String]) -> Result<(String, Options), CliError> {
    let (file, opts) = parse_flags(args)?;
    let file = file.ok_or_else(|| err("missing input file"))?;
    Ok((file, opts))
}

fn parse_flags(args: &[String]) -> Result<(Option<String>, Options), CliError> {
    let mut file = None;
    let mut opts = Options::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--rate" => {
                i += 1;
                let v: f64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("--rate requires a number in [0, 1]"))?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(err("--rate must be in [0, 1]"));
                }
                opts.rate = v;
            }
            "--seed" => {
                i += 1;
                opts.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("--seed requires an integer"))?;
            }
            "--detector" => {
                i += 1;
                opts.detector = args
                    .get(i)
                    .cloned()
                    .ok_or_else(|| err("--detector requires a name"))?;
            }
            "--trace" => {
                i += 1;
                opts.trace_out = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| err("--trace requires a path"))?,
                );
            }
            "--metrics-out" => {
                i += 1;
                opts.metrics_out = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| err("--metrics-out requires a path"))?,
                );
            }
            "--trace-out" => {
                i += 1;
                opts.events_out = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| err("--trace-out requires a path"))?,
                );
            }
            "--instances" => {
                i += 1;
                opts.instances = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| err("--instances requires a positive integer"))?;
            }
            "--jobs" => {
                i += 1;
                opts.jobs = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| err("--jobs requires a positive integer"))?;
            }
            "--iters" => {
                i += 1;
                opts.iters = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| err("--iters requires a positive integer"))?;
            }
            "--schedule-seeds" => {
                i += 1;
                opts.schedule_seeds = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| err("--schedule-seeds requires a positive integer"))?;
            }
            "--rate-ladder" => {
                i += 1;
                let spec = args
                    .get(i)
                    .ok_or_else(|| err("--rate-ladder requires a comma-separated list"))?;
                let ladder: Vec<f64> = spec
                    .split(',')
                    .map(|part| {
                        part.trim()
                            .parse::<f64>()
                            .ok()
                            .filter(|r| (0.0..=1.0).contains(r))
                            .ok_or_else(|| {
                                err(format!("--rate-ladder entry `{part}` is not in [0, 1]"))
                            })
                    })
                    .collect::<Result<_, _>>()?;
                if ladder.is_empty() {
                    return Err(err("--rate-ladder requires at least one rate"));
                }
                opts.rate_ladder = Some(ladder);
            }
            "--fault-plan" => {
                i += 1;
                opts.fault_plan = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| err("--fault-plan requires a path"))?,
                );
            }
            "--max-retries" => {
                i += 1;
                opts.max_retries = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("--max-retries requires a non-negative integer"))?;
            }
            "--mem-budget" => {
                i += 1;
                opts.mem_budget = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &u64| n > 0)
                        .ok_or_else(|| err("--mem-budget requires a positive byte count"))?,
                );
            }
            "--deadline-events" => {
                i += 1;
                opts.deadline_events = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &u64| n > 0)
                        .ok_or_else(|| err("--deadline-events requires a positive step count"))?,
                );
            }
            "--rate-ladder-governor" => {
                i += 1;
                opts.governor_ladder = Some(args.get(i).cloned().ok_or_else(|| {
                    err("--rate-ladder-governor requires a comma-separated list")
                })?);
            }
            "--out" => {
                i += 1;
                opts.out = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| err("--out requires a path"))?,
                );
            }
            "--format" => {
                i += 1;
                opts.format = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| err("--format requires `binary` or `text`"))?,
                );
            }
            "--record-traces" => {
                i += 1;
                opts.record_traces = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| err("--record-traces requires a directory"))?,
                );
            }
            "--trace-dir" => {
                i += 1;
                opts.trace_dir = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| err("--trace-dir requires a directory"))?,
                );
            }
            "--resample" => {
                i += 1;
                let v: f64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("--resample requires a rate in [0, 1]"))?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(err("--resample must be in [0, 1]"));
                }
                opts.resample = Some(v);
            }
            "--resample-period" => {
                i += 1;
                opts.resample_period = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| err("--resample-period requires a positive integer"))?;
            }
            "--checkpoint" => {
                i += 1;
                opts.checkpoint = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| err("--checkpoint requires a path"))?,
                );
            }
            "--resume" => {
                i += 1;
                opts.resume = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| err("--resume requires a path"))?,
                );
            }
            "--socket" => {
                i += 1;
                opts.socket = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| err("--socket requires a path"))?,
                );
            }
            "--send" => {
                i += 1;
                opts.send = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| err("--send requires a trace path"))?,
                );
            }
            "--session" => {
                i += 1;
                opts.session = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| err("--session requires a name"))?,
                );
            }
            "--stdin" => {
                i += 1;
                opts.stdin_frames = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| err("--stdin requires a file (or `-`)"))?,
                );
            }
            "--shards" => {
                i += 1;
                opts.shards = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| err("--shards requires a positive integer"))?;
            }
            "--max-sessions" => {
                i += 1;
                opts.max_sessions = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &u64| n > 0)
                        .ok_or_else(|| err("--max-sessions requires a positive integer"))?,
                );
            }
            "--session-deadline-events" => {
                i += 1;
                opts.session_deadline_events = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &u64| n > 0)
                        .ok_or_else(|| {
                            err("--session-deadline-events requires a positive integer")
                        })?,
                );
            }
            "--idle-timeout" => {
                i += 1;
                opts.idle_timeout = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &u32| n > 0)
                        .ok_or_else(|| err("--idle-timeout requires a positive tick count"))?,
                );
            }
            "--tcp" => {
                i += 1;
                opts.tcp = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| err("--tcp requires HOST:PORT"))?,
                );
            }
            "--wal" => {
                i += 1;
                opts.wal = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| err("--wal requires a directory"))?,
                );
            }
            "--addr-file" => {
                i += 1;
                opts.addr_file = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| err("--addr-file requires a path"))?,
                );
            }
            flag if flag.starts_with("--") => {
                return Err(err(format!("unknown flag `{flag}`")));
            }
            path => {
                if file.replace(path.to_string()).is_some() {
                    return Err(err("multiple input files given"));
                }
            }
        }
        i += 1;
    }
    Ok((file, opts))
}

fn load_program(path: &str) -> Result<(pacer_lang::ast::Program, CompiledProgram), CliError> {
    let source =
        std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
    let ast = pacer_lang::parse(&source).map_err(|e| err(format!("{path}: {e}")))?;
    let compiled = pacer_lang::compile(&ast).map_err(|e| err(format!("{path}: {e}")))?;
    Ok((ast, compiled))
}

fn report_races(out: &mut String, program: Option<&CompiledProgram>, races: &[RaceReport]) {
    let mut distinct: Vec<_> = races.iter().map(RaceReport::distinct_key).collect();
    distinct.sort();
    distinct.dedup();
    let _ = writeln!(
        out,
        "\n{} dynamic race report(s), {} distinct:",
        races.len(),
        distinct.len()
    );
    for (a, b) in distinct {
        match program {
            Some(p) => {
                let _ = writeln!(out, "  {}  <->  {}", p.describe_site(a), p.describe_site(b));
            }
            None => {
                let _ = writeln!(out, "  {a}  <->  {b}");
            }
        }
    }
}

fn summarize_run(out: &mut String, outcome: &RunOutcome) {
    let _ = writeln!(
        out,
        "executed {} steps, {} threads ({} max live), {} GCs, result {:?}",
        outcome.steps,
        outcome.threads_started,
        outcome.max_live_threads,
        outcome.gc_count,
        outcome.main_result
    );
    if outcome.elided_accesses > 0 {
        let _ = writeln!(
            out,
            "escape analysis elided {} thread-local accesses",
            outcome.elided_accesses
        );
    }
}

fn cmd_run(args: &[String]) -> Result<String, CliError> {
    let (file, opts) = parse_options(args)?;
    let (_, compiled) = load_program(&file)?;
    let cfg = VmConfig::new(opts.seed).with_sampling_rate(opts.rate);
    let mut out = String::new();

    // Optionally record the event stream alongside the analysis by
    // re-running with the same seed (identical schedule).
    let vm_err = |e: pacer_runtime::VmError| err(format!("runtime error: {e}"));
    match opts.detector.as_str() {
        "pacer" => {
            let mut d = PacerDetector::new();
            let outcome = Vm::run(&compiled, &mut d, &cfg).map_err(vm_err)?;
            summarize_run(&mut out, &outcome);
            let _ = writeln!(
                out,
                "effective sampling rate: {:.2}%",
                d.stats().effective_rate().unwrap_or(0.0) * 100.0
            );
            report_races(&mut out, Some(&compiled), d.races());
        }
        "pacer-accordion" => {
            let mut d = AccordionPacerDetector::new();
            let outcome = Vm::run(&compiled, &mut d, &cfg).map_err(vm_err)?;
            summarize_run(&mut out, &outcome);
            let _ = writeln!(out, "clock slots used: {}", d.slots_in_use());
            report_races(&mut out, Some(&compiled), d.races());
        }
        "fasttrack" => {
            let mut d = FastTrackDetector::new();
            let outcome = Vm::run(&compiled, &mut d, &cfg).map_err(vm_err)?;
            summarize_run(&mut out, &outcome);
            report_races(&mut out, Some(&compiled), d.races());
        }
        "generic" => {
            let mut d = GenericDetector::new();
            let outcome = Vm::run(&compiled, &mut d, &cfg).map_err(vm_err)?;
            summarize_run(&mut out, &outcome);
            report_races(&mut out, Some(&compiled), d.races());
        }
        "literace" => {
            let mut d = LiteRaceDetector::new(LiteRaceConfig::default(), opts.seed);
            let outcome = Vm::run(&compiled, &mut d, &cfg).map_err(vm_err)?;
            summarize_run(&mut out, &outcome);
            let _ = writeln!(
                out,
                "effective sampling rate: {:.2}%",
                d.effective_rate().unwrap_or(0.0) * 100.0
            );
            report_races(&mut out, Some(&compiled), d.races());
        }
        "none" => {
            let mut d = NullDetector;
            let cfg = cfg.clone().with_instrument(InstrumentMode::Off);
            let outcome = Vm::run(&compiled, &mut d, &cfg).map_err(vm_err)?;
            summarize_run(&mut out, &outcome);
        }
        other => return Err(err(format!("unknown detector `{other}`"))),
    }

    if let Some(path) = opts.trace_out {
        let mut rec = RecordingDetector::new();
        Vm::run(&compiled, &mut rec, &cfg).map_err(vm_err)?;
        rec.trace()
            .save(&path)
            .map_err(|e| err(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "\nevent trace written to {path}");
    }
    Ok(out)
}

/// Trace output encoding for `record` and `fleet --record-traces`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TraceFormat {
    Binary,
    Text,
}

impl TraceFormat {
    fn extension(self) -> &'static str {
        match self {
            TraceFormat::Binary => "ptrace",
            TraceFormat::Text => "trace",
        }
    }
}

fn trace_format(opts: &Options) -> Result<TraceFormat, CliError> {
    match opts.format.as_deref() {
        None | Some("binary") => Ok(TraceFormat::Binary),
        Some("text") => Ok(TraceFormat::Text),
        Some(other) => Err(err(format!(
            "unknown trace format `{other}` (expected `binary` or `text`)"
        ))),
    }
}

fn cmd_record(args: &[String]) -> Result<String, CliError> {
    let (file, opts) = parse_options(args)?;
    let (_, compiled) = load_program(&file)?;
    let format = trace_format(&opts)?;
    let out_path = opts.out.clone().unwrap_or_else(|| {
        Path::new(&file)
            .with_extension(format.extension())
            .to_string_lossy()
            .into_owned()
    });
    let cfg = VmConfig::new(opts.seed).with_sampling_rate(opts.rate);
    let vm_err = |e: pacer_runtime::VmError| err(format!("runtime error: {e}"));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} recorded at r = {:.2}%, seed {}",
        file,
        opts.rate * 100.0,
        opts.seed
    );
    match format {
        TraceFormat::Binary => {
            // The recorder encodes frames as the VM runs; the action vector
            // is never materialized.
            let mut rec = pacer_trace::StreamRecorder::new(Vec::new())
                .map_err(|e| err(format!("encoding error: {e}")))?;
            let outcome = Vm::run(&compiled, &mut rec, &cfg).map_err(vm_err)?;
            let (bytes, summary) = rec
                .finish()
                .map_err(|e| err(format!("encoding error: {e}")))?;
            summarize_run(&mut out, &outcome);
            let _ = writeln!(
                out,
                "captured {} events ({} accesses, {} sync ops, {} threads)",
                summary.encode.events,
                summary.stats.accesses(),
                summary.stats.sync_ops(),
                summary.thread_count
            );
            let _ = writeln!(
                out,
                "{} frame(s), {} bytes ({:.2} bytes/event)",
                summary.encode.frames,
                summary.encode.bytes,
                summary.encode.bytes_per_event()
            );
            pacer_collections::atomic_write(&out_path, &bytes)
                .map_err(|e| err(format!("cannot write {out_path}: {e}")))?;
            let _ = writeln!(out, "binary trace written to {out_path}");
        }
        TraceFormat::Text => {
            let mut rec = RecordingDetector::new();
            let outcome = Vm::run(&compiled, &mut rec, &cfg).map_err(vm_err)?;
            summarize_run(&mut out, &outcome);
            let stats = rec.trace().stats();
            let _ = writeln!(
                out,
                "captured {} events ({} accesses, {} sync ops, {} threads)",
                rec.trace().len(),
                stats.accesses(),
                stats.sync_ops(),
                rec.trace().thread_count()
            );
            rec.trace()
                .save(&out_path)
                .map_err(|e| err(format!("cannot write {out_path}: {e}")))?;
            let _ = writeln!(out, "text trace written to {out_path}");
        }
    }
    Ok(out)
}

/// Everything one replay pass produces, independent of input encoding.
struct ReplayOutcome {
    stats: pacer_trace::ActionStats,
    threads: usize,
    races: Vec<RaceReport>,
    metrics_json: Option<String>,
}

/// Feeds `actions` through `det` one at a time — validating, counting, and
/// (when `want_metrics`) observing — without ever materializing the trace.
fn drive_replay<D, I>(
    det: D,
    actions: I,
    want_metrics: bool,
    file: &str,
) -> Result<ReplayOutcome, CliError>
where
    D: pacer_obs::ObservableDetector,
    I: Iterator<Item = pacer_trace::Action>,
{
    let registry = if want_metrics {
        pacer_obs::Registry::enabled(pacer_obs::RegistryConfig::default())
    } else {
        pacer_obs::Registry::disabled()
    };
    let mut obs = pacer_obs::Observed::new(det, registry);
    let mut validated = pacer_trace::ValidatedActions::new(actions);
    for action in validated.by_ref() {
        obs.on_action(&action);
    }
    if let Some(e) = validated.error() {
        return Err(err(format!("{file}: invalid trace: {e}")));
    }
    let (det, registry) = obs.finish();
    Ok(ReplayOutcome {
        stats: *validated.stats(),
        threads: validated.threads(),
        races: det.races().to_vec(),
        metrics_json: want_metrics.then(|| registry.metrics().to_json()),
    })
}

/// Detector dispatch for `replay`, applying `--resample` on the fly.
fn replay_actions<I: Iterator<Item = pacer_trace::Action>>(
    actions: I,
    opts: &Options,
    file: &str,
) -> Result<ReplayOutcome, CliError> {
    if let Some(rate) = opts.resample {
        let resampled =
            pacer_trace::gen::ResampleSampling::new(actions, rate, opts.resample_period, opts.seed);
        return replay_detector(resampled, opts, file);
    }
    replay_detector(actions, opts, file)
}

fn replay_detector<I: Iterator<Item = pacer_trace::Action>>(
    actions: I,
    opts: &Options,
    file: &str,
) -> Result<ReplayOutcome, CliError> {
    let metrics = opts.metrics_out.is_some();
    match opts.detector.as_str() {
        "pacer" | "pacer-accordion" => drive_replay(PacerDetector::new(), actions, metrics, file),
        "fasttrack" => drive_replay(FastTrackDetector::new(), actions, metrics, file),
        "generic" => drive_replay(GenericDetector::new(), actions, metrics, file),
        "literace" => drive_replay(
            LiteRaceDetector::new(LiteRaceConfig::default(), opts.seed),
            actions,
            metrics,
            file,
        ),
        other => Err(err(format!("unknown detector `{other}`"))),
    }
}

fn cmd_replay(args: &[String]) -> Result<String, CliError> {
    let (file, opts) = parse_options(args)?;
    let mut out = String::new();

    // The shared sniff-and-decode entry point (`pacer serve` ingests
    // through the same one): binary traces stream frame by frame, text
    // traces parse in memory.
    let f = std::fs::File::open(&file).map_err(|e| err(format!("cannot load {file}: {e}")))?;
    let mut reader = pacer_trace::AnyTraceReader::new(std::io::BufReader::new(f)).map_err(|e| {
        if e.is_binary() {
            err(format!("{file}: {e}"))
        } else {
            err(format!("cannot load {file}: {e}"))
        }
    })?;
    let mut stream_err: Option<pacer_trace::TraceStreamError> = None;
    let outcome = {
        let iter = std::iter::from_fn(|| match reader.next() {
            Some(Ok(a)) => Some(a),
            Some(Err(e)) => {
                stream_err = Some(e);
                None
            }
            None => None,
        });
        replay_actions(iter, &opts, &file)?
    };
    // A complete frame that fails its checksum (or any other mid-stream
    // corruption) is a hard error; a trace cut mid-frame is the
    // documented clean partial stop (TRACE_FORMAT.md).
    if let Some(e) = stream_err {
        return Err(err(format!("{file}: {e}")));
    }
    let truncation_note = reader.truncation_note();

    let _ = writeln!(
        out,
        "replaying {} actions ({} accesses, {} sync ops, {} threads)",
        outcome.stats.total(),
        outcome.stats.accesses(),
        outcome.stats.sync_ops(),
        outcome.threads
    );
    if let Some(note) = truncation_note {
        let _ = writeln!(out, "{note}");
    }
    if let Some(rate) = opts.resample {
        let _ = writeln!(
            out,
            "resampled sampling periods at r = {:.2}%, mean period {}, seed {}",
            rate * 100.0,
            opts.resample_period,
            opts.seed
        );
    }
    report_races(&mut out, None, &outcome.races);
    if let Some(path) = &opts.metrics_out {
        let json = outcome.metrics_json.unwrap_or_default();
        write_artifact(&mut out, path, &json, "metrics")?;
    }
    Ok(out)
}

/// Builds the service configuration shared by every `serve` mode.
///
/// `--resume JOURNAL` restores completed sessions from the journal and
/// keeps checkpointing to it (same contract as `fleet`); `--checkpoint`
/// alone starts a fresh journal.
fn serve_config(opts: &Options) -> Result<pacer_harness::ServeConfig, CliError> {
    let detector = pacer_harness::ServeDetectorKind::parse(&opts.detector).map_err(err)?;
    let mut cfg = pacer_harness::ServeConfig::new(detector);
    cfg.shards = opts.shards;
    cfg.seed = opts.seed;
    cfg.resample_period = opts.resample_period;
    cfg.mem_budget = opts.mem_budget;
    cfg.resume = opts.resume.is_some();
    cfg.checkpoint = opts
        .resume
        .as_ref()
        .or(opts.checkpoint.as_ref())
        .map(std::path::PathBuf::from);
    cfg.deadline_events = opts.session_deadline_events;
    cfg.idle_timeout_ticks = opts.idle_timeout;
    cfg.wal = opts.wal.as_ref().map(std::path::PathBuf::from);
    if let Some(path) = &opts.fault_plan {
        let spec = std::fs::read_to_string(path)
            .map_err(|e| err(format!("cannot read fault plan {path}: {e}")))?;
        cfg.fault_plan = Some(FaultPlan::parse(&spec).map_err(|e| err(format!("{path}: {e}")))?);
    }
    Ok(cfg)
}

/// The session header line both serve transports speak (SERVICE.md):
/// `SESSION <name>` over a socket (body follows until half-close),
/// `SESSION <name> <len>` in framed mode (body is exactly `len` bytes).
fn parse_session_header(line: &str) -> Option<(String, Option<u64>)> {
    let mut parts = line.split_whitespace();
    if parts.next() != Some("SESSION") {
        return None;
    }
    let name = parts.next()?.to_string();
    match parts.next() {
        None => Some((name, None)),
        Some(len) => {
            let len = len.parse().ok()?;
            parts.next().is_none().then_some((name, Some(len)))
        }
    }
}

/// The durable-session handshakes the TCP transport speaks (SERVICE.md):
/// `SESSION <name>` starts a fresh durable session; `RESUME <name>
/// <offset>` reattaches after a disconnect, where `offset` is the
/// client's last acked frame offset (advisory — the server's `ACK`
/// reply is authoritative).
enum DurableHeader {
    Session(String),
    Resume(String, u64),
}

fn parse_durable_header(line: &str) -> Option<DurableHeader> {
    let mut parts = line.split_whitespace();
    match parts.next()? {
        "SESSION" => {
            let name = parts.next()?.to_string();
            parts
                .next()
                .is_none()
                .then_some(DurableHeader::Session(name))
        }
        "RESUME" => {
            let name = parts.next()?.to_string();
            let offset = parts.next()?.parse().ok()?;
            parts
                .next()
                .is_none()
                .then_some(DurableHeader::Resume(name, offset))
        }
        _ => None,
    }
}

/// Reads one `\n`-terminated protocol line, tolerating `Interrupted`
/// and short reads (partial lines accumulate across calls). Each read
/// timeout (`WouldBlock`/`TimedOut`) consumes one tick from `budget`;
/// running out surfaces a typed `TimedOut` note. A clean EOF before any
/// byte returns `Ok(0)`; EOF mid-line is an `UnexpectedEof` with the
/// byte count, not a generic IO error.
fn read_protocol_line(
    reader: &mut impl std::io::BufRead,
    line: &mut String,
    budget: u32,
) -> std::io::Result<usize> {
    let mut ticks = 0u32;
    loop {
        match reader.read_line(line) {
            Ok(0) if line.is_empty() => return Ok(0),
            Ok(_) if line.ends_with('\n') => return Ok(line.len()),
            Ok(_) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!("connection closed mid-line after {} byte(s)", line.len()),
                ));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                ticks += 1;
                if ticks >= budget {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        format!("no complete line within {budget} idle tick(s)"),
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// `read_exact` that tolerates `Interrupted` and short reads, ticking
/// read timeouts against `budget` (any delivered byte resets the
/// count). Failures carry the byte position instead of a generic IO
/// error.
fn read_body_exact(
    reader: &mut impl std::io::Read,
    buf: &mut [u8],
    budget: u32,
    what: &str,
) -> std::io::Result<()> {
    let mut filled = 0usize;
    let mut ticks = 0u32;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!(
                        "{what}: short read: {filled} of {} byte(s), then EOF",
                        buf.len()
                    ),
                ));
            }
            Ok(n) => {
                filled += n;
                ticks = 0;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                ticks += 1;
                if ticks >= budget {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        format!(
                            "{what}: stalled at {filled} of {} byte(s) for {budget} idle tick(s)",
                            buf.len()
                        ),
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Serves one accepted unix-socket connection: header line, trace bytes
/// until half-close (or `len` bytes), then the report body as the reply.
///
/// With `--idle-timeout` armed, reads tick every second: each timeout is
/// one deterministic poll tick toward the service engine's reap budget.
fn serve_connection(
    handle: &pacer_harness::ServiceHandle<'_>,
    conn: std::os::unix::net::UnixStream,
    idle_timeout: Option<u32>,
) {
    use std::io::{Read as _, Write as _};

    // The listener runs nonblocking so the accept loop can poll the
    // drain flag; the per-connection socket must block (with at most a
    // read timeout) or decode would spin.
    if conn.set_nonblocking(false).is_err() {
        return;
    }
    if idle_timeout.is_some() {
        let _ = conn.set_read_timeout(Some(std::time::Duration::from_secs(1)));
    }
    let Ok(mut writer) = conn.try_clone() else {
        return;
    };
    let mut reader = std::io::BufReader::new(conn);
    let mut header = String::new();
    // The header must arrive within the idle-timeout budget: a
    // connected-but-silent client is reaped here instead of pinning a
    // handler slot forever.
    match read_protocol_line(&mut reader, &mut header, idle_timeout.unwrap_or(u32::MAX)) {
        Ok(0) => return, // clean probe disconnect, nothing to report
        Ok(_) => {}
        Err(e) => {
            let _ = writer.write_all(format!("error: session header: {e}\n").as_bytes());
            return;
        }
    }
    let Some((name, len)) = parse_session_header(&header) else {
        let _ = writer
            .write_all(b"error: malformed session header (expected `SESSION <name> [<len>]`)\n");
        return;
    };
    let report = match len {
        Some(len) => handle.serve(&name, reader.take(len)),
        None => handle.serve(&name, reader),
    };
    // The client may already be gone; its session is merged either way.
    let _ = writer.write_all(report.body.as_bytes());
}

/// Serves length-framed sessions from one sequential byte stream.
fn serve_frames(
    handle: &pacer_harness::ServiceHandle<'_>,
    mut input: impl std::io::BufRead,
) -> Result<(), pacer_harness::ServeError> {
    loop {
        // Graceful drain: stop admitting between frames; the frame in
        // flight (below) always completes and checkpoints first.
        if signal::drain_requested() {
            return Ok(());
        }
        let mut header = String::new();
        if input.read_line(&mut header)? == 0 {
            return Ok(());
        }
        if header.trim().is_empty() {
            continue;
        }
        let Some((name, Some(len))) = parse_session_header(&header) else {
            // Without a byte count there is no way to find the next
            // frame, so framed input cannot resync past a bad header.
            return Err(pacer_harness::ServeError::Config(format!(
                "malformed session frame (expected `SESSION <name> <len>`): {}",
                header.trim_end()
            )));
        };
        let mut body = vec![0u8; len as usize];
        read_body_exact(
            &mut input,
            &mut body,
            u32::MAX,
            &format!("session `{name}` body"),
        )
        .map_err(|e| pacer_harness::ServeError::Config(e.to_string()))?;
        handle.serve(&name, &body[..]);
    }
}

/// Handshake ticks a TCP connection may idle before the header when no
/// `--idle-timeout` is armed (reads tick every second, so ~30 s). A
/// connected-but-silent client is dropped here instead of pinning a
/// handler slot forever.
const TCP_HANDSHAKE_TICKS: u32 = 30;

/// Serves one accepted TCP connection speaking the durable-session
/// grammar (SERVICE.md): `SESSION`/`RESUME` handshake, lock-step
/// `FRAME <offset> <len>` + `ACK <applied>` exchanges, `END <total>`,
/// then `REPORT <len>` + body. Every early exit leases the slot back to
/// the engine (`durable_detach`) so a reconnecting client can `RESUME`.
///
/// Three chaos sites live here: `conn-reset` (hang up after N accepted
/// frames on a targeted connection), `sock-stall` (timing-only spins
/// before the handshake), and `torn-ack` (write a partial ack, then
/// hang up — the client holds a stale offset and must re-sync).
fn serve_tcp_connection(
    handle: &pacer_harness::ServiceHandle<'_>,
    conn: std::net::TcpStream,
    idle_timeout: Option<u32>,
    plan: Option<&FaultPlan>,
    conn_index: u64,
    ack_index: &std::sync::atomic::AtomicU64,
) {
    use pacer_harness::{DurableFrameError, DurableOpen, FrameAck};
    use std::io::Write as _;
    use std::sync::atomic::Ordering;

    let _ = conn.set_nodelay(true);
    // Reads always tick so both the handshake budget and mid-frame
    // stall detection work without a watchdog thread.
    let _ = conn.set_read_timeout(Some(std::time::Duration::from_secs(1)));
    let budget = idle_timeout.unwrap_or(TCP_HANDSHAKE_TICKS);

    if let Some(spins) = plan.and_then(|p| p.sock_stall_spins(conn_index)) {
        // Timing-only perturbation: a slow peer must never change
        // results, only latency.
        for _ in 0..spins {
            std::hint::spin_loop();
        }
    }

    let Ok(mut writer) = conn.try_clone() else {
        return;
    };
    let mut reader = std::io::BufReader::new(conn);

    let send_ack = |writer: &mut std::net::TcpStream, applied: u64| -> std::io::Result<()> {
        let line = format!("ACK {applied}\n");
        if plan.is_some_and(|p| p.torn_ack_fires(ack_index.fetch_add(1, Ordering::Relaxed))) {
            let _ = writer.write_all(&line.as_bytes()[..2]);
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "injected: torn ack",
            ));
        }
        writer.write_all(line.as_bytes())?;
        handle.note_transport(|t| t.acks_sent += 1);
        Ok(())
    };
    let send_report = |writer: &mut std::net::TcpStream, body: &str| {
        let _ = writer
            .write_all(format!("REPORT {}\n", body.len()).as_bytes())
            .and_then(|()| writer.write_all(body.as_bytes()));
    };

    let mut header = String::new();
    match read_protocol_line(&mut reader, &mut header, budget) {
        Ok(0) => return, // clean probe disconnect, nothing to report
        Ok(_) => {}
        Err(e) => {
            let _ = writer.write_all(format!("error: session header: {e}\n").as_bytes());
            return;
        }
    }
    let Some(parsed) = parse_durable_header(&header) else {
        let _ = writer.write_all(
            b"error: malformed handshake (expected `SESSION <name>` or `RESUME <name> <offset>`)\n",
        );
        return;
    };
    // The RESUME offset is advisory; the `ACK` reply carries the
    // server's durably-applied watermark, which is authoritative.
    let (name, resume_offset) = match parsed {
        DurableHeader::Session(name) => (name, None),
        DurableHeader::Resume(name, offset) => (name, Some(offset)),
    };
    let (epoch, applied) = match handle.durable_open(&name, resume_offset.is_some()) {
        DurableOpen::Started { epoch } => (epoch, 0),
        DurableOpen::Resumed { epoch, applied } => {
            if let Some(claimed) = resume_offset.filter(|&o| o > applied) {
                // The client claims acks that were never durable: a
                // protocol corruption no retransmit can repair.
                let _ = writer.write_all(
                    format!(
                        "error: resume offset {claimed} is ahead of the durable watermark {applied}\n"
                    )
                    .as_bytes(),
                );
                handle.durable_detach(&name, epoch);
                return;
            }
            (epoch, applied)
        }
        DurableOpen::Completed(report) => {
            // Reconnect after END landed but the report reply was lost:
            // re-serve the stored report.
            send_report(&mut writer, &report.body);
            return;
        }
        DurableOpen::Rejected(message) => {
            let _ = writer.write_all(format!("error: {message}\n").as_bytes());
            return;
        }
    };
    if send_ack(&mut writer, applied).is_err() {
        handle.durable_detach(&name, epoch);
        return;
    }

    let reset_after = plan.and_then(|p| p.conn_reset_after_frames(conn_index));
    let mut accepted_frames = 0u64;
    loop {
        let mut line = String::new();
        match read_protocol_line(&mut reader, &mut line, budget) {
            Ok(0) => break, // client went away; lease the slot for a RESUME
            Ok(_) => {}
            Err(_) => break,
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("FRAME") => {
                let offset: Option<u64> = parts.next().and_then(|s| s.parse().ok());
                let len: Option<usize> = parts.next().and_then(|s| s.parse().ok());
                let (Some(offset), Some(len), None) = (offset, len, parts.next()) else {
                    let _ = writer.write_all(
                        b"error: malformed frame header (expected `FRAME <offset> <len>`)\n",
                    );
                    break;
                };
                if len
                    > pacer_trace::binary::MAX_FRAME_BYTES as usize
                        + pacer_trace::binary::FRAME_OVERHEAD
                {
                    let _ = writer.write_all(
                        format!("error: frame of {len} byte(s) exceeds the frame size cap\n")
                            .as_bytes(),
                    );
                    break;
                }
                let mut frame = vec![0u8; len];
                if read_body_exact(&mut reader, &mut frame, budget, "frame body").is_err() {
                    break;
                }
                match handle.durable_frame(&name, epoch, offset, &frame) {
                    Ok(ack) => {
                        if matches!(ack, FrameAck::Applied { .. }) {
                            accepted_frames += 1;
                        }
                        if send_ack(&mut writer, ack.applied()).is_err() {
                            break;
                        }
                        if reset_after.is_some_and(|n| accepted_frames >= n) {
                            // Injected conn-reset: hang up mid-session;
                            // the session survives on its lease.
                            break;
                        }
                    }
                    Err(DurableFrameError::Failed(report)) => {
                        // Slot already retired; the body is the error.
                        let _ = writer.write_all(report.body.as_bytes());
                        return;
                    }
                    Err(DurableFrameError::Detached) => return,
                }
            }
            Some("END") => {
                let total: Option<u64> = parts.next().and_then(|s| s.parse().ok());
                let (Some(total), None) = (total, parts.next()) else {
                    let _ = writer.write_all(b"error: malformed end (expected `END <total>`)\n");
                    break;
                };
                match handle.durable_close(&name, epoch, total) {
                    Ok(report) => {
                        send_report(&mut writer, &report.body);
                        return;
                    }
                    Err(DurableFrameError::Failed(report)) => {
                        let _ = writer.write_all(report.body.as_bytes());
                        return;
                    }
                    Err(DurableFrameError::Detached) => return,
                }
            }
            _ => {
                let _ = writer.write_all(
                    format!("error: unexpected command: {}\n", line.trim_end()).as_bytes(),
                );
                break;
            }
        }
    }
    handle.durable_detach(&name, epoch);
}

/// Connect attempts `--send` makes beyond the first. With the shared
/// `artifact_io_backoff` schedule (in 10 ms units) the worst case waits
/// roughly 1.3 s — enough for a daemon started a moment earlier to
/// bind, without masking a genuinely absent service.
const SEND_CONNECT_RETRIES: u32 = 6;

/// Connects to the daemon socket, retrying not-yet-there conditions
/// (`NotFound` — the path isn't bound yet — and `ConnectionRefused` — a
/// stale or still-binding socket) on the deterministic backoff schedule
/// the artifact-IO retries use. Anything else fails immediately.
fn connect_with_retry(socket: &str) -> Result<std::os::unix::net::UnixStream, CliError> {
    let mut attempt = 0u32;
    loop {
        match std::os::unix::net::UnixStream::connect(socket) {
            Ok(conn) => return Ok(conn),
            Err(e)
                if attempt < SEND_CONNECT_RETRIES
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::NotFound | std::io::ErrorKind::ConnectionRefused
                    ) =>
            {
                attempt += 1;
                let ticks = pacer_harness::artifact_io_backoff(0, attempt);
                std::thread::sleep(std::time::Duration::from_millis(u64::from(ticks) * 10));
            }
            Err(e) => return Err(err(format!("cannot connect to {socket}: {e}"))),
        }
    }
}

/// `pacer serve --send`: stream one recorded trace to a running daemon
/// and print its reply verbatim (so it diffs cleanly against `pacer
/// replay` of the same file).
fn serve_send(opts: &Options) -> Result<CmdOutput, CliError> {
    use std::io::{Read as _, Write as _};

    if let Some(addr) = &opts.tcp {
        return serve_send_tcp(opts, addr);
    }
    let trace = opts.send.as_deref().expect("checked by caller");
    let socket = opts
        .socket
        .as_deref()
        .ok_or_else(|| err("--send requires --socket PATH or --tcp HOST:PORT"))?;
    let name = opts.session.clone().unwrap_or_else(|| {
        Path::new(trace)
            .file_stem()
            .map_or_else(|| trace.to_string(), |s| s.to_string_lossy().into_owned())
    });
    let bytes = std::fs::read(trace).map_err(|e| err(format!("cannot load {trace}: {e}")))?;
    let mut conn = connect_with_retry(socket)?;
    conn.write_all(format!("SESSION {name}\n").as_bytes())
        .and_then(|()| conn.write_all(&bytes))
        .and_then(|()| conn.shutdown(std::net::Shutdown::Write))
        .map_err(|e| err(format!("cannot send to {socket}: {e}")))?;
    let mut reply = String::new();
    conn.read_to_string(&mut reply)
        .map_err(|e| err(format!("cannot read reply from {socket}: {e}")))?;
    let code = if reply.starts_with("error: ") { 2 } else { 0 };
    Ok(CmdOutput { text: reply, code })
}

/// How one TCP send attempt ended short of a final reply.
enum SendFailure {
    /// Protocol violation — retrying cannot help.
    Fatal(String),
    /// The connection died (or was never made); reconnect and `RESUME`.
    Io(std::io::Error),
}

/// One server reply on the durable-session wire.
enum Reply {
    /// `ACK <applied>` — the server's durably-applied watermark.
    Ack(u64),
    /// A final response: a `REPORT` body or a single `error:` line.
    Final(String),
}

fn read_reply(reader: &mut impl std::io::BufRead) -> Result<Reply, SendFailure> {
    let mut line = String::new();
    match read_protocol_line(reader, &mut line, u32::MAX) {
        Ok(0) => Err(SendFailure::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection",
        ))),
        Err(e) => Err(SendFailure::Io(e)),
        Ok(_) => {
            if let Some(rest) = line.strip_prefix("ACK ") {
                rest.trim()
                    .parse()
                    .map(Reply::Ack)
                    .map_err(|_| SendFailure::Fatal(format!("malformed ack: {}", line.trim_end())))
            } else if let Some(rest) = line.strip_prefix("REPORT ") {
                let len: usize = rest.trim().parse().map_err(|_| {
                    SendFailure::Fatal(format!("malformed report header: {}", line.trim_end()))
                })?;
                let mut body = vec![0u8; len];
                read_body_exact(reader, &mut body, u32::MAX, "report body")
                    .map_err(SendFailure::Io)?;
                String::from_utf8(body)
                    .map(Reply::Final)
                    .map_err(|_| SendFailure::Fatal("report body is not UTF-8".into()))
            } else if line.starts_with("error:") {
                Ok(Reply::Final(line))
            } else {
                Err(SendFailure::Fatal(format!(
                    "unexpected reply: {}",
                    line.trim_end()
                )))
            }
        }
    }
}

/// One connection's worth of the durable-session client: handshake,
/// lock-step frame/ack exchange from the server's watermark, `END`,
/// final report. Updates `next` with every ack so a reconnect resumes
/// exactly where durability left off. Returns the final reply text.
#[allow(clippy::too_many_arguments)]
fn tcp_send_attempt(
    addr: &str,
    name: &str,
    fresh: &mut bool,
    next: &mut u64,
    frames: &[&[u8]],
    plan: Option<&FaultPlan>,
    sends: &mut u64,
) -> Result<String, SendFailure> {
    use std::io::Write as _;

    let conn = std::net::TcpStream::connect(addr).map_err(SendFailure::Io)?;
    let _ = conn.set_nodelay(true);
    let mut writer = conn.try_clone().map_err(SendFailure::Io)?;
    let mut reader = std::io::BufReader::new(conn);

    let handshake = if *fresh {
        format!("SESSION {name}\n")
    } else {
        format!("RESUME {name} {next}\n")
    };
    writer
        .write_all(handshake.as_bytes())
        .map_err(SendFailure::Io)?;
    match read_reply(&mut reader)? {
        Reply::Ack(applied) => {
            *fresh = false;
            *next = applied;
        }
        Reply::Final(text) => return Ok(text),
    }

    fn send_frame(
        writer: &mut std::net::TcpStream,
        sends: &mut u64,
        offset: u64,
        frame: &[u8],
    ) -> Result<(), SendFailure> {
        use std::io::Write as _;
        *sends += 1;
        writer
            .write_all(format!("FRAME {offset} {}\n", frame.len()).as_bytes())
            .and_then(|()| writer.write_all(frame))
            .map_err(SendFailure::Io)
    }

    while (*next as usize) < frames.len() {
        let offset = *next;
        if offset > 0 && plan.is_some_and(|p| p.dup_frame_fires(*sends)) {
            // Injected duplicated retransmit: re-send the previous
            // frame; the server dedups it by offset and re-acks.
            send_frame(
                &mut writer,
                sends,
                offset - 1,
                frames[(offset - 1) as usize],
            )?;
            match read_reply(&mut reader)? {
                Reply::Ack(applied) => *next = applied,
                Reply::Final(text) => return Ok(text),
            }
        }
        send_frame(&mut writer, sends, offset, frames[offset as usize])?;
        match read_reply(&mut reader)? {
            Reply::Ack(applied) => *next = applied,
            Reply::Final(text) => return Ok(text),
        }
    }

    writer
        .write_all(format!("END {}\n", frames.len()).as_bytes())
        .map_err(SendFailure::Io)?;
    match read_reply(&mut reader)? {
        Reply::Final(text) => Ok(text),
        Reply::Ack(applied) => Err(SendFailure::Fatal(format!(
            "expected the final report, got `ACK {applied}`"
        ))),
    }
}

/// `pacer serve --send --tcp`: stream one recorded binary trace to a
/// durable TCP daemon, frame by frame in lock-step with its acks, and
/// print the final report verbatim (so it diffs cleanly against `pacer
/// replay`). A dropped connection triggers deterministic
/// backoff-and-`RESUME` from the last acked offset; the attempt is
/// abandoned only after `SEND_CONNECT_RETRIES` consecutive reconnects
/// with no ack progress.
fn serve_send_tcp(opts: &Options, addr: &str) -> Result<CmdOutput, CliError> {
    let trace = opts.send.as_deref().expect("checked by caller");
    let name = opts.session.clone().unwrap_or_else(|| {
        Path::new(trace)
            .file_stem()
            .map_or_else(|| trace.to_string(), |s| s.to_string_lossy().into_owned())
    });
    let bytes = std::fs::read(trace).map_err(|e| err(format!("cannot load {trace}: {e}")))?;
    let split = pacer_trace::binary::split_frames(&bytes)
        .map_err(|e| err(format!("{trace}: not a streamable binary trace: {e}")))?;
    if split.truncated {
        return Err(err(format!(
            "{trace}: trace is truncated mid-frame; re-record it before streaming"
        )));
    }
    let frames: Vec<&[u8]> = split
        .frames
        .iter()
        .map(|f| &bytes[f.start..f.end])
        .collect();
    let plan = match &opts.fault_plan {
        Some(path) => {
            let spec = std::fs::read_to_string(path)
                .map_err(|e| err(format!("cannot read fault plan {path}: {e}")))?;
            Some(FaultPlan::parse(&spec).map_err(|e| err(format!("{path}: {e}")))?)
        }
        None => None,
    };

    let mut fresh = true;
    let mut handshake_lost = false;
    let mut next = 0u64;
    let mut sends = 0u64;
    let mut stalls = 0u32;
    loop {
        let acked_at_start = next;
        match tcp_send_attempt(
            addr,
            &name,
            &mut fresh,
            &mut next,
            &frames,
            plan.as_ref(),
            &mut sends,
        ) {
            Ok(reply) => {
                if fresh && handshake_lost && reply.contains("duplicate session name") {
                    // An earlier SESSION handshake died before its ack:
                    // the slot may exist server-side, so reattach
                    // instead of failing. (A duplicate on a clean first
                    // handshake stays an error.)
                    fresh = false;
                    continue;
                }
                let code = if reply.starts_with("error: ") { 2 } else { 0 };
                return Ok(CmdOutput { text: reply, code });
            }
            Err(SendFailure::Fatal(message)) => {
                return Err(err(format!("{addr}: {message}")));
            }
            Err(SendFailure::Io(e)) => {
                if fresh {
                    handshake_lost = true;
                }
                if next > acked_at_start {
                    stalls = 0;
                } else {
                    stalls += 1;
                    if stalls > SEND_CONNECT_RETRIES {
                        return Err(err(format!(
                            "session `{name}`: no ack progress after {SEND_CONNECT_RETRIES} reconnect attempt(s): {e}"
                        )));
                    }
                }
                let ticks = pacer_harness::artifact_io_backoff(0, stalls.max(1));
                std::thread::sleep(std::time::Duration::from_millis(u64::from(ticks) * 10));
            }
        }
    }
}

/// The TCP daemon: a nonblocking accept loop feeding durable-session
/// handlers. Idle polling doubles as the durable lease clock (one
/// `durable_tick` per ~1 s of accept-loop idling); on exit every
/// leftover slot is reaped with its WAL segment retained, so a
/// restarted daemon pointed at the same `--wal` directory can still
/// honor a `RESUME`.
fn serve_tcp_daemon(
    cfg: &pacer_harness::ServeConfig,
    opts: &Options,
    addr: &str,
) -> Result<pacer_harness::ServeOutput, CliError> {
    let listener =
        std::net::TcpListener::bind(addr).map_err(|e| err(format!("cannot bind {addr}: {e}")))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| err(format!("cannot poll {addr}: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| err(format!("cannot resolve {addr}: {e}")))?;
    if let Some(path) = &opts.addr_file {
        // `--tcp 127.0.0.1:0` binds an ephemeral port; scripts read the
        // actual address from here.
        std::fs::write(path, format!("{local}\n"))
            .map_err(|e| err(format!("cannot write {path}: {e}")))?;
    }
    signal::arm_drain();
    let idle_timeout = opts.idle_timeout;
    let ack_index = std::sync::atomic::AtomicU64::new(0);
    let result = pacer_harness::run_service(cfg, |handle| {
        let looped = std::thread::scope(|scope| {
            let mut accepted = 0u64;
            let mut polls = 0u64;
            while opts.max_sessions.is_none_or(|max| accepted < max) {
                if signal::drain_requested() {
                    break;
                }
                match listener.accept() {
                    Ok((conn, _)) => {
                        let conn_index = accepted;
                        accepted += 1;
                        handle.note_transport(|t| t.connections += 1);
                        let ack_index = &ack_index;
                        scope.spawn(move || {
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                serve_tcp_connection(
                                    handle,
                                    conn,
                                    idle_timeout,
                                    cfg.fault_plan.as_ref(),
                                    conn_index,
                                    ack_index,
                                );
                            }));
                        });
                    }
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::Interrupted
                        ) =>
                    {
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        polls += 1;
                        if polls % 50 == 0 {
                            handle.durable_tick();
                        }
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            Ok(())
        });
        // Every handler has exited: reap leftover durable slots into
        // the ledger, retaining their WAL segments for a restart.
        handle.durable_reap_remaining();
        looped
    });
    let (output, ()) = result.map_err(|e| err(format!("serve: {e}")))?;
    Ok(output)
}

fn cmd_serve(args: &[String]) -> Result<CmdOutput, CliError> {
    let (file, opts) = parse_flags(args)?;
    if let Some(extra) = file {
        return Err(err(format!(
            "serve takes no positional argument (got `{extra}`); traces arrive over --socket or --stdin"
        )));
    }
    if opts.send.is_some() {
        return serve_send(&opts);
    }
    let cfg = serve_config(&opts)?;
    if opts.tcp.is_some() && (opts.socket.is_some() || opts.stdin_frames.is_some()) {
        return Err(err("--tcp, --socket, and --stdin are mutually exclusive"));
    }
    if let Some(addr) = &opts.tcp {
        let output = serve_tcp_daemon(&cfg, &opts, addr)?;
        return finish_serve(&opts, &output);
    }

    let result = match (&opts.socket, &opts.stdin_frames) {
        (Some(_), Some(_)) => {
            return Err(err("--socket and --stdin are mutually exclusive"));
        }
        (None, None) => {
            return Err(err(
                "serve needs a transport: --socket PATH or --tcp HOST:PORT (daemon) or --stdin FILE|- (framed)",
            ));
        }
        (Some(socket), None) => {
            // Daemon mode: one handler thread per accepted connection;
            // --max-sessions bounds the accept loop so scripted runs
            // (CI) terminate and print the merged transcript. The
            // listener runs nonblocking so the loop can poll the drain
            // flag: on the first SIGINT/SIGTERM admission stops,
            // in-flight handlers finish inside the scope, and the run
            // exits through the normal transcript path.
            let _ = std::fs::remove_file(socket);
            let listener = std::os::unix::net::UnixListener::bind(socket)
                .map_err(|e| err(format!("cannot bind {socket}: {e}")))?;
            listener
                .set_nonblocking(true)
                .map_err(|e| err(format!("cannot poll {socket}: {e}")))?;
            signal::arm_drain();
            let idle_timeout = opts.idle_timeout;
            let result = pacer_harness::run_service(&cfg, |handle| {
                std::thread::scope(|scope| {
                    let mut accepted = 0u64;
                    while opts.max_sessions.is_none_or(|max| accepted < max) {
                        if signal::drain_requested() {
                            break;
                        }
                        match listener.accept() {
                            Ok((conn, _)) => {
                                accepted += 1;
                                // A panicking handler loses only its own
                                // connection; the accept loop and every
                                // other session carry on.
                                scope.spawn(move || {
                                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                        || {
                                            serve_connection(handle, conn, idle_timeout);
                                        },
                                    ));
                                });
                            }
                            Err(e)
                                if matches!(
                                    e.kind(),
                                    std::io::ErrorKind::WouldBlock
                                        | std::io::ErrorKind::Interrupted
                                ) =>
                            {
                                std::thread::sleep(std::time::Duration::from_millis(20));
                            }
                            Err(e) => return Err(e.into()),
                        }
                    }
                    Ok(())
                })
            });
            let _ = std::fs::remove_file(socket);
            result
        }
        (None, Some(frames)) => {
            signal::arm_drain();
            pacer_harness::run_service(&cfg, |handle| {
                if frames == "-" {
                    serve_frames(handle, std::io::stdin().lock())
                } else {
                    let f = std::fs::File::open(frames).map_err(|e| {
                        pacer_harness::ServeError::Config(format!("cannot open {frames}: {e}"))
                    })?;
                    serve_frames(handle, std::io::BufReader::new(f))
                }
            })
        }
    };
    let (output, ()) = result.map_err(|e| err(format!("serve: {e}")))?;
    finish_serve(&opts, &output)
}

/// Shared serve epilogue: merged transcript, optional metrics artifact,
/// exit code 2 when any session errored.
fn finish_serve(
    opts: &Options,
    output: &pacer_harness::ServeOutput,
) -> Result<CmdOutput, CliError> {
    let mut out = output.transcript.clone();
    if let Some(path) = &opts.metrics_out {
        let json = pacer_obs::serve_metrics_json(
            &output.shard_counters,
            &output.sessions,
            &output.transport,
        );
        write_artifact(&mut out, path, &json, "serve metrics")?;
    }
    let code = if output.any_errors() { 2 } else { 0 };
    Ok(CmdOutput { text: out, code })
}

fn cmd_check(args: &[String]) -> Result<String, CliError> {
    let (file, _) = parse_options(args)?;
    let (ast, compiled) = load_program(&file)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{file}: {} function(s), {} shared slot(s), {} lock(s), {} volatile(s)",
        compiled.functions.len(),
        compiled.globals,
        compiled.locks,
        compiled.volatiles
    );
    let _ = writeln!(
        out,
        "{} instrumented site(s)",
        compiled.instrumented_sites()
    );
    for f in &ast.functions {
        let info = pacer_lang::escape::analyze(f);
        let locals = info.provably_local_locals();
        if !locals.is_empty() {
            let _ = writeln!(
                out,
                "  fn {}: thread-local (uninstrumented): {}",
                f.name,
                locals.join(", ")
            );
        }
    }
    Ok(out)
}

fn cmd_lint(args: &[String]) -> Result<String, CliError> {
    let (file, _) = parse_options(args)?;
    let source =
        std::fs::read_to_string(&file).map_err(|e| err(format!("cannot read {file}: {e}")))?;
    let ast = pacer_lang::parse(&source).map_err(|e| err(format!("{file}: {e}")))?;
    let report = pacer_lang::lockset::lockset_lint(&ast);
    let mut out = String::new();
    for w in &report.warnings {
        out.push_str(&w.render());
    }
    let _ = writeln!(
        out,
        "{}: {} shared variable(s) checked, {} warning(s)",
        file,
        report.checked_vars,
        report.warnings.len()
    );
    if !report.warnings.is_empty() {
        let _ = writeln!(
            out,
            "note: lockset is a heuristic — volatile/fork-join protocols are
             safe but still flagged; confirm with `pacer run --detector fasttrack`"
        );
    }
    Ok(out)
}

/// Default event-ring capacity for observed CLI runs.
const RING_CAPACITY: usize = 65_536;

fn detector_kind(name: &str, rate: f64) -> Result<pacer_harness::DetectorKind, CliError> {
    use pacer_harness::DetectorKind as K;
    Ok(match name {
        "pacer" => K::Pacer { rate },
        "pacer-accordion" => K::PacerAccordion { rate },
        "fasttrack" => K::FastTrack,
        "generic" => K::Generic,
        "literace" => K::LiteRace { burst: 1000 },
        "none" => K::Uninstrumented,
        other => return Err(err(format!("unknown detector `{other}`"))),
    })
}

fn write_artifact(out: &mut String, path: &str, content: &str, what: &str) -> Result<(), CliError> {
    // Atomic replace: readers never see a half-written artifact, and a
    // crash mid-write leaves any previous version intact.
    pacer_collections::atomic_write(path, content)
        .map_err(|e| err(format!("cannot write {path}: {e}")))?;
    let _ = writeln!(out, "{what} written to {path}");
    Ok(())
}

/// Artifact writer for the fleet path: atomic like [`write_artifact`],
/// plus deterministic `artifact-io` fault injection with bounded retries
/// when a [`FaultPlan`] arms that site.
struct ArtifactSink<'a> {
    plan: Option<&'a FaultPlan>,
    max_retries: u32,
    writes: u64,
    injected: u64,
    retried: u64,
}

impl<'a> ArtifactSink<'a> {
    fn new(plan: Option<&'a FaultPlan>, max_retries: u32) -> Self {
        ArtifactSink {
            plan,
            max_retries,
            writes: 0,
            injected: 0,
            retried: 0,
        }
    }

    fn write(
        &mut self,
        out: &mut String,
        path: &str,
        content: &str,
        what: &str,
    ) -> Result<(), CliError> {
        let index = self.writes;
        self.writes += 1;
        let plan = self.plan;
        let mut injected = 0u64;
        // Retries run on the engine's deterministic backoff schedule —
        // derived from (write index, attempt), never wall-clock — so a
        // faulted campaign's output stays byte-identical at any --jobs N.
        let result = pacer_harness::retry_artifact_io(
            pacer_harness::RetryPolicy {
                max_retries: self.max_retries,
            },
            index,
            |attempt| {
                if plan.is_some_and(|p| p.artifact_io_fails(index, attempt)) {
                    injected += 1;
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::Other,
                        format!(
                            "{INJECTED_PREFIX}artifact IO error (write {index}, attempt {attempt})"
                        ),
                    ));
                }
                pacer_collections::atomic_write(path, content)
            },
        );
        self.injected += injected;
        match result {
            Ok(((), attempts)) => {
                self.retried += u64::from(attempts - 1);
                let _ = writeln!(out, "{what} written to {path}");
                Ok(())
            }
            Err(reasons) => {
                self.retried += u64::from(self.max_retries);
                let last = reasons.last().cloned().unwrap_or_default();
                Err(err(format!("cannot write {path}: {last}")))
            }
        }
    }
}

fn cmd_stats(args: &[String]) -> Result<String, CliError> {
    let (file, opts) = parse_options(args)?;
    let (ast, compiled) = load_program(&file)?;
    let kind = detector_kind(&opts.detector, opts.rate)?;
    let trial =
        pacer_harness::observed::run_observed_trial(&compiled, kind, opts.seed, RING_CAPACITY)
            .map_err(|e| err(format!("runtime error: {e}")))?;

    // Escape-analysis decisions, as structured events ahead of the
    // execution's trace (they are compile-time facts, not run events).
    let mut escape_events = String::new();
    let mut elisions = 0usize;
    for f in &ast.functions {
        let info = pacer_lang::escape::analyze(f);
        for var in info.provably_local_locals() {
            elisions += 1;
            pacer_obs::Event::EscapeElision {
                func: f.name.clone(),
                var: var.to_string(),
            }
            .write_jsonl(&mut escape_events);
        }
    }
    let events_jsonl = escape_events + &trial.events_jsonl;

    let mut out = String::new();
    let _ = writeln!(out, "{} under {}, seed {}", file, kind.label(), opts.seed);
    if elisions > 0 {
        let _ = writeln!(
            out,
            "escape analysis: {elisions} provably-local variable(s) uninstrumented"
        );
    }
    let _ = writeln!(out, "{}", trial.metrics);
    let _ = writeln!(out, "distinct races: {}", trial.distinct_races.len());
    if let Some(path) = &opts.metrics_out {
        write_artifact(&mut out, path, &trial.metrics.to_json(), "metrics")?;
    }
    if let Some(path) = &opts.events_out {
        write_artifact(&mut out, path, &events_jsonl, "event trace")?;
    }
    Ok(out)
}

/// Builds the resource-governor configuration from the budget flags, or
/// `None` when no budget is armed. The ladder defaults to the starting
/// rate halved per rung ([`pacer_governor::GovernorConfig::for_rate`]);
/// `--rate-ladder-governor` overrides it.
fn build_governor(opts: &Options) -> Result<Option<pacer_governor::GovernorConfig>, CliError> {
    if opts.mem_budget.is_none() && opts.deadline_events.is_none() {
        if opts.governor_ladder.is_some() {
            return Err(err(
                "--rate-ladder-governor requires --mem-budget or --deadline-events",
            ));
        }
        return Ok(None);
    }
    let mut g = pacer_governor::GovernorConfig::for_rate(opts.rate);
    g.mem_budget_bytes = opts.mem_budget;
    g.deadline_events = opts.deadline_events;
    if let Some(spec) = &opts.governor_ladder {
        g.ladder = pacer_governor::parse_ladder(spec)
            .map_err(|e| err(format!("--rate-ladder-governor: {e}")))?;
    }
    g.validate().map_err(err)?;
    Ok(Some(g))
}

fn cmd_fleet(args: &[String]) -> Result<CmdOutput, CliError> {
    let (file, opts) = parse_options(args)?;
    let (_, compiled) = load_program(&file)?;
    pacer_harness::parallel::set_jobs(opts.jobs);
    let governor = build_governor(&opts)?;

    let plan = match &opts.fault_plan {
        None => None,
        Some(path) => {
            let spec = std::fs::read_to_string(path)
                .map_err(|e| err(format!("cannot read fault plan {path}: {e}")))?;
            Some(FaultPlan::parse(&spec).map_err(|e| err(format!("{path}: {e}")))?)
        }
    };
    let observe = opts.metrics_out.is_some() || opts.events_out.is_some();
    // --resume keeps checkpointing to the same journal unless --checkpoint
    // names another path, so an interrupted resume can itself be resumed.
    let checkpoint = opts.checkpoint.as_deref().or(opts.resume.as_deref());

    let fleet = pacer_harness::run_resilient_fleet(&pacer_harness::FleetEngineConfig {
        program: &compiled,
        instances: opts.instances,
        rate: opts.rate,
        base_seed: opts.seed,
        policy: pacer_harness::RetryPolicy {
            max_retries: opts.max_retries,
        },
        plan: plan.as_ref(),
        ring_capacity: observe.then_some(RING_CAPACITY),
        checkpoint: checkpoint.map(Path::new),
        resume: opts.resume.as_deref().map(Path::new),
        governor: governor.as_ref(),
    })
    .map_err(|e| err(e.to_string()))?;

    let report = &fleet.report;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fleet: {} instance(s) at r = {:.2}%, seed {}",
        report.instances,
        report.rate * 100.0,
        opts.seed
    );
    if fleet.resumed > 0 {
        let _ = writeln!(
            out,
            "resumed {} completed trial(s) from the journal",
            fleet.resumed
        );
    }
    let found = report.found();
    let _ = writeln!(out, "distinct races found by the fleet: {}", found.len());
    if let Some(mean) = report.mean_reporters() {
        let _ = writeln!(out, "mean reporting instances per race: {mean:.2}");
    }
    for (a, b) in &found {
        let _ = writeln!(
            out,
            "  {}  <->  {}",
            compiled.describe_site(*a),
            compiled.describe_site(*b)
        );
    }
    let _ = writeln!(out, "cumulative distinct races: {:?}", report.cumulative);
    if plan.is_some() || !fleet.quarantine.is_clean() {
        let _ = write!(out, "{}", fleet.quarantine);
    }
    if governor.is_some() || !fleet.governor.is_clean() {
        let _ = write!(out, "{}", fleet.governor);
    }

    let mut sink = ArtifactSink::new(plan.as_ref(), opts.max_retries);
    if let Some(path) = &opts.metrics_out {
        let json = fleet
            .metrics
            .as_ref()
            .map(pacer_obs::Metrics::to_json)
            .unwrap_or_default();
        sink.write(&mut out, path, &json, "metrics")?;
    }
    if let Some(path) = &opts.events_out {
        let jsonl = fleet.events_jsonl.as_deref().unwrap_or_default();
        sink.write(&mut out, path, jsonl, "event trace")?;
    }
    if sink.injected > 0 {
        let _ = writeln!(
            out,
            "artifact IO: {} injected failure(s), {} retried",
            sink.injected, sink.retried
        );
    }

    if let Some(dir) = &opts.record_traces {
        let format = trace_format(&opts)?;
        std::fs::create_dir_all(dir).map_err(|e| err(format!("cannot create {dir}: {e}")))?;
        // Capture each instance's execution (same seed, therefore the same
        // schedule as its fleet trial) in parallel; encoding happens in the
        // workers but files are written sequentially in index order, so the
        // directory contents are byte-identical at any --jobs count.
        let encoded: Vec<Result<Vec<u8>, String>> =
            pacer_harness::parallel::run_indexed(opts.instances as usize, |i| {
                let seed = pacer_harness::fleet::fleet_trial_seed(opts.seed, i as u64);
                pacer_harness::record_trial_trace(&compiled, opts.rate, seed)
                    .map(|trace| match format {
                        TraceFormat::Binary => pacer_trace::binary::encode_trace(&trace),
                        TraceFormat::Text => trace.to_text().into_bytes(),
                    })
                    .map_err(|e| e.to_string())
            });
        for (i, result) in encoded.iter().enumerate() {
            let bytes = result
                .as_ref()
                .map_err(|e| err(format!("instance {i}: {e}")))?;
            let path = format!("{dir}/instance-{i:04}.{}", format.extension());
            pacer_collections::atomic_write(&path, bytes)
                .map_err(|e| err(format!("cannot write {path}: {e}")))?;
        }
        let _ = writeln!(out, "recorded {} instance trace(s) to {dir}", encoded.len());
    }

    // Trials that merely finished at a reduced rate are a *successful*
    // degradation (exit 0); cancellation at the ladder floor means the
    // campaign lost coverage, reported like quarantines (exit 2).
    let code = if fleet.quarantine.is_clean() && !fleet.governor.any_cancelled() {
        0
    } else {
        2
    };
    Ok(CmdOutput { text: out, code })
}

fn cmd_fuzz(args: &[String]) -> Result<String, CliError> {
    let (file, opts) = parse_flags(args)?;
    if let Some(file) = file {
        return Err(err(format!(
            "fuzz generates its own programs; unexpected argument `{file}`"
        )));
    }
    pacer_harness::parallel::set_jobs(opts.jobs);
    let mut cfg = pacer_fuzz::FuzzConfig::new(opts.seed, opts.iters);
    cfg.oracle.schedule_seeds = opts.schedule_seeds;
    if let Some(ladder) = &opts.rate_ladder {
        cfg.oracle.rate_ladder = ladder.clone();
    }
    let report = pacer_fuzz::run_fuzz(&cfg);
    let mut out = report.summary();
    if let Some(dir) = &opts.trace_dir {
        std::fs::create_dir_all(dir).map_err(|e| err(format!("cannot create {dir}: {e}")))?;
        let traces = pacer_fuzz::record_truth_traces(&cfg);
        for t in &traces {
            let path = format!("{}/program-{:04}.ptrace", dir, t.index);
            pacer_collections::atomic_write(&path, &t.bytes)
                .map_err(|e| err(format!("cannot write {path}: {e}")))?;
        }
        let _ = writeln!(out, "recorded {} truth trace(s) to {dir}", traces.len());
    }
    if let Some(path) = &opts.metrics_out {
        let mut reg = pacer_obs::Registry::enabled(pacer_obs::RegistryConfig::default());
        reg.add_fuzz(report.fuzz_counters());
        write_artifact(&mut out, path, &reg.metrics().to_json(), "metrics")?;
    }
    if report.violation_count() > 0 {
        // Violations are a failing exit, with the full report as message.
        return Err(err(out));
    }
    Ok(out)
}

fn cmd_fmt(args: &[String], fold: bool) -> Result<String, CliError> {
    let (file, _) = parse_options(args)?;
    let source =
        std::fs::read_to_string(&file).map_err(|e| err(format!("cannot read {file}: {e}")))?;
    let mut ast = pacer_lang::parse(&source).map_err(|e| err(format!("{file}: {e}")))?;
    if fold {
        ast = pacer_lang::fold_program(&ast);
    }
    Ok(pacer_lang::print(&ast))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn write_temp(name: &str, content: &str) -> String {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    const RACY: &str = "
        shared x;
        fn w() { let i = 0; while (i < 50) { x = x + 1; i = i + 1; } }
        fn main() { let a = spawn w(); let b = spawn w(); join a; join b; }
    ";

    #[test]
    fn help_prints_usage() {
        let out = run(&args(&["--help"])).unwrap();
        assert!(out.contains("usage: pacer"));
        assert!(run(&[]).is_err());
        assert!(run(&args(&["bogus"])).is_err());
    }

    #[test]
    fn run_with_fasttrack_reports_races() {
        let path = write_temp("pacer_cli_racy.pl", RACY);
        let out = run(&args(&[
            "run",
            &path,
            "--detector",
            "fasttrack",
            "--seed",
            "3",
        ]))
        .unwrap();
        assert!(out.contains("distinct:"), "{out}");
        assert!(out.contains("w: x"), "site descriptions shown: {out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_records_and_replay_reanalyzes() {
        let src = write_temp("pacer_cli_rec.pl", RACY);
        let trace_path = std::env::temp_dir().join("pacer_cli_rec.trace");
        let trace_str = trace_path.to_string_lossy().into_owned();
        let out = run(&args(&[
            "run",
            &src,
            "--detector",
            "fasttrack",
            "--seed",
            "5",
            "--trace",
            &trace_str,
        ]))
        .unwrap();
        assert!(out.contains("event trace written"));
        let replayed = run(&args(&["replay", &trace_str, "--detector", "generic"])).unwrap();
        assert!(replayed.contains("replaying"), "{replayed}");
        assert!(replayed.contains("distinct:"), "{replayed}");
        std::fs::remove_file(&src).ok();
        std::fs::remove_file(&trace_path).ok();
    }

    #[test]
    fn record_then_binary_replay_matches_text_replay() {
        let src = write_temp("pacer_cli_record.pl", RACY);
        let bin = std::env::temp_dir().join("pacer_cli_record.ptrace");
        let txt = std::env::temp_dir().join("pacer_cli_record.trace");
        let bin_str = bin.to_string_lossy().into_owned();
        let txt_str = txt.to_string_lossy().into_owned();
        let base = ["record", &src, "--rate", "1.0", "--seed", "5"];
        let rec_bin = run(&args(&[&base[..], &["--out", &bin_str]].concat())).unwrap();
        assert!(rec_bin.contains("binary trace written"), "{rec_bin}");
        assert!(rec_bin.contains("bytes/event"), "{rec_bin}");
        let rec_txt = run(&args(
            &[&base[..], &["--out", &txt_str, "--format", "text"]].concat(),
        ))
        .unwrap();
        assert!(rec_txt.contains("text trace written"), "{rec_txt}");

        // The two encodings carry the same events, so offline analysis is
        // byte-identical: same summary line, same race report.
        for detector in ["fasttrack", "pacer", "generic"] {
            let from_bin = run(&args(&["replay", &bin_str, "--detector", detector])).unwrap();
            let from_txt = run(&args(&["replay", &txt_str, "--detector", detector])).unwrap();
            assert_eq!(from_bin.text, from_txt.text, "detector {detector}");
            assert!(from_bin.contains("replaying"), "{from_bin}");
        }
        // FASTTRACK at rate 1.0 must see the race.
        let report = run(&args(&["replay", &bin_str, "--detector", "fasttrack"])).unwrap();
        assert!(report.contains("distinct:"), "{report}");
        std::fs::remove_file(&src).ok();
        std::fs::remove_file(&bin).ok();
        std::fs::remove_file(&txt).ok();
    }

    #[test]
    fn replay_metrics_agree_across_encodings() {
        let src = write_temp("pacer_cli_rmetrics.pl", RACY);
        let bin = std::env::temp_dir().join("pacer_cli_rmetrics.ptrace");
        let txt = std::env::temp_dir().join("pacer_cli_rmetrics.trace");
        let m_bin = std::env::temp_dir().join("pacer_cli_rmetrics_bin.json");
        let m_txt = std::env::temp_dir().join("pacer_cli_rmetrics_txt.json");
        let bin_str = bin.to_string_lossy().into_owned();
        let txt_str = txt.to_string_lossy().into_owned();
        let base = ["record", &src, "--rate", "1.0", "--seed", "9"];
        run(&args(&[&base[..], &["--out", &bin_str]].concat())).unwrap();
        run(&args(
            &[&base[..], &["--out", &txt_str, "--format", "text"]].concat(),
        ))
        .unwrap();
        run(&args(&[
            "replay",
            &bin_str,
            "--metrics-out",
            &m_bin.to_string_lossy(),
        ]))
        .unwrap();
        run(&args(&[
            "replay",
            &txt_str,
            "--metrics-out",
            &m_txt.to_string_lossy(),
        ]))
        .unwrap();
        let a = std::fs::read_to_string(&m_bin).unwrap();
        let b = std::fs::read_to_string(&m_txt).unwrap();
        assert_eq!(a, b);
        assert!(a.contains('{'), "metrics JSON written: {a}");
        for p in [&bin, &txt, &m_bin, &m_txt] {
            std::fs::remove_file(p).ok();
        }
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn replay_resample_overlays_fresh_periods_deterministically() {
        let src = write_temp("pacer_cli_resample.pl", RACY);
        let bin = std::env::temp_dir().join("pacer_cli_resample.ptrace");
        let bin_str = bin.to_string_lossy().into_owned();
        run(&args(&[
            "record", &src, "--rate", "1.0", "--seed", "5", "--out", &bin_str,
        ]))
        .unwrap();
        let resample = |seed: &str| {
            run(&args(&[
                "replay",
                &bin_str,
                "--resample",
                "0.5",
                "--seed",
                seed,
            ]))
            .unwrap()
        };
        let once = resample("7");
        let again = resample("7");
        assert_eq!(once.text, again.text, "resampling is seeded");
        assert!(once.contains("resampled sampling periods"), "{once}");
        std::fs::remove_file(&src).ok();
        std::fs::remove_file(&bin).ok();
    }

    #[test]
    fn replay_rejects_corrupt_binary_but_tolerates_truncation() {
        let src = write_temp("pacer_cli_corrupt.pl", RACY);
        let bin = std::env::temp_dir().join("pacer_cli_corrupt.ptrace");
        let bin_str = bin.to_string_lossy().into_owned();
        run(&args(&[
            "record", &src, "--rate", "1.0", "--seed", "5", "--out", &bin_str,
        ]))
        .unwrap();
        let pristine = std::fs::read(&bin).unwrap();

        // A bit flip inside a frame payload is a hard checksum error.
        let mut flipped = pristine.clone();
        let mid = pristine.len() / 2;
        flipped[mid] ^= 0x10;
        let bad = std::env::temp_dir().join("pacer_cli_corrupt_flip.ptrace");
        std::fs::write(&bad, &flipped).unwrap();
        let e = run(&args(&["replay", &bad.to_string_lossy()])).unwrap_err();
        assert!(
            e.message.contains("checksum") || e.message.contains("frame"),
            "{}",
            e.message
        );

        // A truncated tail is a clean partial stop: the complete prefix is
        // still analyzed, with a note.
        let cut = std::env::temp_dir().join("pacer_cli_corrupt_cut.ptrace");
        std::fs::write(&cut, &pristine[..pristine.len() - 5]).unwrap();
        let out = run(&args(&["replay", &cut.to_string_lossy()])).unwrap();
        assert!(out.contains("ends mid-frame"), "{out}");

        // A wrong magic falls through to the text parser and fails there.
        let mut wrong = pristine;
        wrong[0] ^= 0xff;
        let nomagic = std::env::temp_dir().join("pacer_cli_corrupt_magic.ptrace");
        std::fs::write(&nomagic, &wrong).unwrap();
        assert!(run(&args(&["replay", &nomagic.to_string_lossy()])).is_err());

        for p in [&bin, &bad, &cut, &nomagic] {
            std::fs::remove_file(p).ok();
        }
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn fleet_recorded_traces_are_identical_across_job_counts() {
        let src = write_temp("pacer_cli_fleettr.pl", RACY);
        let dir1 = std::env::temp_dir().join("pacer_cli_fleettr_j1");
        let dir4 = std::env::temp_dir().join("pacer_cli_fleettr_j4");
        let fleet = |jobs: &str, dir: &std::path::Path| {
            run(&args(&[
                "fleet",
                &src,
                "--instances",
                "6",
                "--rate",
                "0.5",
                "--seed",
                "3",
                "--jobs",
                jobs,
                "--record-traces",
                &dir.to_string_lossy(),
            ]))
            .unwrap()
        };
        let o1 = fleet("1", &dir1);
        let o4 = fleet("4", &dir4);
        assert_eq!(o1.text.replace("_j1", "_jN"), o4.text.replace("_j4", "_jN"));
        assert!(o1.contains("recorded 6 instance trace(s)"), "{o1}");
        for i in 0..6 {
            let name = format!("instance-{i:04}.ptrace");
            let a = std::fs::read(dir1.join(&name)).unwrap();
            let b = std::fs::read(dir4.join(&name)).unwrap();
            assert_eq!(a, b, "{name} differs between job counts");
        }
        // The captured traces replay cleanly.
        let first = dir1.join("instance-0000.ptrace");
        let replayed = run(&args(&["replay", &first.to_string_lossy()])).unwrap();
        assert!(replayed.contains("replaying"), "{replayed}");
        std::fs::remove_dir_all(&dir1).ok();
        std::fs::remove_dir_all(&dir4).ok();
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn fuzz_trace_dir_writes_replayable_truth_traces() {
        let dir = std::env::temp_dir().join("pacer_cli_fuzztr");
        let out = run(&args(&[
            "fuzz",
            "--seed",
            "11",
            "--iters",
            "3",
            "--trace-dir",
            &dir.to_string_lossy(),
        ]))
        .unwrap();
        assert!(out.contains("truth trace(s)"), "{out}");
        let first = dir.join("program-0000.ptrace");
        let replayed = run(&args(&[
            "replay",
            &first.to_string_lossy(),
            "--detector",
            "generic",
        ]))
        .unwrap();
        assert!(replayed.contains("replaying"), "{replayed}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_reports_escape_results() {
        let src = write_temp(
            "pacer_cli_check.pl",
            "shared g; fn main() { let o = new obj; o.f = 1; let p = new obj; g = p; }",
        );
        let out = run(&args(&["check", &src])).unwrap();
        assert!(out.contains("instrumented site(s)"));
        assert!(out.contains("thread-local (uninstrumented): o"), "{out}");
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn fmt_and_fold_pretty_print() {
        let src = write_temp("pacer_cli_fmt.pl", "shared x;fn main(){x=1+2;}");
        let fmt = run(&args(&["fmt", &src])).unwrap();
        assert!(fmt.contains("x = (1 + 2);"), "{fmt}");
        let folded = run(&args(&["fold", &src])).unwrap();
        assert!(folded.contains("x = 3;"), "{folded}");
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn pacer_run_prints_effective_rate() {
        let path = write_temp("pacer_cli_pacer.pl", RACY);
        let out = run(&args(&["run", &path, "--rate", "1.0", "--seed", "1"])).unwrap();
        assert!(out.contains("effective sampling rate"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flag_errors_are_reported() {
        assert!(run(&args(&["run"])).is_err(), "missing file");
        assert!(run(&args(&["run", "f", "--rate", "2"])).is_err());
        assert!(run(&args(&["run", "f", "--bogus"])).is_err());
        assert!(run(&args(&["run", "/nonexistent.pl"])).is_err());
        assert!(run(&args(&["replay", "/nonexistent.trace"])).is_err());
    }

    #[test]
    fn fleet_output_is_identical_across_job_counts() {
        let path = write_temp("pacer_cli_fleet.pl", RACY);
        let base = &[
            "fleet",
            &path,
            "--instances",
            "8",
            "--rate",
            "0.25",
            "--seed",
            "3",
        ];
        let seq = run(&args(&[base, &["--jobs", "1"][..]].concat())).unwrap();
        let par = run(&args(&[base, &["--jobs", "4"][..]].concat())).unwrap();
        assert!(seq.contains("fleet: 8 instance(s)"), "{seq}");
        assert_eq!(seq, par, "--jobs must not change fleet output");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stats_prints_breakdown_and_writes_artifacts() {
        // Like RACY, plus a provably-local object so escape analysis has
        // something to elide.
        let path = write_temp(
            "pacer_cli_stats.pl",
            "
            shared x;
            fn w() {
                let o = new obj;
                o.f = 0;
                let i = 0;
                while (i < 50) { x = x + 1; i = i + 1; }
            }
            fn main() { let a = spawn w(); let b = spawn w(); join a; join b; }
        ",
        );
        let mpath = std::env::temp_dir().join("pacer_cli_stats.metrics.json");
        let tpath = std::env::temp_dir().join("pacer_cli_stats.trace.jsonl");
        let m = mpath.to_string_lossy().into_owned();
        let t = tpath.to_string_lossy().into_owned();
        let out = run(&args(&[
            "stats",
            &path,
            "--rate",
            "1.0",
            "--seed",
            "2",
            "--metrics-out",
            &m,
            "--trace-out",
            &t,
        ]))
        .unwrap();
        assert!(out.contains("operation breakdown (Table 3)"), "{out}");
        assert!(out.contains("escape analysis:"), "{out}");
        assert!(out.contains("distinct races:"), "{out}");
        let json = std::fs::read_to_string(&mpath).unwrap();
        assert!(json.starts_with('{'), "{json}");
        assert!(json.contains("\"schema\": 1"), "{json}");
        assert!(json.contains("\"races_reported\""), "{json}");
        let trace = std::fs::read_to_string(&tpath).unwrap();
        assert!(trace.contains("\"ev\":\"escape_elision\""), "{trace}");
        assert!(trace.contains("\"ev\":\"period_begin\""), "{trace}");
        assert!(
            trace.lines().all(|l| l.starts_with("{\"ev\":\"")),
            "every line is an event object"
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&mpath).ok();
        std::fs::remove_file(&tpath).ok();
    }

    #[test]
    fn fleet_artifacts_are_identical_across_job_counts() {
        let path = write_temp("pacer_cli_fleet_obs.pl", RACY);
        let run_at = |jobs: &str, tag: &str| {
            let m = std::env::temp_dir().join(format!("pacer_cli_fleet_{tag}.json"));
            let t = std::env::temp_dir().join(format!("pacer_cli_fleet_{tag}.jsonl"));
            run(&args(&[
                "fleet",
                &path,
                "--instances",
                "6",
                "--rate",
                "0.25",
                "--seed",
                "3",
                "--jobs",
                jobs,
                "--metrics-out",
                &m.to_string_lossy(),
                "--trace-out",
                &t.to_string_lossy(),
            ]))
            .unwrap();
            let metrics = std::fs::read_to_string(&m).unwrap();
            let trace = std::fs::read_to_string(&t).unwrap();
            std::fs::remove_file(&m).ok();
            std::fs::remove_file(&t).ok();
            (metrics, trace)
        };
        let (m1, t1) = run_at("1", "j1");
        let (m4, t4) = run_at("4", "j4");
        assert_eq!(m1, m4, "metrics must be byte-identical across job counts");
        assert_eq!(t1, t4, "traces must be byte-identical across job counts");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fuzz_output_is_identical_across_job_counts() {
        let base = &[
            "fuzz",
            "--iters",
            "8",
            "--seed",
            "42",
            "--schedule-seeds",
            "1",
        ];
        let seq = run(&args(&[base, &["--jobs", "1"][..]].concat())).unwrap();
        let par = run(&args(&[base, &["--jobs", "4"][..]].concat())).unwrap();
        assert!(seq.contains("pacer-fuzz: 8 programs"), "{seq}");
        assert!(seq.contains("violations: 0"), "{seq}");
        assert_eq!(seq, par, "--jobs must not change fuzz output");
    }

    #[test]
    fn fuzz_writes_metrics_and_honors_the_rate_ladder() {
        let mpath = std::env::temp_dir().join("pacer_cli_fuzz.metrics.json");
        let m = mpath.to_string_lossy().into_owned();
        let out = run(&args(&[
            "fuzz",
            "--iters",
            "4",
            "--seed",
            "7",
            "--schedule-seeds",
            "1",
            "--rate-ladder",
            "1.0,0.25",
            "--metrics-out",
            &m,
        ]))
        .unwrap();
        assert!(out.contains("rate 0.2500:"), "{out}");
        assert!(!out.contains("rate 0.5000:"), "{out}");
        let json = std::fs::read_to_string(&mpath).unwrap();
        assert!(json.contains("\"fuzz\""), "{json}");
        assert!(json.contains("\"programs\":4"), "{json}");
        std::fs::remove_file(&mpath).ok();
    }

    #[test]
    fn fuzz_flag_errors_are_reported() {
        assert!(run(&args(&["fuzz", "stray.pl"])).is_err(), "no file arg");
        assert!(run(&args(&["fuzz", "--iters", "0"])).is_err());
        assert!(run(&args(&["fuzz", "--rate-ladder", "1.5"])).is_err());
        assert!(run(&args(&["fuzz", "--rate-ladder", "nope"])).is_err());
        assert!(run(&args(&["fuzz", "--schedule-seeds", "0"])).is_err());
    }

    #[test]
    fn fleet_fault_campaign_quarantines_and_exits_2() {
        let path = write_temp("pacer_cli_faults.pl", RACY);
        let plan = write_temp("pacer_cli_faults.plan", "detector-panic every=3\n");
        let base = &[
            "fleet",
            &path,
            "--instances",
            "6",
            "--rate",
            "0.25",
            "--seed",
            "3",
            "--fault-plan",
            &plan,
            "--max-retries",
            "1",
        ];
        let seq = run(&args(&[base, &["--jobs", "1"][..]].concat())).unwrap();
        let par = run(&args(&[base, &["--jobs", "4"][..]].concat())).unwrap();
        assert_eq!(seq.code, 2, "quarantines exit 2: {seq}");
        assert!(seq.contains("faults: injected="), "{seq}");
        assert!(seq.contains("quarantined trial"), "{seq}");
        assert_eq!(seq, par, "fault campaigns are deterministic across --jobs");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&plan).ok();
    }

    #[test]
    fn fleet_clean_run_exits_0_and_matches_pre_resilience_output() {
        let path = write_temp("pacer_cli_clean.pl", RACY);
        let out = run(&args(&[
            "fleet",
            &path,
            "--instances",
            "4",
            "--rate",
            "0.25",
            "--seed",
            "3",
        ]))
        .unwrap();
        assert_eq!(out.code, 0);
        assert!(!out.contains("faults:"), "clean runs stay quiet: {out}");
        assert!(!out.contains("resumed"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fleet_resume_after_truncation_reproduces_artifacts() {
        let path = write_temp("pacer_cli_resume.pl", RACY);
        let dir = std::env::temp_dir().join(format!("pacer-cli-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("fleet.journal").to_string_lossy().into_owned();
        let m_full = dir.join("full.json").to_string_lossy().into_owned();
        let t_full = dir.join("full.jsonl").to_string_lossy().into_owned();
        let m_res = dir.join("res.json").to_string_lossy().into_owned();
        let t_res = dir.join("res.jsonl").to_string_lossy().into_owned();
        let base = |extra: &[&str]| {
            let head = [
                "fleet",
                &path,
                "--instances",
                "6",
                "--rate",
                "0.25",
                "--seed",
                "3",
            ];
            args(&[&head[..], extra].concat())
        };

        // Reference: uninterrupted run.
        run(&base(&["--metrics-out", &m_full, "--trace-out", &t_full])).unwrap();

        // Interrupted run: checkpoint (observed, so the journal carries
        // metrics), then truncate the journal to simulate a crash
        // mid-campaign. Its own artifacts are throwaways.
        let m_tmp = dir.join("tmp.json").to_string_lossy().into_owned();
        let t_tmp = dir.join("tmp.jsonl").to_string_lossy().into_owned();
        run(&base(&[
            "--checkpoint",
            &journal,
            "--metrics-out",
            &m_tmp,
            "--trace-out",
            &t_tmp,
        ]))
        .unwrap();
        // Cut into the final entry (entries vary a lot in size, so a
        // midpoint cut could land inside the first, huge line and leave
        // nothing resumable).
        let bytes = std::fs::read(&journal).unwrap();
        std::fs::write(&journal, &bytes[..bytes.len() - 200]).unwrap();

        let resumed = run(&base(&[
            "--resume",
            &journal,
            "--metrics-out",
            &m_res,
            "--trace-out",
            &t_res,
        ]))
        .unwrap();
        assert_eq!(resumed.code, 0);
        assert!(resumed.contains("resumed"), "{resumed}");
        assert_eq!(
            std::fs::read_to_string(&m_full).unwrap(),
            std::fs::read_to_string(&m_res).unwrap(),
            "resumed metrics artifact is byte-identical"
        );
        assert_eq!(
            std::fs::read_to_string(&t_full).unwrap(),
            std::fs::read_to_string(&t_res).unwrap(),
            "resumed event-trace artifact is byte-identical"
        );
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fleet_artifact_io_faults_are_retried() {
        let path = write_temp("pacer_cli_artio.pl", RACY);
        // Every artifact write fails once; one retry makes each succeed.
        let plan = write_temp("pacer_cli_artio.plan", "artifact-io every=1 limit=1\n");
        let m = std::env::temp_dir().join("pacer_cli_artio.json");
        let out = run(&args(&[
            "fleet",
            &path,
            "--instances",
            "2",
            "--rate",
            "0.25",
            "--seed",
            "3",
            "--fault-plan",
            &plan,
            "--metrics-out",
            &m.to_string_lossy(),
        ]))
        .unwrap();
        assert_eq!(out.code, 0, "retries absorb the injected IO faults: {out}");
        assert!(
            out.contains("artifact IO: 1 injected failure(s), 1 retried"),
            "{out}"
        );
        assert!(std::fs::read_to_string(&m).unwrap().starts_with('{'));
        std::fs::remove_file(&m).ok();
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&plan).ok();

        // With no retry budget the injected IO error is a hard failure.
        let path2 = write_temp("pacer_cli_artio2.pl", RACY);
        let plan2 = write_temp("pacer_cli_artio2.plan", "artifact-io every=1\n");
        let e = run(&args(&[
            "fleet",
            &path2,
            "--instances",
            "2",
            "--seed",
            "3",
            "--fault-plan",
            &plan2,
            "--max-retries",
            "0",
            "--metrics-out",
            &m.to_string_lossy(),
        ]))
        .unwrap_err();
        assert!(e.message.contains("injected: artifact IO error"), "{e}");
        std::fs::remove_file(&path2).ok();
        std::fs::remove_file(&plan2).ok();
    }

    #[test]
    fn fleet_rejects_bad_fault_plans_and_flags() {
        let path = write_temp("pacer_cli_badplan.pl", RACY);
        let plan = write_temp("pacer_cli_badplan.plan", "frobnicate\n");
        let e = run(&args(&["fleet", &path, "--fault-plan", &plan])).unwrap_err();
        assert!(e.message.contains("unknown directive"), "{e}");
        assert!(run(&args(&["fleet", &path, "--fault-plan"])).is_err());
        assert!(run(&args(&["fleet", &path, "--max-retries", "x"])).is_err());
        assert!(run(&args(&[
            "fleet",
            &path,
            "--fault-plan",
            "/nonexistent.plan"
        ]))
        .is_err());
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&plan).ok();
    }

    #[test]
    fn detector_none_runs_uninstrumented() {
        let path = write_temp("pacer_cli_none.pl", RACY);
        let out = run(&args(&["run", &path, "--detector", "none"])).unwrap();
        assert!(out.contains("executed"));
        assert!(!out.contains("distinct"));
        std::fs::remove_file(&path).ok();
    }
}
