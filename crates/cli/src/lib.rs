//! Implementation of the `pacer` command-line tool.
//!
//! Subcommands (see [`run`] for dispatch):
//!
//! ```text
//! pacer run <file> [--rate R] [--seed N] [--detector D] [--trace OUT]
//!     Compile and execute a mini-language program under a race detector.
//!     D ∈ {pacer, pacer-accordion, fasttrack, generic, literace, none}.
//! pacer replay <file.trace> [--detector D]
//!     Re-analyze a recorded trace offline.
//! pacer check <file>
//!     Parse, analyze, and compile only; print instrumentation summary.
//! pacer fmt <file>
//!     Pretty-print the program in canonical form.
//! pacer fold <file>
//!     Constant-fold, then pretty-print.
//! pacer lint <file>
//!     Static lockset discipline check (imprecise by design: §6.2).
//! pacer fleet <file> [--instances N] [--rate R] [--seed N] [--jobs N]
//!     Simulate a deployed fleet: N instances each run the program once
//!     under PACER at rate R, race reports aggregated centrally (§1).
//!     --jobs parallelizes the instances; output is identical at any
//!     job count.
//! ```
//!
//! The library form exists so the behavior is unit-testable; `main.rs` is a
//! thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use pacer_core::{AccordionPacerDetector, PacerDetector};
use pacer_fasttrack::{FastTrackDetector, GenericDetector};
use pacer_lang::ir::CompiledProgram;
use pacer_literace::{LiteRaceConfig, LiteRaceDetector};
use pacer_runtime::{InstrumentMode, NullDetector, RunOutcome, Vm, VmConfig};
use pacer_trace::{Detector, RaceReport, RecordingDetector, Trace};

/// A CLI failure: message plus suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

fn err(message: impl Into<String>) -> CliError {
    CliError {
        message: message.into(),
    }
}

/// Parsed command-line options.
#[derive(Clone, Debug)]
struct Options {
    rate: f64,
    seed: u64,
    detector: String,
    trace_out: Option<String>,
    instances: u32,
    jobs: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            rate: 0.03,
            seed: 42,
            detector: "pacer".into(),
            trace_out: None,
            instances: 20,
            jobs: 1,
        }
    }
}

const USAGE: &str = "\
usage: pacer <command> [args]

commands:
  run <file>     compile + execute under a detector
                 [--rate R] [--seed N] [--detector D] [--trace OUT]
  replay <file>  re-analyze a recorded .trace file [--detector D]
  check <file>   compile only; print the instrumentation summary
  fmt <file>     pretty-print canonical source
  fold <file>    constant-fold, then pretty-print
  lint <file>    static lockset check (may report false positives)
  fleet <file>   simulate a deployed fleet of sampling instances
                 [--instances N] [--rate R] [--seed N] [--jobs N]

detectors: pacer (default), pacer-accordion, fasttrack, generic,
           literace, none
";

/// Entry point: dispatches on `args` (without the program name), returning
/// the text to print.
///
/// # Errors
///
/// Returns a [`CliError`] with a user-facing message on any failure.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Err(err(USAGE));
    };
    match command.as_str() {
        "run" => cmd_run(&args[1..]),
        "replay" => cmd_replay(&args[1..]),
        "check" => cmd_check(&args[1..]),
        "fmt" => cmd_fmt(&args[1..], false),
        "fold" => cmd_fmt(&args[1..], true),
        "lint" => cmd_lint(&args[1..]),
        "fleet" => cmd_fleet(&args[1..]),
        "--help" | "-h" | "help" => Ok(USAGE.to_string()),
        other => Err(err(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
}

fn parse_options(args: &[String]) -> Result<(String, Options), CliError> {
    let mut file = None;
    let mut opts = Options::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--rate" => {
                i += 1;
                let v: f64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("--rate requires a number in [0, 1]"))?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(err("--rate must be in [0, 1]"));
                }
                opts.rate = v;
            }
            "--seed" => {
                i += 1;
                opts.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("--seed requires an integer"))?;
            }
            "--detector" => {
                i += 1;
                opts.detector = args
                    .get(i)
                    .cloned()
                    .ok_or_else(|| err("--detector requires a name"))?;
            }
            "--trace" => {
                i += 1;
                opts.trace_out = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| err("--trace requires a path"))?,
                );
            }
            "--instances" => {
                i += 1;
                opts.instances = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| err("--instances requires a positive integer"))?;
            }
            "--jobs" => {
                i += 1;
                opts.jobs = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| err("--jobs requires a positive integer"))?;
            }
            flag if flag.starts_with("--") => {
                return Err(err(format!("unknown flag `{flag}`")));
            }
            path => {
                if file.replace(path.to_string()).is_some() {
                    return Err(err("multiple input files given"));
                }
            }
        }
        i += 1;
    }
    let file = file.ok_or_else(|| err("missing input file"))?;
    Ok((file, opts))
}

fn load_program(path: &str) -> Result<(pacer_lang::ast::Program, CompiledProgram), CliError> {
    let source =
        std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
    let ast = pacer_lang::parse(&source).map_err(|e| err(format!("{path}: {e}")))?;
    let compiled = pacer_lang::compile(&ast).map_err(|e| err(format!("{path}: {e}")))?;
    Ok((ast, compiled))
}

fn report_races(out: &mut String, program: Option<&CompiledProgram>, races: &[RaceReport]) {
    let mut distinct: Vec<_> = races.iter().map(RaceReport::distinct_key).collect();
    distinct.sort();
    distinct.dedup();
    let _ = writeln!(
        out,
        "\n{} dynamic race report(s), {} distinct:",
        races.len(),
        distinct.len()
    );
    for (a, b) in distinct {
        match program {
            Some(p) => {
                let _ = writeln!(out, "  {}  <->  {}", p.describe_site(a), p.describe_site(b));
            }
            None => {
                let _ = writeln!(out, "  {a}  <->  {b}");
            }
        }
    }
}

fn summarize_run(out: &mut String, outcome: &RunOutcome) {
    let _ = writeln!(
        out,
        "executed {} steps, {} threads ({} max live), {} GCs, result {:?}",
        outcome.steps,
        outcome.threads_started,
        outcome.max_live_threads,
        outcome.gc_count,
        outcome.main_result
    );
    if outcome.elided_accesses > 0 {
        let _ = writeln!(
            out,
            "escape analysis elided {} thread-local accesses",
            outcome.elided_accesses
        );
    }
}

fn cmd_run(args: &[String]) -> Result<String, CliError> {
    let (file, opts) = parse_options(args)?;
    let (_, compiled) = load_program(&file)?;
    let cfg = VmConfig::new(opts.seed).with_sampling_rate(opts.rate);
    let mut out = String::new();

    // Optionally record the event stream alongside the analysis by
    // re-running with the same seed (identical schedule).
    let vm_err = |e: pacer_runtime::VmError| err(format!("runtime error: {e}"));
    match opts.detector.as_str() {
        "pacer" => {
            let mut d = PacerDetector::new();
            let outcome = Vm::run(&compiled, &mut d, &cfg).map_err(vm_err)?;
            summarize_run(&mut out, &outcome);
            let _ = writeln!(
                out,
                "effective sampling rate: {:.2}%",
                d.stats().effective_rate().unwrap_or(0.0) * 100.0
            );
            report_races(&mut out, Some(&compiled), d.races());
        }
        "pacer-accordion" => {
            let mut d = AccordionPacerDetector::new();
            let outcome = Vm::run(&compiled, &mut d, &cfg).map_err(vm_err)?;
            summarize_run(&mut out, &outcome);
            let _ = writeln!(out, "clock slots used: {}", d.slots_in_use());
            report_races(&mut out, Some(&compiled), d.races());
        }
        "fasttrack" => {
            let mut d = FastTrackDetector::new();
            let outcome = Vm::run(&compiled, &mut d, &cfg).map_err(vm_err)?;
            summarize_run(&mut out, &outcome);
            report_races(&mut out, Some(&compiled), d.races());
        }
        "generic" => {
            let mut d = GenericDetector::new();
            let outcome = Vm::run(&compiled, &mut d, &cfg).map_err(vm_err)?;
            summarize_run(&mut out, &outcome);
            report_races(&mut out, Some(&compiled), d.races());
        }
        "literace" => {
            let mut d = LiteRaceDetector::new(LiteRaceConfig::default(), opts.seed);
            let outcome = Vm::run(&compiled, &mut d, &cfg).map_err(vm_err)?;
            summarize_run(&mut out, &outcome);
            let _ = writeln!(
                out,
                "effective sampling rate: {:.2}%",
                d.effective_rate().unwrap_or(0.0) * 100.0
            );
            report_races(&mut out, Some(&compiled), d.races());
        }
        "none" => {
            let mut d = NullDetector;
            let cfg = cfg.clone().with_instrument(InstrumentMode::Off);
            let outcome = Vm::run(&compiled, &mut d, &cfg).map_err(vm_err)?;
            summarize_run(&mut out, &outcome);
        }
        other => return Err(err(format!("unknown detector `{other}`"))),
    }

    if let Some(path) = opts.trace_out {
        let mut rec = RecordingDetector::new();
        Vm::run(&compiled, &mut rec, &cfg).map_err(vm_err)?;
        rec.trace()
            .save(&path)
            .map_err(|e| err(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "\nevent trace written to {path}");
    }
    Ok(out)
}

fn cmd_replay(args: &[String]) -> Result<String, CliError> {
    let (file, opts) = parse_options(args)?;
    let trace = Trace::load(&file).map_err(|e| err(format!("cannot load {file}: {e}")))?;
    trace
        .validate()
        .map_err(|e| err(format!("{file}: invalid trace: {e}")))?;
    let mut out = String::new();
    let stats = trace.stats();
    let _ = writeln!(
        out,
        "replaying {} actions ({} accesses, {} sync ops, {} threads)",
        trace.len(),
        stats.accesses(),
        stats.sync_ops(),
        trace.thread_count()
    );
    let races = match opts.detector.as_str() {
        "pacer" | "pacer-accordion" => {
            let mut d = PacerDetector::new();
            d.run(&trace);
            d.races().to_vec()
        }
        "fasttrack" => {
            let mut d = FastTrackDetector::new();
            d.run(&trace);
            d.races().to_vec()
        }
        "generic" => {
            let mut d = GenericDetector::new();
            d.run(&trace);
            d.races().to_vec()
        }
        "literace" => {
            let mut d = LiteRaceDetector::new(LiteRaceConfig::default(), opts.seed);
            d.run(&trace);
            d.races().to_vec()
        }
        other => return Err(err(format!("unknown detector `{other}`"))),
    };
    report_races(&mut out, None, &races);
    Ok(out)
}

fn cmd_check(args: &[String]) -> Result<String, CliError> {
    let (file, _) = parse_options(args)?;
    let (ast, compiled) = load_program(&file)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{file}: {} function(s), {} shared slot(s), {} lock(s), {} volatile(s)",
        compiled.functions.len(),
        compiled.globals,
        compiled.locks,
        compiled.volatiles
    );
    let _ = writeln!(
        out,
        "{} instrumented site(s)",
        compiled.instrumented_sites()
    );
    for f in &ast.functions {
        let info = pacer_lang::escape::analyze(f);
        let locals = info.provably_local_locals();
        if !locals.is_empty() {
            let _ = writeln!(
                out,
                "  fn {}: thread-local (uninstrumented): {}",
                f.name,
                locals.join(", ")
            );
        }
    }
    Ok(out)
}

fn cmd_lint(args: &[String]) -> Result<String, CliError> {
    let (file, _) = parse_options(args)?;
    let source =
        std::fs::read_to_string(&file).map_err(|e| err(format!("cannot read {file}: {e}")))?;
    let ast = pacer_lang::parse(&source).map_err(|e| err(format!("{file}: {e}")))?;
    let report = pacer_lang::lockset::lockset_lint(&ast);
    let mut out = String::new();
    for w in &report.warnings {
        out.push_str(&w.render());
    }
    let _ = writeln!(
        out,
        "{}: {} shared variable(s) checked, {} warning(s)",
        file,
        report.checked_vars,
        report.warnings.len()
    );
    if !report.warnings.is_empty() {
        let _ = writeln!(
            out,
            "note: lockset is a heuristic — volatile/fork-join protocols are
             safe but still flagged; confirm with `pacer run --detector fasttrack`"
        );
    }
    Ok(out)
}

fn cmd_fleet(args: &[String]) -> Result<String, CliError> {
    let (file, opts) = parse_options(args)?;
    let (_, compiled) = load_program(&file)?;
    pacer_harness::parallel::set_jobs(opts.jobs);
    let report =
        pacer_harness::fleet::simulate_fleet(&compiled, opts.instances, opts.rate, opts.seed)
            .map_err(|e| err(format!("runtime error: {e}")))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fleet: {} instance(s) at r = {:.2}%, seed {}",
        report.instances,
        report.rate * 100.0,
        opts.seed
    );
    let found = report.found();
    let _ = writeln!(out, "distinct races found by the fleet: {}", found.len());
    if let Some(mean) = report.mean_reporters() {
        let _ = writeln!(out, "mean reporting instances per race: {mean:.2}");
    }
    for (a, b) in &found {
        let _ = writeln!(
            out,
            "  {}  <->  {}",
            compiled.describe_site(*a),
            compiled.describe_site(*b)
        );
    }
    let _ = writeln!(out, "cumulative distinct races: {:?}", report.cumulative);
    Ok(out)
}

fn cmd_fmt(args: &[String], fold: bool) -> Result<String, CliError> {
    let (file, _) = parse_options(args)?;
    let source =
        std::fs::read_to_string(&file).map_err(|e| err(format!("cannot read {file}: {e}")))?;
    let mut ast = pacer_lang::parse(&source).map_err(|e| err(format!("{file}: {e}")))?;
    if fold {
        ast = pacer_lang::fold_program(&ast);
    }
    Ok(pacer_lang::print(&ast))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn write_temp(name: &str, content: &str) -> String {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    const RACY: &str = "
        shared x;
        fn w() { let i = 0; while (i < 50) { x = x + 1; i = i + 1; } }
        fn main() { let a = spawn w(); let b = spawn w(); join a; join b; }
    ";

    #[test]
    fn help_prints_usage() {
        let out = run(&args(&["--help"])).unwrap();
        assert!(out.contains("usage: pacer"));
        assert!(run(&[]).is_err());
        assert!(run(&args(&["bogus"])).is_err());
    }

    #[test]
    fn run_with_fasttrack_reports_races() {
        let path = write_temp("pacer_cli_racy.pl", RACY);
        let out = run(&args(&[
            "run",
            &path,
            "--detector",
            "fasttrack",
            "--seed",
            "3",
        ]))
        .unwrap();
        assert!(out.contains("distinct:"), "{out}");
        assert!(out.contains("w: x"), "site descriptions shown: {out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_records_and_replay_reanalyzes() {
        let src = write_temp("pacer_cli_rec.pl", RACY);
        let trace_path = std::env::temp_dir().join("pacer_cli_rec.trace");
        let trace_str = trace_path.to_string_lossy().into_owned();
        let out = run(&args(&[
            "run",
            &src,
            "--detector",
            "fasttrack",
            "--seed",
            "5",
            "--trace",
            &trace_str,
        ]))
        .unwrap();
        assert!(out.contains("event trace written"));
        let replayed = run(&args(&["replay", &trace_str, "--detector", "generic"])).unwrap();
        assert!(replayed.contains("replaying"), "{replayed}");
        assert!(replayed.contains("distinct:"), "{replayed}");
        std::fs::remove_file(&src).ok();
        std::fs::remove_file(&trace_path).ok();
    }

    #[test]
    fn check_reports_escape_results() {
        let src = write_temp(
            "pacer_cli_check.pl",
            "shared g; fn main() { let o = new obj; o.f = 1; let p = new obj; g = p; }",
        );
        let out = run(&args(&["check", &src])).unwrap();
        assert!(out.contains("instrumented site(s)"));
        assert!(out.contains("thread-local (uninstrumented): o"), "{out}");
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn fmt_and_fold_pretty_print() {
        let src = write_temp("pacer_cli_fmt.pl", "shared x;fn main(){x=1+2;}");
        let fmt = run(&args(&["fmt", &src])).unwrap();
        assert!(fmt.contains("x = (1 + 2);"), "{fmt}");
        let folded = run(&args(&["fold", &src])).unwrap();
        assert!(folded.contains("x = 3;"), "{folded}");
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn pacer_run_prints_effective_rate() {
        let path = write_temp("pacer_cli_pacer.pl", RACY);
        let out = run(&args(&["run", &path, "--rate", "1.0", "--seed", "1"])).unwrap();
        assert!(out.contains("effective sampling rate"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flag_errors_are_reported() {
        assert!(run(&args(&["run"])).is_err(), "missing file");
        assert!(run(&args(&["run", "f", "--rate", "2"])).is_err());
        assert!(run(&args(&["run", "f", "--bogus"])).is_err());
        assert!(run(&args(&["run", "/nonexistent.pl"])).is_err());
        assert!(run(&args(&["replay", "/nonexistent.trace"])).is_err());
    }

    #[test]
    fn fleet_output_is_identical_across_job_counts() {
        let path = write_temp("pacer_cli_fleet.pl", RACY);
        let base = &[
            "fleet",
            &path,
            "--instances",
            "8",
            "--rate",
            "0.25",
            "--seed",
            "3",
        ];
        let seq = run(&args(&[base, &["--jobs", "1"][..]].concat())).unwrap();
        let par = run(&args(&[base, &["--jobs", "4"][..]].concat())).unwrap();
        assert!(seq.contains("fleet: 8 instance(s)"), "{seq}");
        assert_eq!(seq, par, "--jobs must not change fleet output");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn detector_none_runs_uninstrumented() {
        let path = write_temp("pacer_cli_none.pl", RACY);
        let out = run(&args(&["run", &path, "--detector", "none"])).unwrap();
        assert!(out.contains("executed"));
        assert!(!out.contains("distinct"));
        std::fs::remove_file(&path).ok();
    }
}
