#!/bin/sh
# Tier-1 CI entry point. Runs fully offline; no network or external deps.
#
#   ./ci.sh          fmt check, release build, tests, rustdoc, bench smoke
#   ./ci.sh --quick  skip the bench smoke run
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

# Doc breakage fails CI; rustdoc warnings (broken intra-doc links,
# missing docs where a crate opts into #![warn(missing_docs)]) are errors.
echo "== cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

if [ "${1:-}" = "--quick" ]; then
    echo "== skipping bench smoke (--quick)"
    exit 0
fi

# Smoke-run every bench target in quick mode; each writes BENCH_<name>.json
# at the workspace root.
for bench in clock_ops detector_throughput workload_overhead version_ablation; do
    echo "== cargo bench $bench --quick"
    cargo bench -p pacer-bench --bench "$bench" -- --quick
done

echo "== ci.sh OK"
