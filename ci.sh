#!/bin/sh
# Tier-1 CI entry point. Runs fully offline; no network or external deps.
#
#   ./ci.sh          fmt check, release build, tests, rustdoc, bench smoke
#   ./ci.sh --quick  skip the bench smoke run
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

# --workspace matters: the root manifest is both a [workspace] and the
# pacer-suite [package], so a bare `cargo build` builds only pacer-suite
# and its dependency *libs* — the pacer / reproduce bin targets the smoke
# stages below drive would stay stale.
echo "== cargo build --release --workspace"
cargo build --release --workspace

echo "== cargo test -q"
cargo test -q

# Property tests are feature-gated so the default build stays lean. This
# stage compiles and runs them — including replay of the committed
# *.proptest-regressions entries — against the in-tree pacer-proptest shim.
echo "== cargo test --workspace --features proptest"
cargo test --workspace --features proptest -q

# Doc breakage fails CI; rustdoc warnings (broken intra-doc links,
# missing docs where a crate opts into #![warn(missing_docs)]) are errors.
echo "== cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

# Differential fuzzing smoke (FUZZING.md): a short campaign must finish
# with zero oracle violations, and a second identical invocation must be
# byte-identical — the determinism contract the whole fuzzer rests on.
# The committed reproducers in tests/corpus/ already replayed under
# `cargo test` above (tests/corpus.rs).
echo "== pacer fuzz smoke"
FUZZ_A=$(./target/release/pacer fuzz --iters 200 --seed 1 --jobs 4)
FUZZ_B=$(./target/release/pacer fuzz --iters 200 --seed 1 --jobs 4)
if [ "$FUZZ_A" != "$FUZZ_B" ]; then
    echo "pacer fuzz is nondeterministic across identical invocations" >&2
    exit 1
fi
echo "$FUZZ_A" | head -n 1

# Resilience smoke (RESILIENCE.md): a fault-injection campaign must
# complete without aborting, quarantine deterministically at any --jobs,
# and exit 2 (completed-with-quarantines).
echo "== pacer fleet fault-injection smoke"
RESDIR=$(mktemp -d)
trap 'rm -rf "$RESDIR"' EXIT
cat > "$RESDIR/racy.pl" <<'PROGRAM'
shared x;
fn w() {
    let i = 0;
    while (i < 50) { let o = new obj; o.f = i; x = x + 1; i = i + 1; }
}
fn main() { let a = spawn w(); let b = spawn w(); join a; join b; }
PROGRAM
printf 'detector-panic every=3\nheap-oom budget=64 every=4\n' > "$RESDIR/campaign.plan"
campaign() {
    ./target/release/pacer fleet "$RESDIR/racy.pl" --instances 8 --rate 0.25 \
        --seed 3 --fault-plan "$RESDIR/campaign.plan" --max-retries 1 --jobs "$1"
}
rc=0; FLEET_A=$(campaign 1) || rc=$?
if [ "$rc" -ne 2 ]; then
    echo "fault campaign: expected exit 2 (completed with quarantines), got $rc" >&2
    exit 1
fi
rc=0; FLEET_B=$(campaign 4) || rc=$?
if [ "$rc" -ne 2 ]; then
    echo "fault campaign: expected exit 2 at --jobs 4, got $rc" >&2
    exit 1
fi
if [ "$FLEET_A" != "$FLEET_B" ]; then
    echo "fault campaign output differs across --jobs" >&2
    exit 1
fi
echo "$FLEET_A" | grep -q "quarantined=4" || {
    echo "fault campaign: expected 4 quarantined trials" >&2
    exit 1
}

# Record/replay smoke (TRACE_FORMAT.md): capture an execution once in
# the binary trace format and re-analyze it offline. Three properties
# gate: recording is deterministic (two captures are byte-identical),
# replaying the binary capture prints exactly what replaying a text
# capture of the same execution prints, and the replay finds the race.
echo "== pacer record/replay smoke"
./target/release/pacer record "$RESDIR/racy.pl" --rate 1.0 --seed 5 \
    --out "$RESDIR/racy.ptrace" > /dev/null
./target/release/pacer record "$RESDIR/racy.pl" --rate 1.0 --seed 5 \
    --out "$RESDIR/racy2.ptrace" > /dev/null
cmp -s "$RESDIR/racy.ptrace" "$RESDIR/racy2.ptrace" || {
    echo "pacer record is nondeterministic across identical invocations" >&2
    exit 1
}
./target/release/pacer record "$RESDIR/racy.pl" --rate 1.0 --seed 5 \
    --out "$RESDIR/racy.trace" --format text > /dev/null
REPLAY_BIN=$(./target/release/pacer replay "$RESDIR/racy.ptrace" --detector fasttrack)
REPLAY_TXT=$(./target/release/pacer replay "$RESDIR/racy.trace" --detector fasttrack)
if [ "$REPLAY_BIN" != "$REPLAY_TXT" ]; then
    echo "binary and text replays of the same execution differ" >&2
    exit 1
fi
echo "$REPLAY_BIN" | grep -q "distinct:" || {
    echo "replay found no races in the racy capture" >&2
    exit 1
}

# Streaming-service smoke (SERVICE.md): start the daemon, feed two
# recorded traces over the unix socket, and each reply must be
# byte-identical to `pacer replay` of the same file; then the framed
# input mode must print the same merged transcript at --shards 1 and 4.
echo "== pacer serve smoke"
./target/release/pacer record "$RESDIR/racy.pl" --rate 0.5 --seed 9 \
    --out "$RESDIR/second.ptrace" > /dev/null
./target/release/pacer serve --socket "$RESDIR/pacer.sock" --max-sessions 2 \
    --detector fasttrack --shards 2 > "$RESDIR/serve.out" &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [ -S "$RESDIR/pacer.sock" ] && break
    sleep 0.05
done
for trace in racy second; do
    ./target/release/pacer serve --send "$RESDIR/$trace.ptrace" \
        --socket "$RESDIR/pacer.sock" > "$RESDIR/$trace.reply"
    ./target/release/pacer replay "$RESDIR/$trace.ptrace" \
        --detector fasttrack > "$RESDIR/$trace.replay"
    cmp -s "$RESDIR/$trace.reply" "$RESDIR/$trace.replay" || {
        echo "serve reply for $trace differs from pacer replay" >&2
        exit 1
    }
done
wait "$SERVE_PID" || {
    echo "serve daemon exited nonzero" >&2
    exit 1
}
grep -q "served 2 session(s)" "$RESDIR/serve.out" || {
    echo "serve daemon transcript is missing the session summary" >&2
    exit 1
}
{
    printf 'SESSION one %s\n' "$(wc -c < "$RESDIR/racy.ptrace")"
    cat "$RESDIR/racy.ptrace"
    printf 'SESSION two %s\n' "$(wc -c < "$RESDIR/second.ptrace")"
    cat "$RESDIR/second.ptrace"
} > "$RESDIR/sessions.frames"
./target/release/pacer serve --stdin "$RESDIR/sessions.frames" --shards 1 \
    > "$RESDIR/serve1.out"
./target/release/pacer serve --stdin "$RESDIR/sessions.frames" --shards 4 \
    > "$RESDIR/serve4.out"
cmp -s "$RESDIR/serve1.out" "$RESDIR/serve4.out" || {
    echo "serve transcript differs between --shards 1 and --shards 4" >&2
    exit 1
}

# Chaos smoke (RESILIENCE.md "Service supervision"): the same framed
# input under an injected shard-panic plan must print a transcript
# byte-identical to the fault-free run — supervised replay absorbs the
# panics — while the metrics snapshot proves they really fired
# (nonzero shard_restarts, zero sessions_lost).
echo "== pacer serve chaos smoke"
printf 'shard-panic every=3\n' > "$RESDIR/chaos.plan"
./target/release/pacer serve --stdin "$RESDIR/sessions.frames" --shards 4 \
    --fault-plan "$RESDIR/chaos.plan" > "$RESDIR/chaos.out"
cmp -s "$RESDIR/serve4.out" "$RESDIR/chaos.out" || {
    echo "serve transcript changed under injected shard panics" >&2
    exit 1
}
./target/release/pacer serve --stdin "$RESDIR/sessions.frames" --shards 4 \
    --fault-plan "$RESDIR/chaos.plan" --metrics-out "$RESDIR/chaos.json" \
    > /dev/null
grep -q '"shard_restarts":[1-9]' "$RESDIR/chaos.json" || {
    echo "chaos smoke: expected nonzero shard_restarts in metrics" >&2
    exit 1
}
grep -q '"sessions_lost":[1-9]' "$RESDIR/chaos.json" && {
    echo "chaos smoke: single-shot panics must not lose sessions" >&2
    exit 1
}

# Drain smoke (SERVICE.md "Drain and shutdown"): SIGTERM to a serving
# daemon stops admission, finishes checkpointing, and exits 0; the
# journal it leaves behind must resume to the same transcript the
# framed run prints.
echo "== pacer serve drain smoke"
./target/release/pacer serve --socket "$RESDIR/drain.sock" \
    --detector fasttrack --shards 2 --checkpoint "$RESDIR/drain.journal" \
    > "$RESDIR/drain.out" &
DRAIN_PID=$!
for _ in $(seq 1 100); do
    [ -S "$RESDIR/drain.sock" ] && break
    sleep 0.05
done
./target/release/pacer serve --send "$RESDIR/racy.ptrace" --session one \
    --socket "$RESDIR/drain.sock" > /dev/null
kill -TERM "$DRAIN_PID"
rc=0; wait "$DRAIN_PID" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "drained daemon: expected exit 0, got $rc" >&2
    exit 1
fi
grep -q "served 1 session(s)" "$RESDIR/drain.out" || {
    echo "drained daemon transcript is missing the completed session" >&2
    exit 1
}
./target/release/pacer serve --stdin "$RESDIR/sessions.frames" --shards 1 \
    --resume "$RESDIR/drain.journal" > "$RESDIR/drain-resume.out"
cmp -s "$RESDIR/serve1.out" "$RESDIR/drain-resume.out" || {
    echo "journal left by a drained daemon does not resume byte-identically" >&2
    exit 1
}

# Durable-TCP smoke (SERVICE.md "Durable TCP sessions"): a daemon armed
# with a conn-reset plan kills the client's connection mid-session after
# every accepted frame; the client must reconnect with RESUME from the
# acked offset and its reply must still be byte-identical to
# `pacer replay` — at --shards 1 and 4 — while the metrics snapshot
# proves the chaos really fired (nonzero session_resumes).
echo "== pacer serve tcp resume smoke"
printf 'seed 0\nconn-reset every=1 after=1\n' > "$RESDIR/tcp.plan"
for shards in 1 4; do
    rm -f "$RESDIR/tcp.addr"
    ./target/release/pacer serve --tcp 127.0.0.1:0 \
        --addr-file "$RESDIR/tcp.addr" --wal "$RESDIR/tcp-wal" \
        --detector fasttrack --shards "$shards" --max-sessions 2 \
        --fault-plan "$RESDIR/tcp.plan" --metrics-out "$RESDIR/tcp$shards.json" \
        > "$RESDIR/tcp$shards.out" &
    TCP_PID=$!
    for _ in $(seq 1 100); do
        [ -s "$RESDIR/tcp.addr" ] && break
        sleep 0.05
    done
    ./target/release/pacer serve --send "$RESDIR/racy.ptrace" --session one \
        --tcp "$(cat "$RESDIR/tcp.addr")" > "$RESDIR/tcp$shards.reply"
    wait "$TCP_PID" || {
        echo "tcp daemon (--shards $shards) exited nonzero" >&2
        exit 1
    }
    cmp -s "$RESDIR/tcp$shards.reply" "$RESDIR/racy.replay" || {
        echo "tcp reply after forced reconnects differs from pacer replay (--shards $shards)" >&2
        exit 1
    }
    grep -q '"session_resumes":[1-9]' "$RESDIR/tcp$shards.json" || {
        echo "tcp chaos smoke: expected nonzero session_resumes (--shards $shards)" >&2
        exit 1
    }
    grep -q "served 1 session(s)" "$RESDIR/tcp$shards.out" || {
        echo "tcp daemon transcript is missing the session summary (--shards $shards)" >&2
        exit 1
    }
done

# Checkpoint/resume byte-identity (RESILIENCE.md): chop the journal
# mid-entry — as a kill -9 during an append would — and the resumed
# run's artifacts must be byte-identical to an uninterrupted run's.
echo "== pacer fleet truncate-journal-and-resume byte-identity"
observed_fleet() {
    tag=$1
    shift
    ./target/release/pacer fleet "$RESDIR/racy.pl" --instances 6 --rate 0.25 \
        --seed 7 --metrics-out "$RESDIR/$tag.json" --trace-out "$RESDIR/$tag.jsonl" \
        "$@" > /dev/null
}
observed_fleet full
observed_fleet tmp --checkpoint "$RESDIR/fleet.journal"
JSIZE=$(wc -c < "$RESDIR/fleet.journal")
head -c $((JSIZE - 300)) "$RESDIR/fleet.journal" > "$RESDIR/cut.journal"
mv "$RESDIR/cut.journal" "$RESDIR/fleet.journal"
observed_fleet res --resume "$RESDIR/fleet.journal"
cmp -s "$RESDIR/full.json" "$RESDIR/res.json" || {
    echo "resumed metrics differ from the uninterrupted run" >&2
    exit 1
}
cmp -s "$RESDIR/full.jsonl" "$RESDIR/res.jsonl" || {
    echo "resumed event trace differs from the uninterrupted run" >&2
    exit 1
}

# Graceful-degradation smoke (RESILIENCE.md "Graceful degradation"): a
# heavy workload under a heap-oom plan with an armed governor must finish
# the campaign (exit 0 or 2 — degraded/cancelled, never a hard failure)
# with nonzero governor counters in the metrics snapshot.
echo "== pacer fleet governor smoke"
cat > "$RESDIR/heavy.pl" <<'PROGRAM'
shared x;
fn w() {
    let i = 0;
    while (i < 800) { let o = new obj; o.f = i; x = x + 1; i = i + 1; }
}
fn main() { let a = spawn w(); let b = spawn w(); join a; join b; }
PROGRAM
printf 'heap-oom budget=6000 every=1\n' > "$RESDIR/oom.plan"
rc=0
./target/release/pacer fleet "$RESDIR/heavy.pl" --instances 4 --rate 0.25 \
    --seed 11 --fault-plan "$RESDIR/oom.plan" --max-retries 1 \
    --mem-budget 100000000 --metrics-out "$RESDIR/gov.json" \
    --jobs 4 > "$RESDIR/gov.out" || rc=$?
if [ "$rc" -ne 0 ] && [ "$rc" -ne 2 ]; then
    echo "governed campaign: expected exit 0 or 2, got $rc" >&2
    exit 1
fi
grep -q "quarantined=0" "$RESDIR/gov.out" || {
    echo "governed campaign: expected zero quarantines (degradation instead)" >&2
    exit 1
}
grep -q '"governor": {"steps_down":0,' "$RESDIR/gov.json" && {
    echo "governed campaign: expected nonzero governor counters in metrics" >&2
    exit 1
}
grep -q '"governor": {"steps_down":' "$RESDIR/gov.json" || {
    echo "governed campaign: metrics snapshot is missing the governor block" >&2
    exit 1
}

if [ "${1:-}" = "--quick" ]; then
    echo "== skipping bench smoke (--quick)"
    exit 0
fi

# Smoke-run every bench target in quick mode; each writes BENCH_<name>.json
# at the workspace root.
for bench in clock_ops detector_throughput workload_overhead version_ablation clock_ablation trace_codec; do
    echo "== cargo bench $bench --quick"
    cargo bench -p pacer-bench --bench "$bench" -- --quick
done

# Clock-layer regression gate: on the full-rate replay, each stacked
# storage layer (+arena, +join-cache) must keep at least 90% of the
# in-run baseline's throughput. The µs-scale fasttrack rows are
# informational only — too noisy to gate at --quick sampling.
echo "== clock_ablation layer gate"
python3 - <<'EOF'
import json, sys

results = {
    r["id"]: r["events_per_sec"]
    for r in json.load(open("BENCH_clock_ablation.json"))["results"]
    if r.get("events_per_sec")
}
floor = 0.9 * results["pacer@100%/baseline"]
bad = [
    (layer, results[f"pacer@100%/{layer}"])
    for layer in ("+arena", "+join-cache")
    if results[f"pacer@100%/{layer}"] < floor
]
for layer, eps in bad:
    print(
        f"clock layer `{layer}` regresses the full-rate replay: "
        f"{eps:.0f} events/s < 90% of baseline {results['pacer@100%/baseline']:.0f}",
        file=sys.stderr,
    )
sys.exit(1 if bad else 0)
EOF

echo "== ci.sh OK"
