#!/bin/sh
# Tier-1 CI entry point. Runs fully offline; no network or external deps.
#
#   ./ci.sh          fmt check, release build, tests, rustdoc, bench smoke
#   ./ci.sh --quick  skip the bench smoke run
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

# Property tests are feature-gated so the default build stays lean. This
# stage compiles and runs them — including replay of the committed
# *.proptest-regressions entries — against the in-tree pacer-proptest shim.
echo "== cargo test --workspace --features proptest"
cargo test --workspace --features proptest -q

# Doc breakage fails CI; rustdoc warnings (broken intra-doc links,
# missing docs where a crate opts into #![warn(missing_docs)]) are errors.
echo "== cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

# Differential fuzzing smoke (FUZZING.md): a short campaign must finish
# with zero oracle violations, and a second identical invocation must be
# byte-identical — the determinism contract the whole fuzzer rests on.
# The committed reproducers in tests/corpus/ already replayed under
# `cargo test` above (tests/corpus.rs).
echo "== pacer fuzz smoke"
FUZZ_A=$(./target/release/pacer fuzz --iters 200 --seed 1 --jobs 4)
FUZZ_B=$(./target/release/pacer fuzz --iters 200 --seed 1 --jobs 4)
if [ "$FUZZ_A" != "$FUZZ_B" ]; then
    echo "pacer fuzz is nondeterministic across identical invocations" >&2
    exit 1
fi
echo "$FUZZ_A" | head -n 1

if [ "${1:-}" = "--quick" ]; then
    echo "== skipping bench smoke (--quick)"
    exit 0
fi

# Smoke-run every bench target in quick mode; each writes BENCH_<name>.json
# at the workspace root.
for bench in clock_ops detector_throughput workload_overhead version_ablation; do
    echo "== cargo bench $bench --quick"
    cargo bench -p pacer-bench --bench "$bench" -- --quick
done

echo "== ci.sh OK"
