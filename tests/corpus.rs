//! Replays the committed fuzzer reproducers in `tests/corpus/`.
//!
//! Each `*.pacer` entry is a program the shrinker minimized from a failing
//! fuzz case (see FUZZING.md). Two properties are checked on every run:
//!
//! * the entry replays **clean** under the real oracle — the bug class it
//!   was minimized for stays fixed; and
//! * the entry still **triggers** the fault it was minimized under when
//!   that fault is re-injected — the corpus keeps exercising the oracle
//!   check that caught it, so the entries cannot silently rot.
//!
//! Regenerate the corpus after changing the generator or shrinker with
//! `cargo test --test corpus -- --ignored regenerate_corpus`.

use std::path::PathBuf;

use pacer_fuzz::{check_program, corpus, Fault, FuzzConfig, OracleConfig};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Every committed entry, sorted by file name for deterministic order.
fn entries() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(corpus_dir()).expect("tests/corpus/ exists") {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "pacer") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).unwrap();
            out.push((name, text));
        }
    }
    out.sort();
    out
}

#[test]
fn corpus_is_committed_and_parses() {
    let entries = entries();
    assert!(!entries.is_empty(), "tests/corpus/ must hold reproducers");
    for (name, text) in &entries {
        let (seed, program) = corpus::parse(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        // Entries are stored in canonical form so diffs stay reviewable.
        let canonical = corpus::render(seed, &violations_of(text), &program);
        assert_eq!(text, &canonical, "{name}: not in canonical corpus form");
    }
}

/// The `// violation:` header lines, as recorded in the entry.
fn violations_of(text: &str) -> Vec<String> {
    text.lines()
        .filter_map(|l| l.trim().strip_prefix("// violation: "))
        .map(ToString::to_string)
        .collect()
}

#[test]
fn corpus_replays_clean_under_the_real_oracle() {
    for (name, text) in entries() {
        let (seed, program) = corpus::parse(&text).unwrap();
        let report = check_program(&program, seed, &OracleConfig::default());
        assert_eq!(
            report.violations,
            Vec::<String>::new(),
            "{name}: committed reproducer regressed"
        );
        assert!(report.vm_runs > 0, "{name}: never executed");
    }
}

#[test]
fn corpus_still_triggers_the_fault_it_was_minimized_under() {
    let cfg = OracleConfig {
        fault: Some(Fault::PhantomRace),
        ..OracleConfig::default()
    };
    for (name, text) in entries() {
        let (seed, program) = corpus::parse(&text).unwrap();
        let report = check_program(&program, seed, &cfg);
        assert!(
            !report.violations.is_empty(),
            "{name}: no longer exercises the oracle check that caught it"
        );
    }
}

/// Rewrites `tests/corpus/` from a fixed injected-fault campaign. Run
/// explicitly (`-- --ignored regenerate_corpus`) after generator or
/// shrinker changes; the output is deterministic, so a clean regeneration
/// produces no diff.
#[test]
#[ignore]
fn regenerate_corpus() {
    let mut cfg = FuzzConfig::new(1, 10);
    cfg.oracle.schedule_seeds = 1;
    cfg.oracle.fault = Some(Fault::PhantomRace);
    let report = pacer_fuzz::run_fuzz(&cfg);
    assert!(
        !report.failures.is_empty(),
        "campaign found nothing to save"
    );
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).unwrap();
    for old in std::fs::read_dir(&dir).unwrap() {
        let path = old.unwrap().path();
        if path.extension().is_some_and(|e| e == "pacer") {
            std::fs::remove_file(path).unwrap();
        }
    }
    for (i, f) in report.failures.iter().enumerate() {
        let text = corpus::render(f.program_seed, &f.violations, &f.program);
        let path = dir.join(format!("{i:02}-seed-{}.pacer", f.program_seed));
        std::fs::write(path, text).unwrap();
    }
}
