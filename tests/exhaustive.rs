//! Small-scope exhaustive verification: for tiny two-thread programs we
//! enumerate EVERY interleaving and EVERY placement of one sampling
//! period, and check PACER's precision and guarantee against the oracle on
//! each resulting trace. Property tests sample the space; this covers it.

use pacer_clock::ThreadId;
use pacer_core::PacerDetector;
use pacer_fasttrack::FastTrackDetector;
use pacer_trace::{Action, Detector, HbOracle, LockId, SiteId, Trace, VarId};

fn t(i: u32) -> ThreadId {
    ThreadId::new(i)
}

fn m(i: u32) -> LockId {
    LockId::new(i)
}

fn x(i: u32) -> VarId {
    VarId::new(i)
}

/// All order-preserving merges of two scripts.
fn interleavings(a: &[Action], b: &[Action]) -> Vec<Vec<Action>> {
    fn go(a: &[Action], b: &[Action], prefix: &mut Vec<Action>, out: &mut Vec<Vec<Action>>) {
        match (a.split_first(), b.split_first()) {
            (None, None) => out.push(prefix.clone()),
            (Some((ha, ta)), None) => {
                prefix.push(*ha);
                go(ta, b, prefix, out);
                prefix.pop();
            }
            (None, Some((hb, tb))) => {
                prefix.push(*hb);
                go(a, tb, prefix, out);
                prefix.pop();
            }
            (Some((ha, ta)), Some((hb, tb))) => {
                prefix.push(*ha);
                go(ta, b, prefix, out);
                prefix.pop();
                prefix.push(*hb);
                go(a, tb, prefix, out);
                prefix.pop();
            }
        }
    }
    let mut out = Vec::new();
    go(a, b, &mut Vec::new(), &mut out);
    out
}

/// Wraps a body with the fork/join skeleton and inserts one sampling
/// period covering body positions `[start, end)`.
fn build(body: &[Action], start: usize, end: usize) -> Option<Trace> {
    let mut trace = Trace::new();
    trace.push(Action::Fork { t: t(0), u: t(1) });
    trace.push(Action::Fork { t: t(0), u: t(2) });
    for (i, a) in body.iter().enumerate() {
        if i == start {
            trace.push(Action::SampleBegin);
        }
        if i == end {
            trace.push(Action::SampleEnd);
        }
        trace.push(*a);
    }
    if end == body.len() {
        if start == body.len() {
            trace.push(Action::SampleBegin);
        }
        trace.push(Action::SampleEnd);
    }
    trace.push(Action::Join { t: t(0), u: t(1) });
    trace.push(Action::Join { t: t(0), u: t(2) });
    trace.validate().ok()?;
    Some(trace)
}

fn check_trace(trace: &Trace) {
    let oracle = HbOracle::analyze(trace);
    let mut pacer = PacerDetector::new();
    for a in trace {
        pacer.on_action(a);
        pacer.assert_invariants();
    }

    // Precision: every report is a true race.
    let truth: std::collections::HashSet<_> = oracle.distinct_races().into_iter().collect();
    for r in pacer.races() {
        assert!(
            truth.contains(&r.distinct_key()),
            "false positive {r} in\n{}",
            trace.to_text()
        );
    }

    // Guarantee: every sampled guaranteed race is reported (epoch groups).
    let norm = |g1, g2| if g1 <= g2 { (g1, g2) } else { (g2, g1) };
    let reported: std::collections::HashSet<_> = pacer
        .races()
        .iter()
        .filter_map(|r| {
            Some(norm(
                oracle.epoch_group_of_site(r.first.site)?,
                oracle.epoch_group_of_site(r.second.site)?,
            ))
        })
        .collect();
    for race in oracle.sampled_guaranteed_races(trace) {
        let key = norm(
            oracle.epoch_group(race.first),
            oracle.epoch_group(race.second),
        );
        assert!(
            reported.contains(&key),
            "guaranteed race {race:?} unreported in\n{}",
            trace.to_text()
        );
    }
}

fn exhaustive_over(a: &[Action], b: &[Action]) -> usize {
    let mut traces = 0;
    for body in interleavings(a, b) {
        let n = body.len();
        for start in 0..=n {
            for end in start..=n {
                if let Some(trace) = build(&body, start, end) {
                    check_trace(&trace);
                    traces += 1;
                }
            }
        }
    }
    traces
}

#[test]
fn exhaustive_guarded_and_unguarded_writes() {
    // t1 writes x under m then y bare; t2 reads x under m then writes y.
    let a = [
        Action::Acquire { t: t(1), m: m(0) },
        Action::Write {
            t: t(1),
            x: x(0),
            site: SiteId::new(1),
        },
        Action::Release { t: t(1), m: m(0) },
        Action::Write {
            t: t(1),
            x: x(1),
            site: SiteId::new(2),
        },
    ];
    let b = [
        Action::Acquire { t: t(2), m: m(0) },
        Action::Read {
            t: t(2),
            x: x(0),
            site: SiteId::new(3),
        },
        Action::Release { t: t(2), m: m(0) },
        Action::Write {
            t: t(2),
            x: x(1),
            site: SiteId::new(4),
        },
    ];
    // Of C(8,4) = 70 merges, those acquiring m while held are invalid and
    // filtered; every remaining (interleaving × period placement) pair is
    // checked.
    let covered = exhaustive_over(&a, &b);
    assert!(covered >= 400, "covered {covered} traces");
}

#[test]
fn exhaustive_write_write_and_read_chains() {
    // Unguarded conflicting traffic: w-w, w-r, r-w combinations.
    let a = [
        Action::Write {
            t: t(1),
            x: x(0),
            site: SiteId::new(1),
        },
        Action::Read {
            t: t(1),
            x: x(1),
            site: SiteId::new(2),
        },
        Action::Write {
            t: t(1),
            x: x(0),
            site: SiteId::new(3),
        },
    ];
    let b = [
        Action::Read {
            t: t(2),
            x: x(0),
            site: SiteId::new(4),
        },
        Action::Write {
            t: t(2),
            x: x(1),
            site: SiteId::new(5),
        },
        Action::Read {
            t: t(2),
            x: x(0),
            site: SiteId::new(6),
        },
    ];
    let covered = exhaustive_over(&a, &b);
    assert!(covered > 500, "covered {covered} traces");
}

#[test]
fn exhaustive_full_sampling_equals_fasttrack() {
    // Over every interleaving, a whole-trace sampling period makes PACER
    // and FASTTRACK agree exactly.
    let a = [
        Action::Write {
            t: t(1),
            x: x(0),
            site: SiteId::new(1),
        },
        Action::Acquire { t: t(1), m: m(0) },
        Action::Write {
            t: t(1),
            x: x(1),
            site: SiteId::new(2),
        },
        Action::Release { t: t(1), m: m(0) },
    ];
    let b = [
        Action::Acquire { t: t(2), m: m(0) },
        Action::Read {
            t: t(2),
            x: x(1),
            site: SiteId::new(3),
        },
        Action::Release { t: t(2), m: m(0) },
        Action::Read {
            t: t(2),
            x: x(0),
            site: SiteId::new(4),
        },
    ];
    for body in interleavings(&a, &b) {
        let mut with_markers = Trace::new();
        let mut bare = Trace::new();
        for pre in [
            Action::Fork { t: t(0), u: t(1) },
            Action::Fork { t: t(0), u: t(2) },
        ] {
            with_markers.push(pre);
            bare.push(pre);
        }
        with_markers.push(Action::SampleBegin);
        for action in &body {
            with_markers.push(*action);
            bare.push(*action);
        }
        let mut pacer = PacerDetector::new();
        pacer.run(&with_markers);
        let mut ft = FastTrackDetector::new();
        ft.run(&bare);
        let key = |races: &[pacer_trace::RaceReport]| {
            let mut v: Vec<_> = races
                .iter()
                .map(|r| (r.x, r.first.site, r.second.site))
                .collect();
            v.sort();
            v
        };
        assert_eq!(key(pacer.races()), key(ft.races()), "{}", bare.to_text());
    }
}
