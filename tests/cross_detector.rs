//! Cross-detector agreement on live workload executions.

use pacer_core::{AccordionPacerDetector, PacerDetector};
use pacer_fasttrack::{FastTrackDetector, GenericDetector};
use pacer_literace::{LiteRaceConfig, LiteRaceDetector};
use pacer_runtime::{Vm, VmConfig};
use pacer_trace::{Detector, HbOracle, RaceReport, RecordingDetector};
use pacer_workloads::{all, Scale};

fn sorted_keys(races: &[RaceReport]) -> Vec<(pacer_trace::SiteId, pacer_trace::SiteId)> {
    let mut v: Vec<_> = races.iter().map(RaceReport::distinct_key).collect();
    v.sort();
    v.dedup();
    v
}

#[test]
fn every_detector_is_precise_on_every_workload() {
    for w in all(Scale::Test) {
        let program = w.compiled();
        let cfg = VmConfig::new(77).with_sampling_rate(0.5);
        let mut rec = RecordingDetector::new();
        Vm::run(&program, &mut rec, &cfg).unwrap();
        let trace = rec.into_trace();
        let oracle = HbOracle::analyze(&trace);
        let truth: std::collections::HashSet<_> = oracle.distinct_races().into_iter().collect();

        let check = |name: &str, races: &[RaceReport]| {
            for r in races {
                assert!(
                    truth.contains(&r.distinct_key()),
                    "{}: {name} reported a false race {r}",
                    w.name
                );
            }
        };

        let mut ft = FastTrackDetector::new();
        ft.run(&trace);
        check("fasttrack", ft.races());

        let mut generic = GenericDetector::new();
        generic.run(&trace);
        check("generic", generic.races());

        let mut pacer = PacerDetector::new();
        pacer.run(&trace);
        check("pacer", pacer.races());

        let mut accordion = AccordionPacerDetector::new();
        accordion.run(&trace);
        // Accordion reports internal slots; check sites only (they are
        // schedule-stable).
        check("pacer+accordion", accordion.races());

        let mut literace = LiteRaceDetector::new(LiteRaceConfig::default(), 1);
        literace.run(&trace);
        check("literace", literace.races());
    }
}

#[test]
fn pacer_full_rate_equals_fasttrack_on_live_runs() {
    for w in all(Scale::Test) {
        let program = w.compiled();
        let cfg = VmConfig::new(123).with_sampling_rate(1.0);
        let mut pacer = PacerDetector::new();
        Vm::run(&program, &mut pacer, &cfg).unwrap();

        let mut ft = FastTrackDetector::new();
        Vm::run(&program, &mut ft, &cfg).unwrap();

        assert_eq!(
            sorted_keys(pacer.races()),
            sorted_keys(ft.races()),
            "{}: full-rate PACER must equal FASTTRACK",
            w.name
        );
    }
}

#[test]
fn literace_with_full_burst_equals_fasttrack() {
    // With an effectively infinite burst, LITERACE analyzes everything.
    let w = pacer_workloads::xalan(Scale::Test);
    let program = w.compiled();
    let cfg = VmConfig::new(9);
    let mut rec = RecordingDetector::new();
    Vm::run(&program, &mut rec, &cfg).unwrap();
    let trace = rec.into_trace();

    let mut lr = LiteRaceDetector::new(
        LiteRaceConfig {
            burst_length: u64::MAX / 2,
            ..LiteRaceConfig::default()
        },
        0,
    );
    lr.run(&trace);
    let mut ft = FastTrackDetector::new();
    ft.run(&trace);
    assert_eq!(sorted_keys(lr.races()), sorted_keys(ft.races()));
    assert_eq!(lr.effective_rate(), Some(1.0));
}

#[test]
fn sampled_detectors_find_subsets_of_full_detection() {
    for w in all(Scale::Test) {
        let program = w.compiled();
        let cfg_full = VmConfig::new(55).with_sampling_rate(1.0);
        let cfg_low = VmConfig::new(55).with_sampling_rate(0.2);

        let mut full = PacerDetector::new();
        Vm::run(&program, &mut full, &cfg_full).unwrap();
        let mut low = PacerDetector::new();
        Vm::run(&program, &mut low, &cfg_low).unwrap();

        // Same seed ⇒ same schedule ⇒ low-rate findings ⊆ full findings.
        let full_set: std::collections::HashSet<_> =
            sorted_keys(full.races()).into_iter().collect();
        for key in sorted_keys(low.races()) {
            assert!(
                full_set.contains(&key),
                "{}: low-rate race {key:?} missing at full rate",
                w.name
            );
        }
    }
}
