//! Golden-transcript protocol tests for the streaming detection service
//! (`pacer serve`, SERVICE.md): scripted multi-session ingest over the
//! in-process transport, the framed-input CLI mode, and the unix-socket
//! daemon, checked byte for byte against `pacer replay` of the same
//! traces — at `--shards 1/2/8` and under adversarial interleavings.

use pacer_cli::run;
use pacer_harness::{serve_sessions, ServeConfig, ServeDetectorKind};
use pacer_trace::gen::GenConfig;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pacer-serve-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Seeded generated workloads: a mix of racy (no lock discipline) and
/// mostly-disciplined traces, in the binary stream encoding.
fn session_traces(count: usize) -> Vec<(String, Vec<u8>)> {
    (0..count)
        .map(|i| {
            let seed = 1000 + i as u64;
            let discipline = if i % 2 == 0 { 0.0 } else { 0.8 };
            let trace = GenConfig::small(seed)
                .with_lock_discipline(discipline)
                .generate();
            (format!("s{i:02}"), trace.to_binary())
        })
        .collect()
}

/// What `pacer replay --detector <d>` prints for these bytes.
fn replay_body(dir: &std::path::Path, name: &str, bytes: &[u8], detector: &str) -> String {
    let path = dir.join(format!("{name}.ptrace"));
    std::fs::write(&path, bytes).unwrap();
    let path = path.to_string_lossy().into_owned();
    run(&args(&["replay", &path, "--detector", detector]))
        .unwrap()
        .text
}

fn cfg(detector: ServeDetectorKind, shards: usize) -> ServeConfig {
    ServeConfig {
        shards,
        ..ServeConfig::new(detector)
    }
}

#[test]
fn session_bodies_match_replay_for_every_detector() {
    let dir = temp_dir("bodies");
    let sessions = session_traces(4);
    for (detector, kind) in [
        ("pacer", ServeDetectorKind::Pacer),
        ("fasttrack", ServeDetectorKind::FastTrack),
        ("generic", ServeDetectorKind::Generic),
        ("literace", ServeDetectorKind::LiteRace),
    ] {
        let out = serve_sessions(&cfg(kind, 4), sessions.clone(), 1).unwrap();
        for report in &out.reports {
            let (name, bytes) = sessions.iter().find(|(n, _)| n == &report.name).unwrap();
            let expected = replay_body(&dir, name, bytes, detector);
            assert_eq!(
                report.body, expected,
                "serve != replay for {detector} session {name}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn transcript_is_identical_at_any_shard_count() {
    let sessions = session_traces(6);
    let baseline = serve_sessions(&cfg(ServeDetectorKind::FastTrack, 1), sessions.clone(), 1)
        .unwrap()
        .transcript;
    assert!(
        !baseline.contains(", 0 dynamic races,"),
        "undisciplined sessions must produce races for the merge to be exercised: {baseline}"
    );
    for shards in [2, 3, 8] {
        let out = serve_sessions(
            &cfg(ServeDetectorKind::FastTrack, shards),
            sessions.clone(),
            1,
        )
        .unwrap()
        .transcript;
        assert_eq!(baseline, out, "transcript differs at --shards {shards}");
    }
}

#[test]
fn transcript_is_identical_under_adversarial_interleavings() {
    let sessions = session_traces(8);
    let baseline = serve_sessions(&cfg(ServeDetectorKind::FastTrack, 4), sessions.clone(), 1)
        .unwrap()
        .transcript;

    // Reversed and odd-even shuffled arrival orders, sequential.
    let mut reversed = sessions.clone();
    reversed.reverse();
    let mut shuffled: Vec<_> = sessions.iter().skip(1).step_by(2).cloned().collect();
    shuffled.extend(sessions.iter().step_by(2).cloned());
    for order in [reversed, shuffled] {
        let out = serve_sessions(&cfg(ServeDetectorKind::FastTrack, 4), order, 1)
            .unwrap()
            .transcript;
        assert_eq!(baseline, out, "transcript depends on arrival order");
    }

    // Concurrent handlers racing each other on the same shard fleet.
    for _ in 0..3 {
        let out = serve_sessions(&cfg(ServeDetectorKind::FastTrack, 4), sessions.clone(), 8)
            .unwrap()
            .transcript;
        assert_eq!(baseline, out, "transcript depends on handler scheduling");
    }
}

#[test]
fn framed_stdin_mode_matches_replay_and_is_shard_invariant() {
    let dir = temp_dir("frames");
    let sessions = session_traces(3);

    let mut frames = Vec::new();
    for (name, bytes) in &sessions {
        frames.extend_from_slice(format!("SESSION {name} {}\n", bytes.len()).as_bytes());
        frames.extend_from_slice(bytes);
    }
    let frames_path = dir.join("sessions.frames");
    std::fs::write(&frames_path, &frames).unwrap();
    let frames_path = frames_path.to_string_lossy().into_owned();

    let one = run(&args(&["serve", "--stdin", &frames_path, "--shards", "1"])).unwrap();
    let four = run(&args(&["serve", "--stdin", &frames_path, "--shards", "4"])).unwrap();
    assert_eq!(one.text, four.text, "--shards 1 vs 4 transcripts differ");
    assert_eq!(one.code, 0, "clean sessions exit 0: {one}");

    for (name, bytes) in &sessions {
        let expected = replay_body(&dir, name, bytes, "pacer");
        assert!(
            one.text
                .contains(&format!("=== session {name} ===\n{expected}")),
            "transcript lacks replay-identical body for {name}: {one}"
        );
    }
    assert!(
        one.text.contains("served 3 session(s)"),
        "missing summary: {one}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn socket_daemon_serves_replay_identical_replies() {
    let dir = temp_dir("socket");
    let socket = dir.join("pacer.sock");
    let socket = socket.to_string_lossy().into_owned();
    let sessions = session_traces(2);

    let mut trace_paths = Vec::new();
    for (name, bytes) in &sessions {
        let path = dir.join(format!("{name}.ptrace"));
        std::fs::write(&path, bytes).unwrap();
        trace_paths.push(path.to_string_lossy().into_owned());
    }

    let daemon_args = args(&[
        "serve",
        "--socket",
        &socket,
        "--max-sessions",
        "2",
        "--detector",
        "fasttrack",
        "--shards",
        "2",
    ]);
    let daemon = std::thread::spawn(move || run(&daemon_args).unwrap());
    // The daemon unlinks any stale socket before binding; wait for the
    // fresh one to appear.
    for _ in 0..200 {
        if std::path::Path::new(&socket).exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    for ((name, bytes), path) in sessions.iter().zip(&trace_paths) {
        let reply = run(&args(&["serve", "--send", path, "--socket", &socket])).unwrap();
        let expected = replay_body(&dir, name, bytes, "fasttrack");
        assert_eq!(reply.text, expected, "daemon reply != replay for {name}");
        assert_eq!(reply.code, 0, "clean reply exits 0");
    }

    let transcript = daemon.join().unwrap();
    assert_eq!(transcript.code, 0, "clean daemon exits 0: {transcript}");
    assert!(
        transcript.contains("served 2 session(s)"),
        "daemon prints the merged transcript: {transcript}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_rejects_bad_transports_and_flags() {
    let missing = run(&args(&["serve"])).unwrap_err();
    assert!(missing.message.contains("needs a transport"), "{missing}");

    let both = run(&args(&["serve", "--socket", "/tmp/x", "--stdin", "-"])).unwrap_err();
    assert!(both.message.contains("mutually exclusive"), "{both}");

    let positional = run(&args(&["serve", "trace.ptrace"])).unwrap_err();
    assert!(
        positional.message.contains("no positional argument"),
        "{positional}"
    );

    let shards = run(&args(&["serve", "--stdin", "-", "--shards", "0"])).unwrap_err();
    assert!(shards.message.contains("--shards"), "{shards}");
}
