//! End-to-end resilience acceptance tests, via the `pacer` CLI: a fault
//! campaign completes deterministically with quarantines (exit code 2),
//! and a killed-then-resumed fleet reproduces its artifacts byte for
//! byte (see RESILIENCE.md).

use pacer_cli::run;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

/// A racy workload that also allocates, so `heap-oom` budgets trigger.
const RACY_ALLOCATING: &str = "
    shared x;
    fn w() {
        let i = 0;
        while (i < 50) {
            let o = new obj;
            o.f = i;
            x = x + 1;
            i = i + 1;
        }
    }
    fn main() { let a = spawn w(); let b = spawn w(); join a; join b; }
";

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pacer-resilience-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write(dir: &std::path::Path, name: &str, content: &str) -> String {
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path.to_string_lossy().into_owned()
}

#[test]
fn fault_campaign_completes_with_deterministic_quarantines() {
    let dir = temp_dir("campaign");
    let program = write(&dir, "racy.pl", RACY_ALLOCATING);
    // detector-panic targets trials 0, 3, 6; heap-oom targets 0 and 4.
    // Both fire on every attempt, so the targeted trials exhaust their
    // retries and quarantine: {0, 3, 4, 6}.
    let plan = write(
        &dir,
        "campaign.plan",
        "detector-panic every=3\nheap-oom budget=64 every=4\n",
    );
    let base = &[
        "fleet",
        &program,
        "--instances",
        "8",
        "--rate",
        "0.25",
        "--seed",
        "3",
        "--fault-plan",
        &plan,
        "--max-retries",
        "1",
    ];

    let seq = run(&args(&[base, &["--jobs", "1"][..]].concat())).unwrap();
    let par = run(&args(&[base, &["--jobs", "4"][..]].concat())).unwrap();

    assert_eq!(seq.code, 2, "completed-with-quarantines exits 2: {seq}");
    assert!(
        seq.contains("quarantined=4"),
        "trials 0, 3, 4, 6 quarantine: {seq}"
    );
    for trial in ["trial 0 ", "trial 3 ", "trial 4 ", "trial 6 "] {
        assert!(seq.contains(trial), "missing {trial}: {seq}");
    }
    assert!(
        seq.contains("injected: "),
        "failures carry the marker: {seq}"
    );
    assert_eq!(seq, par, "fault campaigns are byte-identical at any --jobs");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_fleet_resumes_byte_identically() {
    let dir = temp_dir("resume");
    let program = write(&dir, "racy.pl", RACY_ALLOCATING);
    let journal = dir.join("fleet.journal").to_string_lossy().into_owned();
    let fleet = |extra: &[&str]| {
        let head = [
            "fleet",
            program.as_str(),
            "--instances",
            "6",
            "--rate",
            "0.25",
            "--seed",
            "7",
        ];
        run(&args(&[&head[..], extra].concat())).unwrap()
    };
    let artifacts = |tag: &str| {
        let m = dir
            .join(format!("{tag}.json"))
            .to_string_lossy()
            .into_owned();
        let t = dir
            .join(format!("{tag}.jsonl"))
            .to_string_lossy()
            .into_owned();
        (m, t)
    };

    // Reference: one uninterrupted observed run.
    let (m_full, t_full) = artifacts("full");
    fleet(&["--metrics-out", &m_full, "--trace-out", &t_full]);

    // "Crash": checkpoint a run, then chop the journal mid-entry, as a
    // kill -9 during an append would.
    let (m_tmp, t_tmp) = artifacts("tmp");
    fleet(&[
        "--checkpoint",
        &journal,
        "--metrics-out",
        &m_tmp,
        "--trace-out",
        &t_tmp,
    ]);
    let bytes = std::fs::read(&journal).unwrap();
    assert!(bytes.len() > 300, "journal has content");
    std::fs::write(&journal, &bytes[..bytes.len() - 300]).unwrap();

    // Resume: only the missing trials re-run, and the merged artifacts
    // are byte-identical to the uninterrupted run's.
    let (m_res, t_res) = artifacts("res");
    let resumed = fleet(&[
        "--resume",
        &journal,
        "--metrics-out",
        &m_res,
        "--trace-out",
        &t_res,
    ]);
    assert_eq!(resumed.code, 0);
    assert!(resumed.contains("resumed"), "{resumed}");
    assert_eq!(
        std::fs::read_to_string(&m_full).unwrap(),
        std::fs::read_to_string(&m_res).unwrap(),
        "metrics snapshot is byte-identical after kill + resume"
    );
    assert_eq!(
        std::fs::read_to_string(&t_full).unwrap(),
        std::fs::read_to_string(&t_res).unwrap(),
        "event trace is byte-identical after kill + resume"
    );

    // A second resume finds the journal complete and re-runs nothing,
    // still reproducing the same artifacts.
    let (m_again, t_again) = artifacts("again");
    let again = fleet(&[
        "--resume",
        &journal,
        "--metrics-out",
        &m_again,
        "--trace-out",
        &t_again,
    ]);
    assert!(again.contains("resumed 6 completed trial(s)"), "{again}");
    assert_eq!(
        std::fs::read_to_string(&m_full).unwrap(),
        std::fs::read_to_string(&m_again).unwrap()
    );

    std::fs::remove_dir_all(&dir).ok();
}
