//! End-to-end resilience acceptance tests, via the `pacer` CLI: a fault
//! campaign completes deterministically with quarantines (exit code 2),
//! and a killed-then-resumed fleet reproduces its artifacts byte for
//! byte (see RESILIENCE.md).

use pacer_cli::run;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

/// A racy workload that also allocates, so `heap-oom` budgets trigger.
const RACY_ALLOCATING: &str = "
    shared x;
    fn w() {
        let i = 0;
        while (i < 50) {
            let o = new obj;
            o.f = i;
            x = x + 1;
            i = i + 1;
        }
    }
    fn main() { let a = spawn w(); let b = spawn w(); join a; join b; }
";

/// A racy workload heavy enough to cross several full-GC boundaries
/// (nursery 2 KiB, full GC every 8 collections → one governed boundary
/// per ~16 KiB allocated), so an armed governor gets to walk its rate
/// ladder: two threads × 800 objects × 64 bytes ≈ 100 KiB.
const RACY_HEAVY: &str = "
    shared x;
    fn w() {
        let i = 0;
        while (i < 800) {
            let o = new obj;
            o.f = i;
            x = x + 1;
            i = i + 1;
        }
    }
    fn main() { let a = spawn w(); let b = spawn w(); join a; join b; }
";

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pacer-resilience-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write(dir: &std::path::Path, name: &str, content: &str) -> String {
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path.to_string_lossy().into_owned()
}

#[test]
fn fault_campaign_completes_with_deterministic_quarantines() {
    let dir = temp_dir("campaign");
    let program = write(&dir, "racy.pl", RACY_ALLOCATING);
    // detector-panic targets trials 0, 3, 6; heap-oom targets 0 and 4.
    // Both fire on every attempt, so the targeted trials exhaust their
    // retries and quarantine: {0, 3, 4, 6}.
    let plan = write(
        &dir,
        "campaign.plan",
        "detector-panic every=3\nheap-oom budget=64 every=4\n",
    );
    let base = &[
        "fleet",
        &program,
        "--instances",
        "8",
        "--rate",
        "0.25",
        "--seed",
        "3",
        "--fault-plan",
        &plan,
        "--max-retries",
        "1",
    ];

    let seq = run(&args(&[base, &["--jobs", "1"][..]].concat())).unwrap();
    let par = run(&args(&[base, &["--jobs", "4"][..]].concat())).unwrap();

    assert_eq!(seq.code, 2, "completed-with-quarantines exits 2: {seq}");
    assert!(
        seq.contains("quarantined=4"),
        "trials 0, 3, 4, 6 quarantine: {seq}"
    );
    for trial in ["trial 0 ", "trial 3 ", "trial 4 ", "trial 6 "] {
        assert!(seq.contains(trial), "missing {trial}: {seq}");
    }
    assert!(
        seq.contains("injected: "),
        "failures carry the marker: {seq}"
    );
    assert_eq!(seq, par, "fault campaigns are byte-identical at any --jobs");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn governed_fleet_is_byte_identical_at_any_job_count() {
    let dir = temp_dir("governed-jobs");
    let program = write(&dir, "heavy.pl", RACY_HEAVY);
    // Both runs write the same artifact paths, so the printed output is
    // comparable verbatim; the first run's artifact bytes are captured
    // before the second run overwrites them.
    let metrics = dir.join("gov.json").to_string_lossy().into_owned();
    let trace = dir.join("gov.jsonl").to_string_lossy().into_owned();
    let governed = |jobs: &str| {
        run(&args(&[
            "fleet",
            &program,
            "--instances",
            "6",
            "--rate",
            "0.25",
            "--seed",
            "5",
            "--mem-budget",
            "128",
            "--metrics-out",
            &metrics,
            "--trace-out",
            &trace,
            "--jobs",
            jobs,
        ]))
        .unwrap()
    };

    let seq = governed("1");
    let m_seq = std::fs::read_to_string(&metrics).unwrap();
    let t_seq = std::fs::read_to_string(&trace).unwrap();
    let par = governed("4");

    assert!(seq.contains("governor:"), "armed governor reports: {seq}");
    assert!(
        !seq.contains("steps_down=0"),
        "metadata pressure walks the rate ladder: {seq}"
    );
    assert!(
        seq.contains("finished at reduced rate"),
        "degraded trials finish instead of quarantining: {seq}"
    );
    assert_eq!(seq.code, 0, "rate-degraded-but-finished is success: {seq}");
    assert_eq!(seq, par, "governed fleets are byte-identical at any --jobs");
    assert_eq!(
        m_seq,
        std::fs::read_to_string(&metrics).unwrap(),
        "governed metrics snapshot is byte-identical at any --jobs"
    );
    assert_eq!(
        t_seq,
        std::fs::read_to_string(&trace).unwrap(),
        "governed event trace is byte-identical at any --jobs"
    );
    assert!(
        m_seq.contains("\"governor\""),
        "metrics carry the governor counter block"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn armed_governor_degrades_heap_oom_plan_instead_of_quarantining() {
    let dir = temp_dir("governed-oom");
    let program = write(&dir, "heavy.pl", RACY_HEAVY);
    // Every trial gets a 6 KiB injected heap budget; the workload
    // allocates ~100 KiB, so ungoverned trials hit a hard InjectedOom.
    let plan = write(&dir, "oom.plan", "heap-oom budget=6000 every=1\n");
    let base = &[
        "fleet",
        &program,
        "--instances",
        "4",
        "--rate",
        "0.25",
        "--seed",
        "11",
        "--fault-plan",
        &plan,
        "--max-retries",
        "1",
    ];

    // Ungoverned: the OOM fires on every attempt and all trials quarantine.
    let plain = run(&args(base)).unwrap();
    assert_eq!(plain.code, 2, "{plain}");
    assert!(plain.contains("quarantined=4"), "{plain}");

    // Armed governor: the injected heap budget becomes governor-managed
    // memory pressure at GC boundaries. The rate walks down the ladder and
    // the trials end in a clean cooperative cancellation at the floor —
    // degraded coverage (still exit 2), but zero quarantines.
    let metrics = dir.join("gov.json").to_string_lossy().into_owned();
    let trace = dir.join("gov.jsonl").to_string_lossy().into_owned();
    let governed = run(&args(
        &[
            base,
            &[
                "--mem-budget",
                "100000000",
                "--metrics-out",
                &metrics,
                "--trace-out",
                &trace,
            ][..],
        ]
        .concat(),
    ))
    .unwrap();

    assert_eq!(governed.code, 2, "cancelled trials exit 2: {governed}");
    assert!(governed.contains("quarantined=0"), "{governed}");
    assert!(
        governed.contains("cancelled at floor rate"),
        "trials cancel cleanly at the ladder floor: {governed}"
    );
    let m = std::fs::read_to_string(&metrics).unwrap();
    assert!(
        m.contains("\"governor\": {\"steps_down\":"),
        "metrics carry governor counters: {m}"
    );
    assert!(
        !m.contains("\"cancelled\":0}"),
        "cancelled counter is nonzero: {m}"
    );
    let t = std::fs::read_to_string(&trace).unwrap();
    assert!(
        t.contains("trial_degraded"),
        "trace records degradations instead of quarantines"
    );
    assert!(
        t.contains("rate_stepped") && t.contains("budget_breach"),
        "per-boundary governor decisions are traced"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_fleet_resumes_byte_identically() {
    let dir = temp_dir("resume");
    let program = write(&dir, "racy.pl", RACY_ALLOCATING);
    let journal = dir.join("fleet.journal").to_string_lossy().into_owned();
    let fleet = |extra: &[&str]| {
        let head = [
            "fleet",
            program.as_str(),
            "--instances",
            "6",
            "--rate",
            "0.25",
            "--seed",
            "7",
        ];
        run(&args(&[&head[..], extra].concat())).unwrap()
    };
    let artifacts = |tag: &str| {
        let m = dir
            .join(format!("{tag}.json"))
            .to_string_lossy()
            .into_owned();
        let t = dir
            .join(format!("{tag}.jsonl"))
            .to_string_lossy()
            .into_owned();
        (m, t)
    };

    // Reference: one uninterrupted observed run.
    let (m_full, t_full) = artifacts("full");
    fleet(&["--metrics-out", &m_full, "--trace-out", &t_full]);

    // "Crash": checkpoint a run, then chop the journal mid-entry, as a
    // kill -9 during an append would.
    let (m_tmp, t_tmp) = artifacts("tmp");
    fleet(&[
        "--checkpoint",
        &journal,
        "--metrics-out",
        &m_tmp,
        "--trace-out",
        &t_tmp,
    ]);
    let bytes = std::fs::read(&journal).unwrap();
    assert!(bytes.len() > 300, "journal has content");
    std::fs::write(&journal, &bytes[..bytes.len() - 300]).unwrap();

    // Resume: only the missing trials re-run, and the merged artifacts
    // are byte-identical to the uninterrupted run's.
    let (m_res, t_res) = artifacts("res");
    let resumed = fleet(&[
        "--resume",
        &journal,
        "--metrics-out",
        &m_res,
        "--trace-out",
        &t_res,
    ]);
    assert_eq!(resumed.code, 0);
    assert!(resumed.contains("resumed"), "{resumed}");
    assert_eq!(
        std::fs::read_to_string(&m_full).unwrap(),
        std::fs::read_to_string(&m_res).unwrap(),
        "metrics snapshot is byte-identical after kill + resume"
    );
    assert_eq!(
        std::fs::read_to_string(&t_full).unwrap(),
        std::fs::read_to_string(&t_res).unwrap(),
        "event trace is byte-identical after kill + resume"
    );

    // A second resume finds the journal complete and re-runs nothing,
    // still reproducing the same artifacts.
    let (m_again, t_again) = artifacts("again");
    let again = fleet(&[
        "--resume",
        &journal,
        "--metrics-out",
        &m_again,
        "--trace-out",
        &t_again,
    ]);
    assert!(again.contains("resumed 6 completed trial(s)"), "{again}");
    assert_eq!(
        std::fs::read_to_string(&m_full).unwrap(),
        std::fs::read_to_string(&m_again).unwrap()
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// Kill-and-resume for the streaming service journal (SERVICE.md): a
/// serve run dies mid-ingest (its checkpoint journal torn mid-append, as
/// a kill -9 would leave it), is resumed with the full session stream,
/// and the merged transcript comes out byte-identical to an
/// uninterrupted run — even at a different shard count.
#[test]
fn killed_serve_resumes_byte_identically() {
    use pacer_trace::gen::GenConfig;

    let dir = temp_dir("serve-resume");
    let journal = dir.join("serve.journal").to_string_lossy().into_owned();

    let sessions: Vec<(String, Vec<u8>)> = (0..4)
        .map(|i| {
            let trace = GenConfig::small(300 + i)
                .with_lock_discipline(0.2)
                .generate();
            (format!("sess{i}"), trace.to_binary())
        })
        .collect();
    let frames_file = |name: &str, count: usize| {
        let mut frames = Vec::new();
        for (session, bytes) in &sessions[..count] {
            frames.extend_from_slice(format!("SESSION {session} {}\n", bytes.len()).as_bytes());
            frames.extend_from_slice(bytes);
        }
        let path = dir.join(name);
        std::fs::write(&path, frames).unwrap();
        path.to_string_lossy().into_owned()
    };
    let full = frames_file("full.frames", 4);
    let partial = frames_file("partial.frames", 2);

    // Reference: one uninterrupted run.
    let reference = run(&args(&["serve", "--stdin", &full, "--shards", "4"])).unwrap();
    assert_eq!(reference.code, 0, "{reference}");

    // "Crash": checkpoint a run that only got through two sessions, then
    // tear the journal mid-entry.
    let interrupted = run(&args(&[
        "serve",
        "--stdin",
        &partial,
        "--shards",
        "4",
        "--checkpoint",
        &journal,
    ]))
    .unwrap();
    assert_eq!(interrupted.code, 0, "{interrupted}");
    let bytes = std::fs::read(&journal).unwrap();
    assert!(bytes.len() > 40, "journal has content");
    std::fs::write(&journal, &bytes[..bytes.len() - 40]).unwrap();

    // Resume with the full stream at a different shard count: the
    // journaled session is restored verbatim, the torn one re-ingests,
    // and the transcript is byte-identical to the uninterrupted run.
    let resumed = run(&args(&[
        "serve", "--stdin", &full, "--shards", "2", "--resume", &journal,
    ]))
    .unwrap();
    assert_eq!(resumed.code, 0, "{resumed}");
    assert_eq!(
        reference.text, resumed.text,
        "kill + resume reproduces the uninterrupted transcript"
    );

    // A second resume restores everything and re-ingests nothing new,
    // still reproducing the same transcript.
    let again = run(&args(&[
        "serve", "--stdin", &full, "--shards", "8", "--resume", &journal,
    ]))
    .unwrap();
    assert_eq!(reference.text, again.text);

    std::fs::remove_dir_all(&dir).ok();
}

/// The kill-during-checkpoint drill again, this time with a chaos plan
/// armed on every leg: shard panics during the partial run, during the
/// resume, and during the reference-free re-resume. Supervised replay
/// plus the checksummed journal must still reproduce the fault-free
/// transcript byte for byte.
#[test]
fn torn_journal_resume_is_byte_identical_under_shard_panics() {
    use pacer_trace::gen::GenConfig;

    let dir = temp_dir("serve-chaos-resume");
    let journal = dir.join("serve.journal").to_string_lossy().into_owned();
    let plan = dir.join("plan.faults");
    std::fs::write(&plan, "shard-panic every=3\n").unwrap();
    let plan = plan.to_string_lossy().into_owned();

    let sessions: Vec<(String, Vec<u8>)> = (0..5)
        .map(|i| {
            let trace = GenConfig::small(8800 + i)
                .with_lock_discipline(0.3)
                .generate();
            (format!("sess{i}"), trace.to_binary())
        })
        .collect();
    let frames_file = |name: &str, count: usize| {
        let mut frames = Vec::new();
        for (session, bytes) in &sessions[..count] {
            frames.extend_from_slice(format!("SESSION {session} {}\n", bytes.len()).as_bytes());
            frames.extend_from_slice(bytes);
        }
        let path = dir.join(name);
        std::fs::write(&path, frames).unwrap();
        path.to_string_lossy().into_owned()
    };
    let full = frames_file("full.frames", 5);
    let partial = frames_file("partial.frames", 3);

    // Reference: uninterrupted and fault-free.
    let reference = run(&args(&["serve", "--stdin", &full, "--shards", "4"])).unwrap();
    assert_eq!(reference.code, 0, "{reference}");

    // "Crash" mid-campaign: a faulted run checkpoints three sessions,
    // then the journal is torn mid-entry as a kill -9 would leave it.
    let interrupted = run(&args(&[
        "serve",
        "--stdin",
        &partial,
        "--shards",
        "4",
        "--checkpoint",
        &journal,
        "--fault-plan",
        &plan,
    ]))
    .unwrap();
    assert_eq!(interrupted.code, 0, "{interrupted}");
    let bytes = std::fs::read(&journal).unwrap();
    assert!(bytes.len() > 40, "journal has content");
    std::fs::write(&journal, &bytes[..bytes.len() - 40]).unwrap();

    // Resume the full stream with the same chaos plan still armed, at a
    // different shard count: restored sessions come back verbatim, the
    // torn one re-ingests under injected panics, and the transcript
    // matches the fault-free reference exactly.
    let resumed = run(&args(&[
        "serve",
        "--stdin",
        &full,
        "--shards",
        "2",
        "--resume",
        &journal,
        "--fault-plan",
        &plan,
    ]))
    .unwrap();
    assert_eq!(resumed.code, 0, "{resumed}");
    assert_eq!(
        reference.text, resumed.text,
        "chaos + kill + resume reproduces the fault-free transcript"
    );

    std::fs::remove_dir_all(&dir).ok();
}
