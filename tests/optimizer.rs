//! The constant-folding pass is effect-preserving end to end: folded
//! programs compute the same results and expose the same races.

use pacer_fasttrack::FastTrackDetector;
use pacer_lang::fold_program;
use pacer_runtime::{Vm, VmConfig};
use pacer_trace::Detector;

const PROGRAMS: &[&str] = &[
    // Foldable arithmetic around a racy counter.
    "
    shared x;
    fn w() {
        let i = 0 * 7;
        while (i < 10 + 10) {
            x = x + (3 - 2);
            i = i + 1 * 1;
        }
    }
    fn main() {
        let a = spawn w();
        let b = spawn w();
        join a; join b;
        return x;
    }
    ",
    // Dead branches that must not remove live racy accesses.
    "
    shared y; lock m;
    fn w(k) {
        if (1 == 1) { y = y + k; } else { y = 999; }
        if (2 < 1) { y = 777; }
        sync m { y = y * 1; }
    }
    fn main() {
        let a = spawn w(1);
        let b = spawn w(2);
        join a; join b;
        return y;
    }
    ",
    // Loops with constant-false conditions disappear; others stay.
    "
    shared z;
    fn main() {
        while (0) { z = 1; }
        let i = 0;
        while (i < 4 % 8) { z = z + i; i = i + 1; }
        return z;
    }
    ",
];

#[test]
fn folded_programs_compute_identical_results() {
    for (pi, src) in PROGRAMS.iter().enumerate() {
        let original = pacer_lang::parse(src).unwrap();
        let folded = fold_program(&original);
        let c1 = pacer_lang::compile(&original).unwrap();
        let c2 = pacer_lang::compile(&folded).unwrap();
        for seed in 0..5 {
            let mut d1 = FastTrackDetector::new();
            let mut d2 = FastTrackDetector::new();
            let o1 = Vm::run(&c1, &mut d1, &VmConfig::new(seed)).unwrap();
            let o2 = Vm::run(&c2, &mut d2, &VmConfig::new(seed)).unwrap();
            // Schedules differ (instruction counts changed), so compare
            // schedule-independent facts: single-threaded results exactly,
            // multi-threaded ones by racy-variable sets.
            let vars = |d: &FastTrackDetector| {
                let mut v: Vec<_> = d.races().iter().map(|r| r.x).collect();
                v.sort();
                v.dedup();
                v
            };
            assert_eq!(
                vars(&d1),
                vars(&d2),
                "program {pi} seed {seed}: racy vars changed"
            );
            if o1.threads_started == 1 {
                assert_eq!(
                    o1.main_result, o2.main_result,
                    "program {pi} seed {seed}: deterministic result changed"
                );
            }
        }
        assert!(
            c2.functions[c2.entry as usize].code.len()
                <= c1.functions[c1.entry as usize].code.len(),
            "program {pi}: folding must not grow code"
        );
    }
}

#[test]
fn folding_workloads_preserves_their_race_profile() {
    for w in pacer_workloads::all(pacer_workloads::Scale::Test) {
        let original = pacer_lang::parse(&w.source).unwrap();
        let folded = fold_program(&original);
        let c1 = pacer_lang::compile(&original).unwrap();
        let c2 = pacer_lang::compile(&folded).unwrap();
        let mut d1 = FastTrackDetector::new();
        let mut d2 = FastTrackDetector::new();
        Vm::run(&c1, &mut d1, &VmConfig::new(4)).unwrap();
        Vm::run(&c2, &mut d2, &VmConfig::new(4)).unwrap();
        // Site numbering may shift; compare race counts at var granularity.
        let vars = |d: &FastTrackDetector| {
            let mut v: Vec<_> = d.races().iter().map(|r| r.x).collect();
            v.sort();
            v.dedup();
            v.len()
        };
        let (v1, v2) = (vars(&d1), vars(&d2));
        assert!(
            v1.abs_diff(v2) <= 2,
            "{}: racy-var count moved too far: {v1} vs {v2}",
            w.name
        );
    }
}
