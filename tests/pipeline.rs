//! End-to-end pipeline tests: mini-language source → instrumenting
//! compiler → simulated runtime → detectors → happens-before oracle.

use pacer_core::PacerDetector;
use pacer_fasttrack::FastTrackDetector;
use pacer_runtime::{Vm, VmConfig};
use pacer_trace::{Detector, HbOracle, RecordingDetector};
use pacer_workloads::{all, Scale};

/// Records the exact event stream of a run (markers included) by tapping
/// the VM with a recorder at the same seed.
fn record(program: &pacer_lang::ir::CompiledProgram, cfg: &VmConfig) -> pacer_trace::Trace {
    let mut rec = RecordingDetector::new();
    Vm::run(program, &mut rec, cfg).expect("workload runs");
    rec.into_trace()
}

#[test]
fn vm_event_streams_are_well_formed_for_all_workloads() {
    for w in all(Scale::Test) {
        let program = w.compiled();
        for seed in 0..3 {
            let cfg = VmConfig::new(seed).with_sampling_rate(0.3);
            let trace = record(&program, &cfg);
            trace
                .validate()
                .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", w.name));
        }
    }
}

#[test]
fn pacer_is_precise_on_live_workload_runs() {
    for w in all(Scale::Test) {
        let program = w.compiled();
        let cfg = VmConfig::new(11).with_sampling_rate(0.5);
        // Same seed ⇒ same schedule for the recorder and the live run.
        let trace = record(&program, &cfg);
        let oracle = HbOracle::analyze(&trace);
        let truth: std::collections::HashSet<_> = oracle.distinct_races().into_iter().collect();

        let mut pacer = PacerDetector::new();
        Vm::run(&program, &mut pacer, &cfg).unwrap();
        for race in pacer.races() {
            assert!(
                truth.contains(&race.distinct_key()),
                "{}: false positive {race}",
                w.name
            );
        }
    }
}

#[test]
fn pacer_guarantee_holds_end_to_end() {
    // Every sampled guaranteed race of the recorded execution must appear
    // in the live PACER run of the same schedule.
    for w in all(Scale::Test) {
        let program = w.compiled();
        let cfg = VmConfig::new(5).with_sampling_rate(0.4);
        let trace = record(&program, &cfg);
        let oracle = HbOracle::analyze(&trace);

        let mut pacer = PacerDetector::new();
        Vm::run(&program, &mut pacer, &cfg).unwrap();
        // Workload sites are static program locations shared by many
        // dynamic accesses, so exact event matching is impossible here;
        // the per-event guarantee is property-tested in `pacer-core` on
        // unique-site traces. End to end, check containment at
        // (var, second-site) granularity.
        let reported: std::collections::HashSet<_> =
            pacer.races().iter().map(|r| (r.x, r.second.site)).collect();
        for race in oracle.sampled_guaranteed_races(&trace) {
            let (_, s2) = oracle.race_sites(race);
            let x = oracle.race_var(race);
            assert!(
                reported.contains(&(x, s2)),
                "{}: guaranteed race {race:?} unreported",
                w.name
            );
        }
    }
}

#[test]
fn replaying_a_recorded_trace_equals_the_live_run() {
    // Online detection and offline replay of the recorded stream must
    // agree exactly.
    let w = pacer_workloads::eclipse(Scale::Test);
    let program = w.compiled();
    let cfg = VmConfig::new(21).with_sampling_rate(0.3);
    let trace = record(&program, &cfg);

    let mut live = PacerDetector::new();
    Vm::run(&program, &mut live, &cfg).unwrap();
    let mut replayed = PacerDetector::new();
    replayed.run(&trace);

    let key = |d: &PacerDetector| {
        let mut v: Vec<_> = d
            .races()
            .iter()
            .map(|r| (r.x, r.first.site, r.second.site))
            .collect();
        v.sort();
        v
    };
    assert_eq!(key(&live), key(&replayed));
    assert_eq!(
        live.stats().effective_rate(),
        replayed.stats().effective_rate()
    );
}

#[test]
fn escape_analysis_elision_is_invisible_to_detection() {
    // A variant of the same program whose local object is manually inlined
    // (no object at all) must produce identical shared-race detection.
    let with_objects = "
        shared x;
        fn worker(id) {
            let i = 0;
            while (i < 40) {
                let tmp = new obj;
                tmp.v = i * 2;
                x = x + tmp.v;
                i = i + 1;
            }
        }
        fn main() {
            let a = spawn worker(1);
            let b = spawn worker(2);
            join a; join b;
        }
    ";
    let without_objects = "
        shared x;
        fn worker(id) {
            let i = 0;
            while (i < 40) {
                let v = i * 2;
                x = x + v;
                i = i + 1;
            }
        }
        fn main() {
            let a = spawn worker(1);
            let b = spawn worker(2);
            join a; join b;
        }
    ";
    let count_races = |src: &str| {
        let program = pacer_lang::compile(&pacer_lang::parse(src).unwrap()).unwrap();
        let mut ft = FastTrackDetector::new();
        // Note: schedules differ (different instruction counts), so compare
        // the *racy variable count*, not dynamic counts.
        Vm::run(&program, &mut ft, &VmConfig::new(3)).unwrap();
        let mut vars: Vec<_> = ft.races().iter().map(|r| r.x).collect();
        vars.sort();
        vars.dedup();
        vars.len()
    };
    assert_eq!(count_races(with_objects), 1);
    assert_eq!(count_races(without_objects), 1);
}

#[test]
fn volatile_publication_is_race_free_end_to_end() {
    let src = "
        shared data[8]; volatile ready;
        fn producer() {
            let i = 0;
            while (i < 8) { data[i] = i * 10; i = i + 1; }
            ready = 1;
        }
        fn consumer() {
            while (ready == 0) { }
            let sum = 0;
            let i = 0;
            while (i < 8) { sum = sum + data[i]; i = i + 1; }
            return sum;
        }
        fn main() {
            let p = spawn producer();
            let c = spawn consumer();
            join p; join c;
        }
    ";
    let program = pacer_lang::compile(&pacer_lang::parse(src).unwrap()).unwrap();
    for seed in 0..5 {
        let cfg = VmConfig::new(seed).with_sampling_rate(1.0);
        let mut pacer = PacerDetector::new();
        Vm::run(&program, &mut pacer, &cfg).unwrap();
        assert!(
            pacer.races().is_empty(),
            "seed {seed}: volatile handoff must order all accesses"
        );
    }
}
