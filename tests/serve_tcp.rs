//! Durable reconnectable sessions over the TCP transport (`pacer serve
//! --tcp`, SERVICE.md "Durable sessions"): acked-offset resume after
//! injected connection resets, offset-dedup of duplicated retransmits,
//! and a concurrent reconnect soak. The headline invariant is the
//! tentpole acceptance: a session interrupted mid-stream and resumed
//! over TCP produces a final report byte-identical to an uninterrupted
//! `pacer replay` of the same trace, at `--shards 1` and `--shards 4`,
//! with `session_resumes > 0` and the dedup counter equal to the
//! retransmitted-frame overlap.

use pacer_cli::run;
use pacer_harness::{serve_sessions, ServeConfig, ServeDetectorKind};
use pacer_trace::gen::GenConfig;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pacer-tcp-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A racy multi-frame trace (> 4096 events), so resets and resumes land
/// mid-session rather than on a session boundary.
fn multi_frame_trace(seed: u64) -> Vec<u8> {
    GenConfig::small(seed)
        .with_lock_discipline(0.0)
        .with_ops_per_thread(5000)
        .generate()
        .to_binary()
}

fn frame_count(bytes: &[u8]) -> u64 {
    let split = pacer_trace::binary::split_frames(bytes).unwrap();
    assert!(!split.truncated);
    assert!(
        split.frames.len() >= 3,
        "want a multi-frame trace, got {} frame(s)",
        split.frames.len()
    );
    split.frames.len() as u64
}

/// What `pacer replay --detector <d>` prints for these bytes — the
/// byte-identity baseline.
fn replay_body(dir: &std::path::Path, name: &str, bytes: &[u8], detector: &str) -> String {
    let path = dir.join(format!("{name}.ptrace"));
    std::fs::write(&path, bytes).unwrap();
    let path = path.to_string_lossy().into_owned();
    run(&args(&["replay", &path, "--detector", detector]))
        .unwrap()
        .text
}

/// Waits for the daemon's `--addr-file` to appear and returns the bound
/// address.
fn wait_for_addr(path: &std::path::Path) -> String {
    for _ in 0..500 {
        if let Ok(addr) = std::fs::read_to_string(path) {
            let addr = addr.trim().to_string();
            if !addr.is_empty() {
                return addr;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("daemon never wrote {}", path.display());
}

/// Exhausts the daemon's `--max-sessions` connection budget with no-op
/// connections so a scripted run terminates, then joins it.
fn drain_daemon(
    addr: &str,
    daemon: std::thread::JoinHandle<pacer_cli::CmdOutput>,
) -> pacer_cli::CmdOutput {
    for _ in 0..2000 {
        if daemon.is_finished() {
            break;
        }
        if std::net::TcpStream::connect(addr).is_err() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    daemon.join().unwrap()
}

/// Reads one integer counter out of the deterministic metrics JSON.
fn counter(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = json
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {json}"))
        + pat.len();
    json[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

struct Daemon {
    addr: String,
    handle: std::thread::JoinHandle<pacer_cli::CmdOutput>,
}

fn start_daemon(dir: &std::path::Path, tag: &str, extra: &[&str]) -> Daemon {
    let addr_file = dir.join(format!("{tag}.addr"));
    let mut daemon_args = vec![
        "serve".to_string(),
        "--tcp".to_string(),
        "127.0.0.1:0".to_string(),
        "--addr-file".to_string(),
        addr_file.to_string_lossy().into_owned(),
    ];
    daemon_args.extend(extra.iter().map(|s| s.to_string()));
    let handle = std::thread::spawn(move || run(&daemon_args).unwrap());
    let addr = wait_for_addr(&addr_file);
    Daemon { addr, handle }
}

#[test]
fn tcp_round_trip_matches_replay() {
    let dir = temp_dir("roundtrip");
    let bytes = multi_frame_trace(4100);
    let trace = dir.join("a.ptrace");
    std::fs::write(&trace, &bytes).unwrap();
    let trace = trace.to_string_lossy().into_owned();
    let expected = replay_body(&dir, "expected", &bytes, "fasttrack");

    for shards in ["1", "4"] {
        let wal = dir.join(format!("wal{shards}"));
        let daemon = start_daemon(
            &dir,
            &format!("rt{shards}"),
            &[
                "--max-sessions",
                "1",
                "--detector",
                "fasttrack",
                "--shards",
                shards,
                "--wal",
                &wal.to_string_lossy(),
            ],
        );
        let reply = run(&args(&[
            "serve",
            "--send",
            &trace,
            "--tcp",
            &daemon.addr,
            "--session",
            "a",
        ]))
        .unwrap();
        assert_eq!(
            reply.text, expected,
            "tcp reply != replay at shards {shards}"
        );
        assert_eq!(reply.code, 0);

        let transcript = daemon.handle.join().unwrap();
        assert_eq!(transcript.code, 0, "clean daemon exits 0: {transcript}");
        assert!(
            transcript.text.contains("served 1 session(s)"),
            "daemon prints the merged transcript: {transcript}"
        );
        // The completed session retired its write-ahead segment.
        assert!(!wal.join("a.wal").exists());
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The tentpole acceptance: injected conn-resets tear the connection
/// mid-session; the client reconnects with `RESUME` and the final
/// report is byte-identical to an uninterrupted replay, at 1 and 4
/// shards, with `session_resumes > 0` in the metrics snapshot.
#[test]
fn conn_reset_resume_is_byte_identical_to_replay() {
    let dir = temp_dir("reset");
    let bytes = multi_frame_trace(4200);
    let frames = frame_count(&bytes);
    let trace = dir.join("a.ptrace");
    std::fs::write(&trace, &bytes).unwrap();
    let trace = trace.to_string_lossy().into_owned();
    let expected = replay_body(&dir, "expected", &bytes, "fasttrack");

    // Every connection is torn down after one accepted frame, so a
    // trace of N frames forces N RESUME round trips (one per remaining
    // frame, plus a final reconnect to deliver END) over N+1
    // connections.
    let plan = dir.join("reset.plan");
    std::fs::write(&plan, "seed 0\nconn-reset every=1 after=1\n").unwrap();

    for shards in ["1", "4"] {
        let metrics = dir.join(format!("reset{shards}.json"));
        let daemon = start_daemon(
            &dir,
            &format!("reset{shards}"),
            &[
                "--max-sessions",
                &(frames + 1).to_string(),
                "--detector",
                "fasttrack",
                "--shards",
                shards,
                "--fault-plan",
                &plan.to_string_lossy(),
                "--metrics-out",
                &metrics.to_string_lossy(),
            ],
        );
        let reply = run(&args(&[
            "serve",
            "--send",
            &trace,
            "--tcp",
            &daemon.addr,
            "--session",
            "a",
        ]))
        .unwrap();
        assert_eq!(
            reply.text, expected,
            "resumed session != replay at shards {shards}"
        );
        assert_eq!(reply.code, 0);

        let transcript = drain_daemon(&daemon.addr, daemon.handle);
        assert_eq!(transcript.code, 0, "{transcript}");
        let json = std::fs::read_to_string(&metrics).unwrap();
        assert_eq!(
            counter(&json, "session_resumes"),
            frames,
            "one RESUME per torn connection: {json}"
        );
        assert_eq!(counter(&json, "frames_deduped"), 0, "{json}");
        assert_eq!(counter(&json, "connections"), frames + 1, "{json}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Duplicated retransmits (client chaos site `dup-frame every=1`)
/// re-send the previous frame before every offset > 0: the server must
/// dedup each one by offset, so the dedup counter equals the overlap
/// exactly and the report is unchanged.
#[test]
fn duplicated_retransmits_are_deduped_by_offset() {
    let dir = temp_dir("dup");
    let bytes = multi_frame_trace(4300);
    let frames = frame_count(&bytes);
    let trace = dir.join("a.ptrace");
    std::fs::write(&trace, &bytes).unwrap();
    let trace = trace.to_string_lossy().into_owned();
    let expected = replay_body(&dir, "expected", &bytes, "fasttrack");

    let plan = dir.join("dup.plan");
    std::fs::write(&plan, "seed 0\ndup-frame every=1\n").unwrap();
    let metrics = dir.join("dup.json");
    let daemon = start_daemon(
        &dir,
        "dup",
        &[
            "--max-sessions",
            "1",
            "--detector",
            "fasttrack",
            "--shards",
            "4",
            "--metrics-out",
            &metrics.to_string_lossy(),
        ],
    );
    let reply = run(&args(&[
        "serve",
        "--send",
        &trace,
        "--tcp",
        &daemon.addr,
        "--session",
        "a",
        "--fault-plan",
        &plan.to_string_lossy(),
    ]))
    .unwrap();
    assert_eq!(reply.text, expected, "deduped session != replay");
    assert_eq!(reply.code, 0);

    let transcript = drain_daemon(&daemon.addr, daemon.handle);
    assert_eq!(transcript.code, 0, "{transcript}");
    let json = std::fs::read_to_string(&metrics).unwrap();
    // `dup-frame every=1` re-sends the previous frame before every
    // offset except the first: overlap == frames - 1, exactly.
    assert_eq!(
        counter(&json, "frames_deduped"),
        frames - 1,
        "dedup counter != retransmitted overlap: {json}"
    );
    assert_eq!(counter(&json, "session_resumes"), 0, "{json}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Torn acks leave the client holding a stale offset; the `RESUME`
/// handshake re-syncs from the server's authoritative watermark and the
/// report is still byte-identical.
#[test]
fn torn_acks_resync_on_resume() {
    let dir = temp_dir("torn");
    let bytes = multi_frame_trace(4400);
    let trace = dir.join("a.ptrace");
    std::fs::write(&trace, &bytes).unwrap();
    let trace = trace.to_string_lossy().into_owned();
    let expected = replay_body(&dir, "expected", &bytes, "fasttrack");

    let plan = dir.join("torn.plan");
    std::fs::write(&plan, "seed 1\ntorn-ack every=3\n").unwrap();
    let metrics = dir.join("torn.json");
    let daemon = start_daemon(
        &dir,
        "torn",
        &[
            "--max-sessions",
            "64",
            "--detector",
            "fasttrack",
            "--shards",
            "2",
            "--fault-plan",
            &plan.to_string_lossy(),
            "--metrics-out",
            &metrics.to_string_lossy(),
        ],
    );
    let reply = run(&args(&[
        "serve",
        "--send",
        &trace,
        "--tcp",
        &daemon.addr,
        "--session",
        "a",
    ]))
    .unwrap();
    assert_eq!(reply.text, expected, "torn-ack session != replay");
    assert_eq!(reply.code, 0);

    let transcript = drain_daemon(&daemon.addr, daemon.handle);
    assert_eq!(transcript.code, 0, "{transcript}");
    let json = std::fs::read_to_string(&metrics).unwrap();
    assert!(counter(&json, "session_resumes") > 0, "{json}");
    std::fs::remove_dir_all(&dir).ok();
}

/// A fresh `SESSION` under a completed name is a duplicate; `RESUME` of
/// a name the server has never seen is rejected; both exit 2 with a
/// single `error:` line.
#[test]
fn tcp_rejects_duplicates_and_unknown_resumes() {
    use std::io::{BufRead as _, Write as _};

    let dir = temp_dir("reject");
    let bytes = multi_frame_trace(4500);
    let trace = dir.join("a.ptrace");
    std::fs::write(&trace, &bytes).unwrap();
    let trace = trace.to_string_lossy().into_owned();

    let daemon = start_daemon(&dir, "reject", &["--max-sessions", "8", "--shards", "2"]);
    let ok = run(&args(&[
        "serve",
        "--send",
        &trace,
        "--tcp",
        &daemon.addr,
        "--session",
        "a",
    ]))
    .unwrap();
    assert_eq!(ok.code, 0);

    // Completed sessions re-serve their stored report on RESUME (the
    // reconnect-after-END race), byte-identically.
    let resumed = {
        let conn = std::net::TcpStream::connect(&daemon.addr).unwrap();
        let mut writer = conn.try_clone().unwrap();
        writer.write_all(b"RESUME a 0\n").unwrap();
        let mut reader = std::io::BufReader::new(conn);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let len: usize = line
            .strip_prefix("REPORT ")
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        let mut body = vec![0u8; len];
        std::io::Read::read_exact(&mut reader, &mut body).unwrap();
        String::from_utf8(body).unwrap()
    };
    assert_eq!(resumed, ok.text, "re-served report differs");

    let dup = run(&args(&[
        "serve",
        "--send",
        &trace,
        "--tcp",
        &daemon.addr,
        "--session",
        "a",
    ]))
    .unwrap();
    assert_eq!(dup.code, 2, "duplicate name must exit 2: {dup}");
    assert!(dup.text.contains("duplicate session name"), "{dup}");

    // `RESUME` of an unknown name straight over the wire:
    let unknown = {
        let conn = std::net::TcpStream::connect(&daemon.addr).unwrap();
        let mut writer = conn.try_clone().unwrap();
        writer.write_all(b"RESUME ghost 0\n").unwrap();
        let mut reader = std::io::BufReader::new(conn);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line
    };
    assert!(unknown.contains("unknown session"), "{unknown}");

    let transcript = drain_daemon(&daemon.addr, daemon.handle);
    // The duplicate rejection is ledgered as a failed session → exit 2.
    assert_eq!(transcript.code, 2, "{transcript}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite soak: N concurrent TCP sessions with conn-resets injected
/// at deterministic-but-interleaving-dependent points; every session
/// completes after its reconnects, and the merged transcript compares
/// clean against a fault-free `--shards 1` in-process run of the same
/// traces.
#[test]
fn concurrent_reconnect_soak_matches_fault_free_single_shard() {
    let dir = temp_dir("soak");
    let sessions: Vec<(String, Vec<u8>)> = (0..8)
        .map(|i| {
            let discipline = if i % 2 == 0 { 0.0 } else { 0.7 };
            let bytes = GenConfig::small(6000 + i as u64)
                .with_lock_discipline(discipline)
                .with_ops_per_thread(if i % 3 == 0 { 5000 } else { 400 })
                .generate()
                .to_binary();
            (format!("s{i:02}"), bytes)
        })
        .collect();

    // Every accepted connection resets after 2 frames, so every
    // multi-frame session is forced through at least one reconnect —
    // at whatever offsets the concurrent interleaving produces.
    let plan = dir.join("soak.plan");
    std::fs::write(&plan, "seed 0\nconn-reset every=1 after=2\n").unwrap();
    let metrics = dir.join("soak.json");
    let daemon = start_daemon(
        &dir,
        "soak",
        &[
            "--max-sessions",
            "200",
            "--detector",
            "fasttrack",
            "--shards",
            "4",
            "--fault-plan",
            &plan.to_string_lossy(),
            "--metrics-out",
            &metrics.to_string_lossy(),
            "--wal",
            &dir.join("soakwal").to_string_lossy(),
        ],
    );

    std::thread::scope(|scope| {
        for (name, bytes) in &sessions {
            let path = dir.join(format!("{name}.ptrace"));
            std::fs::write(&path, bytes).unwrap();
            let addr = daemon.addr.clone();
            scope.spawn(move || {
                let reply = run(&args(&[
                    "serve",
                    "--send",
                    &path.to_string_lossy(),
                    "--tcp",
                    &addr,
                    "--session",
                    name,
                ]))
                .unwrap();
                assert_eq!(reply.code, 0, "session {name} failed: {reply}");
            });
        }
    });

    let transcript = drain_daemon(&daemon.addr, daemon.handle);
    assert_eq!(transcript.code, 0, "soak daemon exits 0: {transcript}");

    // Byte-identity against the fault-free single-shard in-process run.
    let clean = serve_sessions(
        &ServeConfig {
            shards: 1,
            ..ServeConfig::new(ServeDetectorKind::FastTrack)
        },
        sessions.clone(),
        1,
    )
    .unwrap();
    // The daemon epilogue appends a "serve metrics written to ..." note
    // after the transcript; everything before it must be byte-identical.
    let daemon_transcript = transcript
        .text
        .split("serve metrics written to ")
        .next()
        .unwrap();
    assert_eq!(
        daemon_transcript, clean.transcript,
        "soak transcript diverged from the fault-free --shards 1 run"
    );

    let json = std::fs::read_to_string(&metrics).unwrap();
    assert!(counter(&json, "session_resumes") > 0, "{json}");
    std::fs::remove_dir_all(&dir).ok();
}
