//! Chaos soak for the streaming service (`pacer serve` + RESILIENCE.md,
//! "Service supervision"): injected shard panics, connection drops, and
//! inbox stalls must never change what the service *reports* — only how
//! hard it had to work. The headline invariant is byte-identity: a run
//! under a `shard-panic` fault plan produces the same merged transcript
//! and per-session reports as the fault-free run, at `--shards 1` and
//! `--shards 4`, while `shard_restarts` proves the panics really fired.

use pacer_faults::FaultPlan;
use pacer_harness::{serve_sessions, ServeConfig, ServeDetectorKind, SessionOutcome};
use pacer_trace::gen::GenConfig;

/// Seeded session mix: racy and mostly-disciplined traces, plus one
/// larger multi-frame session so faults land mid-stream, not only on
/// session boundaries.
fn chaos_sessions() -> Vec<(String, Vec<u8>)> {
    (0..12)
        .map(|i| {
            let seed = 9100 + i as u64;
            let discipline = if i % 2 == 0 { 0.0 } else { 0.75 };
            let mut cfg = GenConfig::small(seed).with_lock_discipline(discipline);
            if i == 4 {
                cfg = cfg.with_ops_per_thread(1500);
            }
            (format!("c{i:02}"), cfg.generate().to_binary())
        })
        .collect()
}

fn cfg(shards: usize, plan: Option<&str>) -> ServeConfig {
    ServeConfig {
        shards,
        fault_plan: plan.map(|spec| FaultPlan::parse(spec).unwrap()),
        ..ServeConfig::new(ServeDetectorKind::FastTrack)
    }
}

/// The acceptance invariant from RESILIENCE.md: injected shard panics
/// are absorbed by supervised replay — transcripts and reports are
/// byte-identical to the clean run, no session is lost, and the
/// restart counters are nonzero (the faults demonstrably fired).
#[test]
fn shard_panics_leave_transcripts_byte_identical() {
    let sessions = chaos_sessions();
    for shards in [1, 4] {
        let clean = serve_sessions(&cfg(shards, None), sessions.clone(), 1).unwrap();
        let chaos = serve_sessions(
            &cfg(shards, Some("seed 3\nshard-panic every=7\n")),
            sessions.clone(),
            1,
        )
        .unwrap();

        assert_eq!(
            clean.transcript, chaos.transcript,
            "chaos transcript diverged at shards={shards}"
        );
        for (c, f) in clean.reports.iter().zip(&chaos.reports) {
            assert_eq!(c.name, f.name);
            assert_eq!(c.body, f.body, "report body diverged for {}", c.name);
            assert_eq!(c.outcome, f.outcome, "outcome diverged for {}", c.name);
        }

        let restarts: u64 = chaos.shard_counters.iter().map(|c| c.shard_restarts).sum();
        let lost: u64 = chaos.shard_counters.iter().map(|c| c.sessions_lost).sum();
        assert!(restarts > 0, "no injected panic fired at shards={shards}");
        assert_eq!(lost, 0, "a single-shot panic must never lose a session");
        assert!(chaos.sessions.conserved(), "{:?}", chaos.sessions);
        assert_eq!(chaos.sessions.failed, clean.sessions.failed);
    }
}

/// Same invariant under concurrent admission: worker interleaving plus
/// injected panics still cannot perturb the merged transcript.
#[test]
fn shard_panics_are_invisible_under_concurrent_admission() {
    let sessions = chaos_sessions();
    let baseline = serve_sessions(&cfg(4, None), sessions.clone(), 1)
        .unwrap()
        .transcript;
    for concurrency in [4, 8] {
        let chaos = serve_sessions(
            &cfg(4, Some("shard-panic every=5\n")),
            sessions.clone(),
            concurrency,
        )
        .unwrap();
        assert_eq!(
            baseline, chaos.transcript,
            "transcript diverged at concurrency={concurrency}"
        );
        let restarts: u64 = chaos.shard_counters.iter().map(|c| c.shard_restarts).sum();
        assert!(restarts > 0);
        assert!(chaos.sessions.conserved());
    }
}

/// `conn-drop` truncates targeted session streams after a byte budget.
/// The damage must be deterministic: the same sessions fail the same
/// way at every shard count, and untargeted sessions are untouched.
#[test]
fn conn_drops_fail_the_same_sessions_at_every_shard_count() {
    let sessions = chaos_sessions();
    let clean = serve_sessions(&cfg(1, None), sessions.clone(), 1).unwrap();
    let plan = "conn-drop every=4 after=64\n";
    let baseline = serve_sessions(&cfg(1, Some(plan)), sessions.clone(), 1).unwrap();

    let dropped: Vec<&str> = baseline
        .reports
        .iter()
        .zip(&clean.reports)
        .filter(|(d, c)| d.body != c.body || d.outcome != c.outcome)
        .map(|(d, _)| d.name.as_str())
        .collect();
    assert!(
        !dropped.is_empty(),
        "the drop plan must actually damage some sessions"
    );
    assert!(
        dropped.len() < sessions.len(),
        "the drop plan must spare some sessions"
    );

    for shards in [2, 4] {
        let out = serve_sessions(&cfg(shards, Some(plan)), sessions.clone(), 1).unwrap();
        assert_eq!(
            baseline.transcript, out.transcript,
            "conn-drop damage diverged at shards={shards}"
        );
        assert!(out.sessions.conserved());
    }
}

/// `inbox-stall` only burns scheduler yields inside the router; it must
/// be completely invisible in every output byte and every counter that
/// is not about timing.
#[test]
fn inbox_stalls_are_output_invisible() {
    let sessions = chaos_sessions();
    for shards in [1, 4] {
        let clean = serve_sessions(&cfg(shards, None), sessions.clone(), 1).unwrap();
        let stalled = serve_sessions(
            &cfg(shards, Some("inbox-stall every=3 len=40\n")),
            sessions.clone(),
            1,
        )
        .unwrap();
        assert_eq!(clean.transcript, stalled.transcript);
        assert_eq!(clean.shard_counters, stalled.shard_counters);
        assert_eq!(clean.sessions, stalled.sessions);
    }
}

/// A combined campaign — panics, drops, and stalls in one plan — still
/// conserves the session ledger and keeps every surviving report equal
/// to its clean twin.
#[test]
fn combined_campaign_conserves_the_session_ledger() {
    let sessions = chaos_sessions();
    let plan = "shard-panic every=9\nconn-drop every=5 after=96\ninbox-stall every=11 len=16\n";
    let clean = serve_sessions(&cfg(4, None), sessions.clone(), 1).unwrap();
    let chaos = serve_sessions(&cfg(4, Some(plan)), sessions.clone(), 1).unwrap();

    assert!(chaos.sessions.conserved(), "{:?}", chaos.sessions);
    assert_eq!(chaos.sessions.admitted, sessions.len() as u64);
    assert_eq!(chaos.reports.len(), sessions.len());

    let mut untouched = 0;
    for (c, f) in clean.reports.iter().zip(&chaos.reports) {
        assert_eq!(c.name, f.name);
        if c.body == f.body {
            assert_eq!(c.outcome, f.outcome);
            untouched += 1;
        } else {
            // Only the connection-drop site rewrites a body: either the
            // truncated prefix still analyzes (a mid-frame partial,
            // outcome Clean) or the stream dies early enough to reject.
            assert!(
                f.body.contains("mid-frame") || f.outcome != SessionOutcome::Clean,
                "unexplained divergence for {}: {}",
                c.name,
                f.body
            );
        }
    }
    assert!(untouched > 0, "some sessions must survive the campaign");
    let restarts: u64 = chaos.shard_counters.iter().map(|c| c.shard_restarts).sum();
    assert!(restarts > 0, "the panic site never fired");
}
