//! Deterministic soak test for the streaming detection service: ~50
//! concurrent sessions of seeded generated traces, with mid-stream
//! disconnects (truncated tails) and corrupt frames mixed in. Truncated
//! sessions are reported as partial and corrupt ones rejected — per the
//! TRACE_FORMAT.md truncation-vs-corruption rules — without poisoning
//! any other session, and the merged transcript is byte-identical at
//! any shard count and handler concurrency.

use pacer_cli::run;
use pacer_harness::{serve_sessions, ServeConfig, ServeDetectorKind};
use pacer_trace::gen::GenConfig;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pacer-soak-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

enum Fate {
    Clean,
    /// Disconnect mid-stream: the tail of the byte stream is cut off.
    Truncated,
    /// A complete frame whose checksum no longer matches.
    Corrupt,
}

/// 50 seeded sessions: every 5th disconnects mid-stream, every 7th
/// (that isn't already truncated) is corrupted, the rest are clean.
fn soak_sessions() -> Vec<(String, Vec<u8>, Fate)> {
    (0..50)
        .map(|i| {
            let seed = 7000 + i as u64;
            let discipline = if i % 3 == 0 { 0.0 } else { 0.7 };
            let mut config = GenConfig::small(seed).with_lock_discipline(discipline);
            if i == 5 {
                // One multi-frame session (> 4096 events), so at least
                // one truncated tail still has complete frames to
                // analyze rather than cutting inside the first frame.
                config = config.with_ops_per_thread(2000);
            }
            let mut bytes = config.generate().to_binary();
            let fate = if i % 5 == 0 {
                bytes.truncate(bytes.len() - bytes.len() / 3 - 1);
                Fate::Truncated
            } else if i % 7 == 0 {
                let last = bytes.len() - 1;
                bytes[last] ^= 0x40;
                Fate::Corrupt
            } else {
                Fate::Clean
            };
            (format!("soak{i:02}"), bytes, fate)
        })
        .collect()
}

fn cfg(shards: usize) -> ServeConfig {
    ServeConfig {
        shards,
        ..ServeConfig::new(ServeDetectorKind::FastTrack)
    }
}

#[test]
fn soak_sessions_fail_independently_and_merge_deterministically() {
    let dir = temp_dir("fleet");
    let sessions = soak_sessions();
    let feed: Vec<(String, Vec<u8>)> = sessions
        .iter()
        .map(|(n, b, _)| (n.clone(), b.clone()))
        .collect();

    let baseline = serve_sessions(&cfg(4), feed.clone(), 8).unwrap();
    assert_eq!(baseline.reports.len(), 50);

    // Per-fate semantics: truncation is a partial *success*, corruption
    // a rejection — and `pacer replay` of the same bytes agrees byte
    // for byte on every session, so no session contaminated another.
    for (name, bytes, fate) in &sessions {
        let report = baseline.reports.iter().find(|r| &r.name == name).unwrap();
        let path = dir.join(format!("{name}.ptrace"));
        std::fs::write(&path, bytes).unwrap();
        let path = path.to_string_lossy().into_owned();
        let replayed = run(&args(&["replay", &path, "--detector", "fasttrack"]));
        match fate {
            Fate::Truncated => {
                assert!(report.truncated && !report.error, "{name}: {report:?}");
                assert!(
                    report.body.contains("note: trace ends mid-frame"),
                    "{name} lacks the truncation note: {}",
                    report.body
                );
                assert_eq!(report.body, replayed.unwrap().text, "{name} != replay");
            }
            Fate::Corrupt => {
                assert!(report.error && !report.truncated, "{name}: {report:?}");
                let expected = replayed.unwrap_err().message;
                let expected = expected
                    .strip_prefix(&format!("{path}: "))
                    .expect("replay prefixes stream errors with the file name");
                assert_eq!(
                    report.body,
                    format!("error: {expected}\n"),
                    "{name} != replay's rejection"
                );
            }
            Fate::Clean => {
                assert!(!report.error && !report.truncated, "{name}: {report:?}");
                assert_eq!(report.body, replayed.unwrap().text, "{name} != replay");
            }
        }
    }

    // The multi-frame truncated session analyzed a nonempty prefix.
    let multi = baseline
        .reports
        .iter()
        .find(|r| r.name == "soak05")
        .unwrap();
    assert!(
        multi.truncated
            && multi.events > 0
            && !multi.body.contains("analyzed the 0 complete frame(s)"),
        "multi-frame truncation keeps the complete prefix: {}",
        multi.body
    );

    // Shard-count and concurrency invariance over the full soak mix.
    for (shards, concurrency) in [(1, 1), (4, 1), (8, 8), (3, 16)] {
        let out = serve_sessions(&cfg(shards), feed.clone(), concurrency).unwrap();
        assert_eq!(
            baseline.transcript, out.transcript,
            "transcript differs at shards={shards} concurrency={concurrency}"
        );
        assert!(out.any_errors(), "corrupt sessions surface in every run");
    }

    // Shard counters conserve the merged totals: every event and race
    // lands in exactly one shard.
    let events: u64 = baseline.shard_counters.iter().map(|c| c.events).sum();
    let races: u64 = baseline.shard_counters.iter().map(|c| c.races).sum();
    let report_events: u64 = baseline.reports.iter().map(|r| r.events).sum();
    let report_races: u64 = baseline.reports.iter().map(|r| r.dynamic_races).sum();
    assert_eq!(races, report_races, "per-shard race counters conserve");
    assert!(
        events >= report_events,
        "broadcast sync events appear in every shard's counter"
    );

    std::fs::remove_dir_all(&dir).ok();
}
