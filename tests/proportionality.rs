//! Statistical test of the proportionality guarantee: over many seeded
//! runs, PACER detects a reliable race in a fraction of trials close to
//! the sampling rate (§5.2's claim, checked with binomial bounds).

use pacer_harness::detection::RaceCensus;
use pacer_harness::trials::{run_trial, DetectorKind};
use pacer_workloads::{hsqldb, Scale};

/// Two-sided tolerance for a binomial proportion: mean ± 4·σ plus slack
/// for the window-granularity sampling of the GC controller.
fn binomial_bounds(p: f64, n: u32) -> (f64, f64) {
    let sigma = (p * (1.0 - p) / n as f64).sqrt();
    let slack = 0.05 + 4.0 * sigma;
    ((p - slack).max(0.0), (p + slack).min(1.0))
}

#[test]
fn distinct_detection_rate_tracks_sampling_rate() {
    let program = hsqldb(Scale::Test).compiled();
    // Reliable races: those in every one of a handful of full trials.
    let census = RaceCensus::collect(&program, 6, 5000).unwrap();
    let eval: Vec<_> = census.races_with_at_least(6);
    assert!(!eval.is_empty(), "need fully reliable races");
    let eval: std::collections::HashSet<_> = eval.into_iter().collect();

    for rate in [0.25, 0.5] {
        let trials = 120u32;
        let mut detected_any = 0u32;
        for i in 0..trials {
            let r = run_trial(
                &program,
                DetectorKind::Pacer { rate },
                9_000 + 37 * u64::from(i),
            )
            .unwrap();
            if r.distinct_races.iter().any(|k| eval.contains(k)) {
                detected_any += 1;
            }
        }
        let observed = f64::from(detected_any) / f64::from(trials);
        // A reliable race occurs every run with many dynamic instances;
        // detecting *any* eval race needs at least one sampled first
        // access, so the per-trial probability is at least ≈ rate (and
        // higher, since several dynamic occurrences give several chances).
        let (lo, _) = binomial_bounds(rate, trials);
        assert!(
            observed >= lo,
            "rate {rate}: observed detection fraction {observed} below {lo}"
        );
    }
}

#[test]
fn detection_scales_monotonically_with_rate() {
    let program = hsqldb(Scale::Test).compiled();
    let trials = 60u32;
    let mut fractions = Vec::new();
    for rate in [0.02, 0.10, 0.40, 1.0] {
        let mut dynamic_total = 0usize;
        for i in 0..trials {
            let r = run_trial(
                &program,
                DetectorKind::Pacer { rate },
                400 + 13 * u64::from(i),
            )
            .unwrap();
            dynamic_total += r.dynamic_races.len();
        }
        fractions.push(dynamic_total as f64 / f64::from(trials));
    }
    for pair in fractions.windows(2) {
        assert!(
            pair[1] >= pair[0] * 0.8,
            "dynamic detections should grow with the rate: {fractions:?}"
        );
    }
    assert!(
        fractions.last().unwrap() > &(fractions[0] * 3.0),
        "100% sampling must find far more than 2%: {fractions:?}"
    );
}

#[test]
fn zero_rate_never_detects() {
    let program = hsqldb(Scale::Test).compiled();
    for i in 0..10 {
        let r = run_trial(&program, DetectorKind::Pacer { rate: 0.0 }, i).unwrap();
        assert!(r.dynamic_races.is_empty());
    }
}
