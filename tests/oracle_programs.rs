//! The hand-written sample programs under `programs/` pass the fuzzer's
//! differential oracle — the same battery generated programs face:
//! full-rate PACER/FASTTRACK equivalence, soundness against the HB
//! oracle, schedule stability across the rate ladder, detector state
//! invariants, and space-accounting consistency.

use pacer_core::PacerDetector;
use pacer_fasttrack::FastTrackDetector;
use pacer_fuzz::{check_program, OracleConfig};
use pacer_runtime::{Vm, VmConfig};
use pacer_trace::Detector;

const SAMPLES: &[&str] = &[
    "bank.pl",
    "handoff.pl",
    "producer_consumer.pl",
    "worklist.pl",
];

fn load(name: &str) -> pacer_lang::ast::Program {
    let path = format!("{}/programs/{name}", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(&path).unwrap();
    pacer_lang::parse(&source).unwrap_or_else(|e| panic!("{name}: {e}"))
}

#[test]
fn sample_programs_pass_the_differential_oracle() {
    for name in SAMPLES {
        let program = load(name);
        let report = check_program(&program, 0xACE5, &OracleConfig::default());
        assert_eq!(
            report.violations,
            Vec::<String>::new(),
            "{name}: oracle violations"
        );
        assert!(report.vm_runs > 0, "{name}: never executed");
    }
}

#[test]
fn pacer_at_full_rate_matches_fasttrack_on_every_sample() {
    // The oracle asserts this internally; this spells the paper's central
    // accuracy claim out directly, one explicit assertion per program.
    for name in SAMPLES {
        let program = load(name);
        let compiled = pacer_lang::compile(&program).unwrap();
        for seed in [2, 7, 19] {
            let cfg = VmConfig::new(seed).with_sampling_rate(1.0);
            let mut pacer = PacerDetector::new();
            let mut ft = FastTrackDetector::new();
            Vm::run(&compiled, &mut pacer, &cfg).unwrap();
            Vm::run(&compiled, &mut ft, &cfg).unwrap();
            assert_eq!(
                pacer.distinct_races(),
                ft.distinct_races(),
                "{name} seed {seed}: PACER@1.0 diverges from FASTTRACK"
            );
        }
    }
}
