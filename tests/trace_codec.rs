//! Round-trip properties of the binary trace codec (`TRACE_FORMAT.md`)
//! over realistic inputs: the committed fuzz corpus and freshly generated
//! random traces.
//!
//! Three invariants hold for every trace:
//!
//! * **binary → binary byte-identity** — decoding and re-encoding
//!   reproduces the exact bytes (framing is deterministic);
//! * **text → binary → text identity** — the two encodings carry the same
//!   events, so converting through either direction is lossless; and
//! * **detector-report equality** — any detector produces the same race
//!   report from a decoded trace as from the original.

use pacer_fasttrack::{FastTrackDetector, GenericDetector};
use pacer_fuzz::corpus;
use pacer_trace::binary::{decode_trace, encode_trace};
use pacer_trace::gen::{insert_sampling_periods, GenConfig};
use pacer_trace::{Detector, Trace};

/// Truth traces recorded from every compiling corpus entry, plus a spread
/// of generated traces with sampling periods overlaid.
fn sample_traces() -> Vec<(String, Trace)> {
    let mut out = Vec::new();
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut names: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/corpus/ exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "pacer"))
        .collect();
    names.sort();
    for path in names {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        let (seed, program) = corpus::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let Ok(compiled) = pacer_lang::compile(&program) else {
            continue;
        };
        let Ok(trace) = pacer_harness::record_trial_trace(&compiled, 1.0, seed) else {
            continue;
        };
        out.push((name, trace));
    }
    assert!(
        out.len() >= 5,
        "expected several corpus truth traces, got {}",
        out.len()
    );
    for seed in 0..8 {
        let trace = GenConfig::small(seed).with_lock_discipline(0.6).generate();
        let sampled = insert_sampling_periods(&trace, 0.3, 25, seed);
        out.push((format!("gen-{seed}"), sampled));
    }
    out
}

#[test]
fn binary_round_trip_is_byte_identical() {
    for (name, trace) in sample_traces() {
        let bytes = encode_trace(&trace);
        let decoded = decode_trace(&bytes).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(decoded.actions(), trace.actions(), "{name}: events differ");
        assert_eq!(encode_trace(&decoded), bytes, "{name}: re-encode differs");
    }
}

#[test]
fn text_to_binary_to_text_is_lossless() {
    for (name, trace) in sample_traces() {
        let text = trace.to_text();
        let reparsed = Trace::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            encode_trace(&reparsed),
            encode_trace(&trace),
            "{name}: text round trip changed the binary encoding"
        );
        let decoded = decode_trace(&encode_trace(&trace)).unwrap();
        assert_eq!(
            decoded.to_text(),
            text,
            "{name}: binary round trip changed the text"
        );
    }
}

#[test]
fn detectors_report_identically_on_both_encodings() {
    for (name, trace) in sample_traces() {
        let decoded = decode_trace(&encode_trace(&trace)).unwrap();
        let mut ft_a = FastTrackDetector::new();
        let mut ft_b = FastTrackDetector::new();
        ft_a.run(&trace);
        ft_b.run(&decoded);
        assert_eq!(
            ft_a.races(),
            ft_b.races(),
            "{name}: FASTTRACK reports differ"
        );
        let mut g_a = GenericDetector::new();
        let mut g_b = GenericDetector::new();
        g_a.run(&trace);
        g_b.run(&decoded);
        assert_eq!(g_a.races(), g_b.races(), "{name}: GENERIC reports differ");
    }
}

#[test]
fn binary_encoding_is_substantially_smaller_than_text() {
    let mut text_bytes = 0usize;
    let mut bin_bytes = 0usize;
    for (_, trace) in sample_traces() {
        text_bytes += trace.to_text().len();
        bin_bytes += encode_trace(&trace).len();
    }
    assert!(
        bin_bytes * 3 <= text_bytes,
        "binary should be at least 3x smaller: {bin_bytes} vs {text_bytes}"
    );
}
