//! The sample programs under `programs/` compile, run, and behave as their
//! comments claim, via the `pacer` CLI.

use pacer_cli::run;

fn cli(list: &[&str]) -> String {
    let args: Vec<String> = list.iter().map(|s| s.to_string()).collect();
    run(&args)
        .unwrap_or_else(|e| panic!("pacer {list:?} failed: {e}"))
        .text
}

fn repo_path(rel: &str) -> String {
    format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn bank_exhibits_the_lost_update_race() {
    let out = cli(&[
        "run",
        &repo_path("programs/bank.pl"),
        "--detector",
        "fasttrack",
        "--seed",
        "7",
    ]);
    assert!(out.contains("distinct:"), "{out}");
    assert!(
        out.contains("deposit_worker: balance"),
        "race named at the balance sites: {out}"
    );
}

#[test]
fn producer_consumer_is_race_free_at_full_rate() {
    let out = cli(&[
        "run",
        &repo_path("programs/producer_consumer.pl"),
        "--rate",
        "1.0",
        "--seed",
        "2",
    ]);
    assert!(out.contains("0 dynamic race report(s)"), "{out}");
}

#[test]
fn worklist_races_on_result_slots_not_the_counter() {
    let out = cli(&[
        "run",
        &repo_path("programs/worklist.pl"),
        "--detector",
        "fasttrack",
        "--seed",
        "5",
    ]);
    assert!(out.contains("results"), "slot races reported: {out}");
    assert!(
        !out.contains("claimed  <->") && !out.contains("claimed ("),
        "the guarded counter must not be blamed: {out}"
    );
}

#[test]
fn check_summarizes_every_sample_program() {
    for p in ["bank.pl", "producer_consumer.pl", "worklist.pl"] {
        let out = cli(&["check", &repo_path(&format!("programs/{p}"))]);
        assert!(out.contains("instrumented site(s)"), "{p}: {out}");
    }
}

#[test]
fn fmt_round_trips_every_sample_program() {
    for p in ["bank.pl", "producer_consumer.pl", "worklist.pl"] {
        let path = repo_path(&format!("programs/{p}"));
        let once = cli(&["fmt", &path]);
        let reparsed = pacer_lang::parse(&once).unwrap();
        let twice = pacer_lang::print(&reparsed);
        assert_eq!(once, twice, "{p}: canonical form is a fixpoint");
    }
}

#[test]
fn handoff_uses_wait_notify_and_is_race_free() {
    let out = cli(&[
        "run",
        &repo_path("programs/handoff.pl"),
        "--rate",
        "1.0",
        "--seed",
        "4",
    ]);
    assert!(out.contains("0 dynamic race report(s)"), "{out}");
    let lint = cli(&["lint", &repo_path("programs/handoff.pl")]);
    assert!(lint.contains("0 warning(s)"), "{lint}");
}

#[test]
fn lint_flags_bank_and_false_positives_producer_consumer() {
    // bank.pl: a true positive.
    let lint = cli(&["lint", &repo_path("programs/bank.pl")]);
    assert!(lint.contains("shared `balance`"), "{lint}");
    assert!(!lint.contains("shared `audit_log`"), "{lint}");

    // producer_consumer.pl is race-free (verified dynamically above), yet
    // lockset flags the buffer: the §6.2 imprecision, demonstrated.
    let lint = cli(&["lint", &repo_path("programs/producer_consumer.pl")]);
    assert!(lint.contains("shared `buffer`"), "{lint}");
    assert!(
        lint.contains("false positives") || lint.contains("heuristic"),
        "{lint}"
    );
}
