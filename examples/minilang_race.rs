//! Compile a mini-language program with the instrumenting compiler and run
//! it under PACER on the simulated runtime.
//!
//! Run with: `cargo run --example minilang_race`

use pacer_core::PacerDetector;
use pacer_runtime::{Vm, VmConfig};
use pacer_trace::Detector;

const SOURCE: &str = "
    shared balance;          // unguarded: races
    shared ledger;           // guarded by m: never races
    lock m;
    volatile open;

    fn teller(id) {
        let i = 0;
        while (i < 500) {
            sync m { ledger = ledger + 1; }
            balance = balance + 1;      // lost-update race
            let note = new obj;         // provably thread-local:
            note.amount = i;            // not even instrumented
            i = i + 1;
        }
        open = id;
    }

    fn main() {
        let a = spawn teller(1);
        let b = spawn teller(2);
        join a;
        join b;
        return balance;
    }
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ast = pacer_lang::parse(SOURCE)?;
    let program = pacer_lang::compile(&ast)?;
    println!(
        "compiled: {} instrumented sites, {} globals",
        program.instrumented_sites(),
        program.globals
    );

    // Sample aggressively so a single run demonstrates detection; deployed
    // settings would use r = 1–3% across many instances.
    let config = VmConfig::new(42).with_sampling_rate(0.5);
    let mut pacer = PacerDetector::new();
    let outcome = Vm::run(&program, &mut pacer, &config)?;

    println!(
        "ran {} steps across {} threads; main returned {:?}",
        outcome.steps, outcome.threads_started, outcome.main_result
    );
    println!(
        "escape analysis elided {} thread-local field accesses",
        outcome.elided_accesses
    );

    let distinct = pacer.distinct_races();
    println!(
        "\nPACER found {} dynamic race(s), {} distinct:",
        pacer.races().len(),
        distinct.len()
    );
    for (first, second) in &distinct {
        println!(
            "  {}  <->  {}",
            program.describe_site(*first),
            program.describe_site(*second)
        );
    }
    println!(
        "\neffective sampling rate: {:.1}%",
        pacer.stats().effective_rate().unwrap_or(0.0) * 100.0
    );
    Ok(())
}
