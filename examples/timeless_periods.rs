//! Figure 2, animated: how PACER eliminates O(n) work outside sampling
//! periods with version epochs and shared (copy-on-write) clocks.
//!
//! Run with: `cargo run --example timeless_periods`

use pacer_clock::ThreadId;
use pacer_core::PacerDetector;
use pacer_trace::{Action, Detector, LockId, Trace};

fn main() {
    // Three threads exchanging two locks, exactly like Figure 2: after the
    // first transfer in each direction, every further acquire receives a
    // clock value the thread has already seen.
    let t = |i| ThreadId::new(i);
    let m = |i| LockId::new(i);
    let mut trace = Trace::new();
    trace.push(Action::Fork { t: t(0), u: t(1) });
    trace.push(Action::Fork { t: t(0), u: t(2) });
    trace.push(Action::Fork { t: t(0), u: t(3) });
    for _round in 0..100 {
        // t3 releases both locks; t1 and t2 acquire them repeatedly.
        for (thread, lock) in [(3, 0), (3, 1)] {
            trace.push(Action::Acquire {
                t: t(thread),
                m: m(lock),
            });
            trace.push(Action::Release {
                t: t(thread),
                m: m(lock),
            });
        }
        for (thread, lock) in [(1, 0), (2, 0), (1, 1), (2, 1)] {
            trace.push(Action::Acquire {
                t: t(thread),
                m: m(lock),
            });
            trace.push(Action::Release {
                t: t(thread),
                m: m(lock),
            });
        }
    }

    println!("=== entirely outside sampling periods (timeless) ===");
    let mut pacer = PacerDetector::new();
    pacer.run(&trace);
    let s = pacer.stats();
    println!(
        "joins:  slow={:4}  fast={:4}   ({:.1}% fast — versions detect the redundancy)",
        s.joins.non_sampling_slow,
        s.joins.non_sampling_fast,
        s.non_sampling_fast_join_fraction().unwrap_or(0.0) * 100.0
    );
    println!(
        "copies: deep={:4}  shallow={:4} (lock releases share the releaser's clock)",
        s.copies.non_sampling_deep, s.copies.non_sampling_shallow
    );
    println!(
        "clone-on-write events: {} (a shared clock was about to change)",
        s.cow_clones
    );

    println!("\n=== same trace inside one big sampling period ===");
    let mut sampled = Trace::new();
    sampled.push(Action::SampleBegin);
    sampled.extend(trace.iter().copied());
    let mut pacer = PacerDetector::new();
    pacer.run(&sampled);
    let s = pacer.stats();
    println!(
        "joins:  slow={:4}  fast={:4}   (every release mints a new version: little redundancy)",
        s.joins.sampling_slow, s.joins.sampling_fast
    );
    println!(
        "copies: deep={:4}  shallow={:4} (sampling periods always copy deeply)",
        s.copies.sampling_deep, s.copies.sampling_shallow
    );

    println!(
        "\nThe contrast is §3.2's claim: \"versions and shallow copies avoid\n\
         nearly all O(n) analysis on joins and copies during non-sampling periods\"."
    );
}
