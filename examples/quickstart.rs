//! Quickstart: feed a hand-written execution trace to PACER.
//!
//! Run with: `cargo run --example quickstart`

use pacer_core::PacerDetector;
use pacer_trace::{Detector, HbOracle, Trace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The scenario from Figure 1 of the paper: thread t0's write to x0 is
    // sampled; thread t1 reads x0 later, outside the sampling period.
    // PACER guarantees this race is reported, because the FIRST access was
    // sampled.
    let trace = Trace::parse(
        "
        fork t0 t1
        sbegin
        wr t0 x0 s1
        send
        rd t1 x0 s2
        wr t1 x1 s3
        wr t0 x1 s4
    ",
    )?;
    trace.validate()?;

    let mut pacer = PacerDetector::new();
    pacer.run(&trace);

    println!("PACER reports {} race(s):", pacer.races().len());
    for race in pacer.races() {
        println!("  {race}");
    }

    // The ground-truth oracle sees one more race (x1–x1): its first access
    // was NOT sampled, so PACER — by design — does not report it in this
    // run. At sampling rate r it would be caught in a fraction r of runs.
    let oracle = HbOracle::analyze(&trace);
    println!(
        "\nground truth: {} race(s); PACER reported the sampled one",
        oracle.all_races().len()
    );

    println!("\noperation statistics:\n{}", pacer.stats());
    Ok(())
}
