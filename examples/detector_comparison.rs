//! Side-by-side comparison of every detector in the suite on one workload:
//! races found, wall time, effective rate, and metadata footprint.
//!
//! Run with: `cargo run --release --example detector_comparison`

use pacer_harness::render;
use pacer_harness::trials::{run_trial, DetectorKind};
use pacer_workloads::{xalan, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = xalan(Scale::Small);
    let program = workload.compiled();
    let kinds = [
        DetectorKind::Uninstrumented,
        DetectorKind::SyncOnly,
        DetectorKind::Pacer { rate: 0.0 },
        DetectorKind::Pacer { rate: 0.01 },
        DetectorKind::Pacer { rate: 0.03 },
        DetectorKind::Pacer { rate: 1.0 },
        DetectorKind::PacerAccordion { rate: 0.03 },
        DetectorKind::FastTrack,
        DetectorKind::Generic,
        DetectorKind::LiteRace { burst: 1000 },
    ];

    let mut rows = Vec::new();
    for kind in kinds {
        let r = run_trial(&program, kind, 1234)?;
        rows.push(vec![
            kind.label(),
            r.dynamic_races.len().to_string(),
            r.distinct_races.len().to_string(),
            r.effective_rate.map_or_else(|| "-".into(), render::pct),
            r.final_metadata_words
                .map_or_else(|| "-".into(), |w| format!("{w}")),
            format!("{:.1}ms", r.wall.as_secs_f64() * 1000.0),
        ]);
    }

    println!(
        "workload: {} ({} threads, same schedule seed for every detector)\n",
        workload.name, workload.threads_total
    );
    println!(
        "{}",
        render::table(
            &[
                "detector",
                "dyn races",
                "distinct",
                "eff rate",
                "meta words",
                "wall"
            ],
            &rows
        )
    );
    println!(
        "Note: PACER at 100% matches FASTTRACK exactly; at low rates it finds\n\
         a proportional share with near-baseline cost; LITERACE's metadata does\n\
         not shrink with its sampling."
    );
    Ok(())
}
