//! The deployment story (§1): many instances each sampling at 1%
//! individually find few races, but the fleet finds nearly all of them.
//!
//! Run with: `cargo run --release --example deployed_fleet`

use pacer_harness::detection::RaceCensus;
use pacer_harness::fleet::simulate_fleet;
use pacer_workloads::{eclipse, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = eclipse(Scale::Test);
    let program = workload.compiled();

    // Ground truth: which races occur reliably at a 100% sampling rate?
    let census = RaceCensus::collect(&program, 12, 7)?;
    let eval = census.evaluation_races();
    println!(
        "evaluation races (in ≥ half of {} fully sampled trials): {}",
        census.trials,
        eval.len()
    );

    println!("\n   instances  coverage   avg reporters/race");
    for instances in [1u32, 5, 20, 80, 200] {
        let report = simulate_fleet(&program, instances, 0.01, 99)?;
        println!(
            "   {:>9}  {:>7.1}%   {:>6.2}",
            instances,
            report.coverage(&eval) * 100.0,
            report.mean_reporters().unwrap_or(0.0),
        );
    }
    println!(
        "\nEach instance pays ≈1% sampling overhead; the fleet's coverage\n\
         climbs toward 100% — \"get what you pay for\", paid in parallel."
    );
    Ok(())
}
